"""Setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(``bdist_wheel``) are unavailable; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
