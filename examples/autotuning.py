#!/usr/bin/env python3
"""Online auto-tuning — the paper's Section V-B future work, implemented.

"As part of future work, we plan to automate the process of configuring
the values for these parameters based on real-time observations of the
workload performance."

We start WordCount at a deliberately bad configuration — a 1ms cache
drain interval (flush-overhead regime of Fig. 12) and a 100K pending
window (queueing regime of Fig. 11) — attach the AutoTuner, and watch it
hill-climb the drain interval and steer the pending window to a 60ms
latency SLO.

Run:  python examples/autotuning.py
"""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core import HeronCluster
from repro.tuning import AutoTuner
from repro.workloads import wordcount_topology


def main():
    config = Config()
    config.set(Keys.BATCH_SIZE, 1000)
    config.set(Keys.SAMPLE_CAP, 16)
    config.set(Keys.ACKING_ENABLED, True)
    config.set(Keys.ACK_TRACKING, "counted")
    config.set(Keys.MAX_SPOUT_PENDING, 100_000)       # far too large
    config.set(Keys.CACHE_DRAIN_FREQUENCY_MS, 1.0)    # far too small

    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(4, corpus_size=1000, config=config))
    handle.wait_until_running()

    print("starting from a deliberately bad configuration:")
    print("  cache drain frequency : 1.0 ms   (flush-overhead regime)")
    print("  max spout pending     : 100,000  (queueing regime)")
    print("  latency SLO           : 60 ms\n")

    tuner = AutoTuner(handle, interval=0.5, latency_slo=0.060).attach()
    cluster.run_for(15.0)
    tuner.detach()

    print(tuner.report.describe())
    print(f"\nfinal settings: drain {tuner.report.final_drain_ms:.1f}ms, "
          f"pending {tuner.report.final_max_pending:,}")
    handle.kill()


if __name__ == "__main__":
    main()
