#!/usr/bin/env python3
"""Modularity tour: swap Resource Managers, Schedulers and State Managers.

The same WordCount topology runs four ways without touching its code —
the paper's headline extensibility claim (Section II):

* Round-Robin packing on an Aurora-like framework (stateless scheduler,
  homogeneous containers),
* FFD bin packing on a YARN-like framework (stateful scheduler,
  heterogeneous containers),
* two topologies with *different* packing policies sharing one cluster,
* a local-filesystem State Manager instead of the in-memory one.

Run:  python examples/pluggable_modules.py
"""

import tempfile

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core import HeronCluster
from repro.packing import FirstFitDecreasingPacking, RoundRobinPacking
from repro.statemgr import LocalFileSystemStateManager
from repro.scheduler.frameworks import YarnFramework
from repro.simulation.cluster import Cluster
from repro.simulation.events import Simulator
from repro.common.resources import Resource
from repro.common.units import GB
from repro.workloads import wordcount_topology


def small_config():
    return Config().set(Keys.BATCH_SIZE, 100).set(Keys.SAMPLE_CAP, 16)


def run_combo(title, cluster, resource_manager):
    topology = wordcount_topology(4, corpus_size=2000,
                                  config=small_config())
    handle = cluster.submit_topology(topology,
                                     resource_manager=resource_manager)
    handle.wait_until_running()
    cluster.run_for(0.5)
    plan = handle.packing_plan
    shapes = sorted({(c.required.cpu) for c in plan.containers})
    print(f"{title}:")
    print(f"  scheduler: {type(handle._runtime.scheduler).__name__} "
          f"(stateful={handle._runtime.scheduler.is_stateful})")
    print(f"  containers: {plan.container_count}, "
          f"container cpu shapes: {shapes}")
    print(f"  throughput: {handle.totals()['executed']:,.0f} tuples "
          f"in 0.5s")
    handle.kill()
    print()


def main():
    print("=== Round Robin packing on Aurora "
          "(homogeneous containers, framework-side recovery) ===")
    run_combo("aurora + round-robin", HeronCluster.on_aurora(machines=6),
              RoundRobinPacking())

    print("=== FFD bin packing on YARN "
          "(heterogeneous containers, stateful scheduler) ===")
    run_combo("yarn + ffd", HeronCluster.on_yarn(machines=6),
              FirstFitDecreasingPacking())

    print("=== Two topologies, two packing policies, one cluster ===")
    cluster = HeronCluster.on_yarn(machines=8)
    rr_topology = wordcount_topology(4, corpus_size=2000,
                                     config=small_config(), name="wc-rr")
    ffd_topology = wordcount_topology(4, corpus_size=2000,
                                      config=small_config(), name="wc-ffd")
    rr_handle = cluster.submit_topology(rr_topology,
                                        resource_manager=RoundRobinPacking())
    ffd_handle = cluster.submit_topology(
        ffd_topology, resource_manager=FirstFitDecreasingPacking())
    rr_handle.wait_until_running()
    ffd_handle.wait_until_running()
    cluster.run_for(0.5)
    print(f"  wc-rr : {rr_handle.packing_plan.container_count} containers, "
          f"{rr_handle.totals()['executed']:,.0f} tuples")
    print(f"  wc-ffd: {ffd_handle.packing_plan.container_count} containers, "
          f"{ffd_handle.totals()['executed']:,.0f} tuples")
    rr_handle.kill()
    ffd_handle.kill()
    print()

    print("=== Local-filesystem State Manager ===")
    with tempfile.TemporaryDirectory() as root:
        sim = Simulator()
        framework = YarnFramework(
            sim, Cluster.homogeneous(6, Resource(cpu=24, ram=72 * GB,
                                                 disk=500 * GB)))
        cluster = HeronCluster(framework=framework,
                               statemgr=LocalFileSystemStateManager(root))
        topology = wordcount_topology(2, corpus_size=2000,
                                      config=small_config())
        handle = cluster.submit_topology(topology)
        handle.wait_until_running()
        cluster.run_for(0.3)
        print(f"  topology metadata persisted under {root}:")
        from repro.statemgr.paths import TopologyPaths
        paths = TopologyPaths("wordcount")
        for node in (paths.topology, paths.packing_plan,
                     paths.tmaster_location, paths.execution_state):
            print(f"    {node}  "
                  f"({len(cluster.statemgr.get_data(node))} bytes)")
        handle.kill()


if __name__ == "__main__":
    main()
