#!/usr/bin/env python3
"""Topology scaling: grow and shrink a running topology's parallelism.

Demonstrates the Resource Manager's ``repack`` (Section IV-A): existing
instances stay where they are, new instances fill free container slots
first, and the Scheduler's ``onUpdate`` adds/removes containers.

Run:  python examples/scaling_topology.py
"""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core import HeronCluster
from repro.workloads import wordcount_topology


def throughput_over(cluster, handle, seconds):
    before = handle.totals()["executed"]
    start = cluster.now
    cluster.run_for(seconds)
    return (handle.totals()["executed"] - before) / (cluster.now - start)


def main():
    config = Config()
    config.set(Keys.BATCH_SIZE, 500)
    config.set(Keys.SAMPLE_CAP, 16)
    # Make the bolts the bottleneck so scaling them visibly helps.
    config.set(Keys.INSTANCES_PER_CONTAINER, 4)

    cluster = HeronCluster.on_yarn(machines=10)
    topology = wordcount_topology(2, corpus_size=2000, config=config) \
        .with_parallelism({"word": 4, "count": 2})
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()

    print("initial packing plan:")
    print(handle.packing_plan.describe())
    base_rate = throughput_over(cluster, handle, 1.0)
    print(f"throughput with 2 bolts: {base_rate:,.0f} tuples/s\n")

    print(">>> heron update: count 2 -> 6 (load spike!)")
    handle.scale({"count": 6})
    cluster.run_for(0.5)  # let the new containers come up
    print(handle.packing_plan.describe())
    scaled_rate = throughput_over(cluster, handle, 1.0)
    print(f"throughput with 6 bolts: {scaled_rate:,.0f} tuples/s "
          f"({scaled_rate / base_rate:.2f}x)\n")

    new_tasks = [key for key in handle._runtime.instances
                 if key[0] == "count" and key[1] >= 2]
    busy = [key for key in new_tasks
            if handle._runtime.instances[key].executed_count > 0]
    print(f"new bolt tasks receiving traffic: {len(busy)}/{len(new_tasks)}")

    print("\n>>> heron update: count 6 -> 3 (load subsided)")
    handle.scale({"count": 3})
    cluster.run_for(0.5)
    print(handle.packing_plan.describe())
    final_rate = throughput_over(cluster, handle, 1.0)
    print(f"throughput with 3 bolts: {final_rate:,.0f} tuples/s")

    handle.kill()


if __name__ == "__main__":
    main()
