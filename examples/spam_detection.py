#!/usr/bin/env python3
"""Spam detection — one of the applications the paper's intro motivates.

A realtime pipeline flagging abusive senders by message-rate anomaly:

* ``events``    — a spout emitting (sender, message) events with a few
  planted spammers sending at 50x the organic rate;
* ``rates``     — a tumbling-window bolt (tick tuples!) counting per-sender
  message rates over 1-second windows, partial-key grouped so the hot
  spammers cannot melt a single task;
* ``detector``  — flags senders whose windowed rate exceeds a threshold,
  merging the partial counts that partial-key grouping produces.

Run:  python examples/spam_detection.py
"""

import random
from collections import Counter

from repro.api import (Bolt, Spout, TopologyBuilder, TumblingWindowBolt)
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.core import HeronCluster

SPAMMERS = ["mallory", "trudy", "eve"]
ORGANIC_USERS = [f"user{i}" for i in range(200)]
SPAM_WEIGHT = 50  # spammers send 50x as often as an organic user
ANOMALY_FACTOR = 10.0  # flag senders above 10x the mean observed rate


class EventSpout(Spout):
    """Messages from a mixed population of users and spammers."""

    outputs = {"default": ["sender", "message"]}

    def open(self, context, collector):
        self._rng = random.Random(context.task_id)
        self._population = ORGANIC_USERS + SPAMMERS * SPAM_WEIGHT

    def next_tuple(self, collector):
        sender = self._rng.choice(self._population)
        collector.emit([sender, "buy now!!!"])


class RateWindowBolt(TumblingWindowBolt):
    """Per-sender message counts over 1s tumbling windows."""

    window_seconds = 1.0
    outputs = {"default": ["sender", "rate"]}

    def process_window(self, window, collector):
        counts = Counter()
        for tup in window.tuples:
            counts[tup[0]] += 1
        scale = window.count / max(len(window.tuples), 1)
        for sender, count in counts.items():
            collector.emit([sender, count * scale / window.duration])


class SpamDetector(Bolt):
    """Flags senders whose windowed rate is an outlier vs the running
    mean. Partial-key grouping splits a sender across at most two rate
    tasks, halving its observed rate at worst — far less than the 50x
    anomaly we hunt, so the relative rule is split-safe."""

    WARMUP_OBSERVATIONS = 50

    def __init__(self):
        super().__init__()
        self.flagged = Counter()
        self._rate_sum = 0.0
        self._observations = 0

    def execute(self, tup, collector):
        sender, rate = tup[0], tup[1]
        self._observations += 1
        self._rate_sum += rate
        mean = self._rate_sum / self._observations
        if self._observations > self.WARMUP_OBSERVATIONS and \
                rate > ANOMALY_FACTOR * mean:
            self.flagged[sender] += 1


def main():
    builder = TopologyBuilder("spam-detection")
    builder.set_spout("events", EventSpout(), parallelism=2)
    builder.set_bolt("rates", RateWindowBolt(), parallelism=3) \
        .partial_key_grouping("events", fields=["sender"])
    builder.set_bolt("detector", SpamDetector(), parallelism=1) \
        .fields_grouping("rates", fields=["sender"])
    builder.set_config(Keys.BATCH_SIZE, 100)
    topology = builder.build()
    print(topology.describe(), "\n")

    cluster = HeronCluster.local()
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(6.0)

    detector = handle._runtime.instances[("detector", 0)].user
    print(f"processed {handle.totals()['executed']:,.0f} events "
          f"in {cluster.now:.0f}s simulated")
    print("flagged senders (times over threshold):")
    for sender, hits in detector.flagged.most_common():
        marker = "SPAMMER" if sender in SPAMMERS else "false positive!"
        print(f"  {sender:<10} {hits:>3}x  [{marker}]")

    caught = set(detector.flagged) & set(SPAMMERS)
    false_positives = set(detector.flagged) - set(SPAMMERS)
    print(f"\ncaught {len(caught)}/{len(SPAMMERS)} spammers, "
          f"{len(false_positives)} false positives")

    rate_tasks = [inst for key, inst in handle._runtime.instances.items()
                  if key[0] == "rates"]
    loads = [inst.executed_count for inst in rate_tasks]
    print(f"rate-task load spread (partial-key grouping): "
          f"max/min = {max(loads) / max(min(loads), 1):.2f}")
    handle.kill()


if __name__ == "__main__":
    main()
