#!/usr/bin/env python3
"""A production-style analytics pipeline: Kafka → filter → aggregate → Redis.

The Figure-14 workload: a rate-limited Kafka source, a filter, a
windowed aggregator, and a Redis sink, with CPU time attributed to
fetch / user logic / engine / write categories by the cost ledger.

Run:  python examples/streaming_analytics.py
"""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core import HeronCluster
from repro.simulation.costs import CostCategory
from repro.workloads.kafka_redis import kafka_redis_topology


def main():
    config = Config()
    config.set(Keys.SAMPLE_CAP, 24)
    config.set(Keys.BATCH_SIZE, 1000)

    topology, broker, redis = kafka_redis_topology(
        events_per_min=30e6, spouts=8, filters=8, aggregators=8, sinks=4,
        config=config)
    print(topology.describe())
    print(f"\nKafka production rate: "
          f"{broker.events_per_sec * 60 / 1e6:.0f}M events/min")

    cluster = HeronCluster.on_yarn(machines=8)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()

    cluster.run_for(5.0)

    snapshot = handle.snapshot()
    print(f"\nafter {cluster.now:.0f}s simulated:")
    print(f"  events fetched from kafka : {broker.total_fetched:>12,}")
    print(f"  events past the filter    : "
          f"{snapshot['aggregate']['executed']:>12,.0f}")
    print(f"  aggregate records to redis: {redis.records_written:>12,}")
    print(f"  redis keys live           : {len(redis.store):>12,}")

    print("\nresource-consumption breakdown (Fig. 14):")
    ledger = cluster.ledger
    for category, label in ((CostCategory.FETCH, "fetching data"),
                            (CostCategory.USER, "user logic"),
                            (CostCategory.ENGINE, "heron usage"),
                            (CostCategory.WRITE, "writing data")):
        print(f"  {label:<14} {ledger.fraction(category):>6.1%}")

    print("\nper-process-group CPU seconds:")
    for group, seconds in sorted(ledger.by_group.items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {group:<18} {seconds:>8.2f}s")

    handle.kill()


if __name__ == "__main__":
    main()
