#!/usr/bin/env python3
"""Failure recovery: stateful vs stateless schedulers, TM failover.

Three scenarios from Sections IV-B and IV-C:

1. a container dies under a **stateful** scheduler (YARN): the Heron
   scheduler notices and restores it;
2. a container dies under a **stateless** scheduler (Aurora): the
   *framework* restores it, the scheduler never gets involved;
3. the **Topology Master** dies: its ephemeral State Manager node
   vanishes, the Stream Managers' watches fire, and they re-register
   with the relaunched TM.

Run:  python examples/failure_recovery.py
"""

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core import HeronCluster
from repro.statemgr.paths import TopologyPaths
from repro.workloads import wordcount_topology


def submit(cluster):
    config = Config().set(Keys.BATCH_SIZE, 200).set(Keys.SAMPLE_CAP, 16)
    topology = wordcount_topology(4, corpus_size=2000, config=config)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(0.5)
    return handle


def kill_container(cluster, role):
    victim = next(jc.container for jc in
                  cluster.framework.job_containers("wordcount")
                  if jc.role == role)
    cluster.cluster.fail_container(victim)
    return victim


def rate_after(cluster, handle, seconds=1.0):
    before = handle.totals()["executed"]
    cluster.run_for(seconds)
    return (handle.totals()["executed"] - before) / seconds


def scenario_worker_failure(make_cluster, flavor):
    print(f"=== container failure on {flavor} ===")
    cluster = make_cluster()
    handle = submit(cluster)
    scheduler = handle._runtime.scheduler
    print(f"scheduler: {type(scheduler).__name__} "
          f"(stateful={scheduler.is_stateful})")
    healthy = rate_after(cluster, handle)
    print(f"healthy throughput: {healthy:,.0f} tuples/s")

    kill_container(cluster, "container-1")
    print("container-1 crashed!")
    cluster.run_for(3.0)  # detection + recovery delays

    recovered = rate_after(cluster, handle)
    roles = {jc.role for jc in
             cluster.framework.job_containers("wordcount")}
    print(f"container-1 restored: {'container-1' in roles}")
    print(f"throughput after recovery: {recovered:,.0f} tuples/s "
          f"({recovered / healthy:.0%} of healthy)\n")
    handle.kill()


def scenario_tmaster_failover():
    print("=== Topology Master failover (State Manager watches) ===")
    cluster = HeronCluster.on_yarn(machines=8)
    handle = submit(cluster)
    paths = TopologyPaths("wordcount")
    print(f"TM location node: {paths.tmaster_location} -> "
          f"{cluster.statemgr.get_data(paths.tmaster_location).decode()}")

    kill_container(cluster, "tmaster")
    print("TM container crashed!")
    print(f"ephemeral node gone immediately: "
          f"{not cluster.statemgr.exists(paths.tmaster_location)}")

    cluster.run_for(3.0)
    print(f"new TM advertised: "
          f"{cluster.statemgr.exists(paths.tmaster_location)}")
    tm = handle._runtime.tmaster
    print(f"SM re-registrations complete: "
          f"{len(tm.registrations)}/{len(handle.physical_plan.container_ids)}"
          f", plan rebroadcasts: {tm.plan_broadcasts}")
    print(f"traffic still flowing: {rate_after(cluster, handle):,.0f} "
          f"tuples/s")
    handle.kill()


def main():
    scenario_worker_failure(lambda: HeronCluster.on_yarn(machines=8),
                            "YARN (stateful Heron scheduler recovers)")
    scenario_worker_failure(lambda: HeronCluster.on_aurora(machines=8),
                            "Aurora (framework recovers; scheduler is "
                            "stateless)")
    scenario_tmaster_failover()


if __name__ == "__main__":
    main()
