#!/usr/bin/env python3
"""Quickstart: build a WordCount topology and run it on local-mode Heron.

This is the one-minute tour: declare a spout and a bolt, wire them with
a fields grouping, submit to a local cluster, advance simulated time,
and read the metrics.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro.api import Bolt, Spout, TopologyBuilder
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.core import HeronCluster


class SentenceSpout(Spout):
    """Emits words from a tiny looping corpus of sentences."""

    outputs = {"default": ["word"]}

    SENTENCES = [
        "the cow jumped over the moon",
        "an apple a day keeps the doctor away",
        "four score and seven years ago",
        "snow white and the seven dwarfs",
        "i am at two with nature",
    ]

    def open(self, context, collector):
        self._words = " ".join(self.SENTENCES).split()
        self._cursor = context.task_id  # tasks start at different offsets

    def next_tuple(self, collector):
        word = self._words[self._cursor % len(self._words)]
        self._cursor += 1
        collector.emit([word])


class WordCountBolt(Bolt):
    """Counts words; same word always lands on the same task (fields
    grouping), so per-task counts are exact."""

    def __init__(self):
        super().__init__()
        self.counts = Counter()

    def execute(self, tup, collector):
        self.counts[tup[0]] += 1


def main():
    builder = TopologyBuilder("quickstart")
    builder.set_spout("sentence", SentenceSpout(), parallelism=2)
    builder.set_bolt("count", WordCountBolt(), parallelism=3) \
        .fields_grouping("sentence", fields=["word"])
    # Keep batches small so the example emits at a readable rate.
    builder.set_config(Keys.BATCH_SIZE, 20)
    topology = builder.build()

    print(topology.describe())
    print()

    cluster = HeronCluster.local()
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    print("packing plan:")
    print(handle.packing_plan.describe())
    print()

    cluster.run_for(1.0)  # one simulated second

    totals = handle.totals()
    print(f"after {cluster.now:.1f}s simulated: "
          f"{totals['emitted']:,.0f} words emitted, "
          f"{totals['executed']:,.0f} counted")

    merged = Counter()
    for (component, task), instance in handle._runtime.instances.items():
        if component == "count":
            merged.update(instance.user.counts)
    print("top words:", merged.most_common(5))

    handle.kill()
    print("topology killed; cluster resources released:",
          cluster.cluster.provisioned_cores(), "cores in use")


if __name__ == "__main__":
    main()
