#!/usr/bin/env python3
"""Real-time machine learning — another intro-motivated Heron workload.

An online click-prediction pipeline:

* ``impressions`` — a spout emitting ad impressions with 4 numeric
  features and a (hidden) true click probability;
* ``train``      — bolts learning a logistic-regression model by online
  SGD, each on its shuffle-grouped shard of the stream;
* ``score``      — a bolt holding the latest averaged model, scoring a
  held-out probe set every second (tick tuples) and reporting accuracy.

Model averaging flows through the topology itself: trainers broadcast
their weights downstream on a dedicated stream every 0.5s windows.

Run:  python examples/realtime_ml.py
"""

import math
import random

from repro.api import Bolt, Spout, TopologyBuilder, is_tick
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.core import HeronCluster

TRUE_WEIGHTS = [2.0, -1.5, 0.7, 3.0]
TRUE_BIAS = -0.6
FEATURES = len(TRUE_WEIGHTS)
LEARNING_RATE = 0.05


def sigmoid(z):
    """Numerically safe logistic function."""
    if z < -30:
        return 0.0
    if z > 30:
        return 1.0
    return 1.0 / (1.0 + math.exp(-z))


def make_example(rng):
    """One labeled impression from the hidden true model."""
    features = [rng.uniform(-1, 1) for _ in range(FEATURES)]
    p_click = sigmoid(sum(w * x for w, x in zip(TRUE_WEIGHTS, features))
                      + TRUE_BIAS)
    label = 1 if rng.random() < p_click else 0
    return features, label


class ImpressionSpout(Spout):
    """Emits labeled ad impressions."""

    outputs = {"default": ["features", "label"]}

    def open(self, context, collector):
        self._rng = random.Random(1000 + context.task_id)

    def next_tuple(self, collector):
        features, label = make_example(self._rng)
        collector.emit([features, label])


class SgdTrainerBolt(Bolt):
    """Online logistic-regression SGD on this task's stream shard;
    publishes its weights downstream twice a second."""

    outputs = {"default": ["task", "weights", "bias", "examples"]}
    tick_frequency = 0.5

    def __init__(self):
        super().__init__()
        self.weights = [0.0] * FEATURES
        self.bias = 0.0
        self.examples_seen = 0
        self._task_id = 0

    def prepare(self, context, collector):
        self._task_id = context.task_id

    def execute(self, tup, collector):
        if is_tick(tup):
            collector.emit([self._task_id, list(self.weights), self.bias,
                            self.examples_seen])
            return
        features, label = tup[0], tup[1]
        prediction = sigmoid(sum(w * x for w, x in
                                 zip(self.weights, features)) + self.bias)
        gradient = prediction - label
        for i in range(FEATURES):
            self.weights[i] -= LEARNING_RATE * gradient * features[i]
        self.bias -= LEARNING_RATE * gradient
        self.examples_seen += 1


class ModelScorerBolt(Bolt):
    """Averages trainer models (weighted by examples seen) and evaluates
    on a fixed probe set."""

    PROBE_SIZE = 500

    def __init__(self):
        super().__init__()
        self._models = {}
        self.history = []
        rng = random.Random(7)
        self._probe = [make_example(rng) for _ in range(self.PROBE_SIZE)]

    def execute(self, tup, collector):
        task, weights, bias, examples = tup[0], tup[1], tup[2], tup[3]
        self._models[task] = (weights, bias, examples)
        self._evaluate()

    def _evaluate(self):
        models = [m for m in self._models.values() if m[2] > 0]
        if not models:
            return
        total = sum(m[2] for m in models)
        avg_weights = [sum(m[0][i] * m[2] for m in models) / total
                       for i in range(FEATURES)]
        avg_bias = sum(m[1] * m[2] for m in models) / total
        correct = 0
        for features, label in self._probe:
            p = sigmoid(sum(w * x for w, x in zip(avg_weights, features))
                        + avg_bias)
            correct += int((p >= 0.5) == (label == 1))
        self.history.append((total, correct / self.PROBE_SIZE,
                             list(avg_weights)))


def main():
    builder = TopologyBuilder("realtime-ml")
    builder.set_spout("impressions", ImpressionSpout(), parallelism=2)
    builder.set_bolt("train", SgdTrainerBolt(), parallelism=3) \
        .shuffle_grouping("impressions")
    builder.set_bolt("score", ModelScorerBolt(), parallelism=1) \
        .global_grouping("train")
    builder.set_config(Keys.BATCH_SIZE, 50)
    topology = builder.build()
    print(topology.describe(), "\n")

    cluster = HeronCluster.local()
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(5.0)

    scorer = handle._runtime.instances[("score", 0)].user
    print("online model quality over time "
          "(examples trained, probe accuracy):")
    step = max(1, len(scorer.history) // 8)
    for examples, accuracy, weights in scorer.history[::step]:
        bar = "#" * int(accuracy * 40)
        print(f"  {examples:>9,.0f}  {accuracy:6.1%}  {bar}")
    final = scorer.history[-1]
    print(f"\nfinal probe accuracy: {final[1]:.1%} after "
          f"{final[0]:,.0f} examples")
    print(f"learned weights: {[round(w, 2) for w in final[2]]}")
    print(f"true weights   : {TRUE_WEIGHTS}")
    handle.kill()


if __name__ == "__main__":
    main()
