#!/usr/bin/env python3
"""Run the tie-race detector (repro.analysis.races) from a checkout.

Equivalent to ``heron-sim races``; this wrapper just makes ``src/``
importable so the detector runs without installing the package::

    python scripts/races.py wordcount --kernel both
    python scripts/races.py racy --explore
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.races import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
