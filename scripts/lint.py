#!/usr/bin/env python3
"""Run the determinism lint (repro.analysis.lint) from a checkout.

Equivalent to ``heron-sim lint``; this wrapper just makes ``src/``
importable so the lint runs without installing the package::

    python scripts/lint.py [paths...]      # defaults to src
    python scripts/lint.py --list-rules
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
