#!/usr/bin/env python
"""Measure kernel events/sec and experiment wall clock; track the trend.

The perf trajectory of the simulator lives in ``BENCH_kernel.json`` at
the repo root: one entry per tracked revision, oldest (the pre-fast-path
seed) first. This script re-measures the current tree and compares it
against that baseline so a perf regression is visible in CI output.

Usage::

    python scripts/perf_report.py                 # full measurement + report
    python scripts/perf_report.py --smoke         # quick CI regression check
    python scripts/perf_report.py --update LABEL  # also record an entry

Exit code is non-zero when the current tree is slower than the recorded
baseline (smoke: kernel only; full: kernel events/sec).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.perf import (best_of, kernel_microbench,  # noqa: E402
                                    wordcount_wallclock)

BENCH_PATH = ROOT / "BENCH_kernel.json"
PLACEMENT_BENCH_PATH = ROOT / "BENCH_placement.json"
ELASTIC_BENCH_PATH = ROOT / "BENCH_elastic.json"


def current_commit() -> str:
    """Short hash of HEAD; every recorded entry carries its commit."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure_bigcluster(fast: bool = False) -> dict:
    """Heap-vs-calendar numbers from the big-cluster stress scenario.

    Row schema (per kernel): events, events_per_sec, wall_s, cpu_s,
    peak_rss_mb, machines, instances.
    """
    from repro.experiments.bigcluster import measure_kernels
    rows = {}
    for row in measure_kernels(fast=fast):
        kernel = row.pop("kernel")
        rows[kernel] = {
            key: (round(value, 3) if isinstance(value, float) else value)
            for key, value in row.items()}
    return rows


def placement_report(fast: bool, update_label: str | None) -> int:
    """Per-policy placement rows (RR/FFD/R-Storm on the racked cluster).

    Each recorded entry in ``BENCH_placement.json`` carries the commit
    hash and one row per policy: throughput (tuples/sec), mean latency
    (ms), cross-rack message share and throughput per provisioned core.
    The exit code only reflects the experiment's own shape checks —
    placement quality is a correctness property here, not a trend race.
    """
    from repro.experiments.placement import POLICIES, measure_policy
    rows = {}
    for policy in POLICIES:
        point = measure_policy((policy, fast, 0))
        rows[policy] = {
            "throughput_tps": round(point["throughput_tps"], 1),
            "latency_ms": round(point["latency_ms"], 3),
            "cross_rack_share": round(point["cross_rack_share"], 4),
            "tput_per_core": round(point["tput_per_core"], 1),
            "cores": point["cores"],
        }
        print(f"{policy:<16}: {rows[policy]['throughput_tps']:>10,.0f} tps, "
              f"{rows[policy]['latency_ms']:.2f}ms, "
              f"cross-rack {rows[policy]['cross_rack_share']:.1%}, "
              f"{rows[policy]['tput_per_core']:,.0f} tps/core")
    if update_label:
        data = (json.loads(PLACEMENT_BENCH_PATH.read_text())
                if PLACEMENT_BENCH_PATH.exists() else {"entries": []})
        entry = {"label": update_label, "commit": current_commit(),
                 "fast": fast, "policies": rows}
        data["entries"] = [e for e in data["entries"]
                           if e["label"] != update_label] + [entry]
        PLACEMENT_BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded entry {update_label!r} "
              f"in {PLACEMENT_BENCH_PATH.name}")
    rstorm = rows["R-Storm"]
    worst_share = max(row["cross_rack_share"] for row in rows.values())
    if rstorm["cross_rack_share"] >= worst_share and worst_share > 0:
        print("FAIL: R-Storm no longer improves cross-rack share")
        return 1
    print("OK")
    return 0


def elastic_report(fast: bool, update_label: str | None) -> int:
    """Autoscaled vs fixed-overprovisioned rows from the elastic sweep.

    Each recorded entry in ``BENCH_elastic.json`` carries the commit
    hash and one row per mode: tuples counted, rescale counts, peak
    parallelism, provisioned core-seconds and whether the autoscaled
    run's final counts matched the fixed run byte for byte. The exit
    code reflects the elasticity correctness bar (identical counts, up
    AND down rescales), not a perf trend.
    """
    from repro.experiments.elastic import measure_run
    rows = {}
    for mode in ("auto", "fixed"):
        point = measure_run((mode, fast))
        rows[mode] = {
            "total_counted": point["total_counted"],
            "offered_total": point["offered_total"],
            "rescales_up": int(point["rescales_up"]),
            "rescales_down": int(point["rescales_down"]),
            "peak_parallelism": max(
                [row["parallelism"] for row in point["history"]],
                default=point["final_parallelism"]),
            "final_parallelism": point["final_parallelism"],
            "core_seconds": round(point["core_seconds"], 1),
            "restores": int(point["restores"]),
        }
        rows[mode]["_counts"] = point["counts"]
    identical = rows["auto"].pop("_counts") == rows["fixed"].pop("_counts")
    rows["counts_identical"] = identical
    for mode in ("auto", "fixed"):
        row = rows[mode]
        print(f"{mode:<6}: {row['total_counted']:>10,.0f} tuples counted, "
              f"{row['rescales_up']} up / {row['rescales_down']} down, "
              f"peak parallelism {row['peak_parallelism']:g}, "
              f"{row['core_seconds']:,.0f} core-secs")
    print(f"final counts identical: {identical}")
    if update_label:
        data = (json.loads(ELASTIC_BENCH_PATH.read_text())
                if ELASTIC_BENCH_PATH.exists() else {"entries": []})
        entry = {"label": update_label, "commit": current_commit(),
                 "fast": fast, "runs": rows}
        data["entries"] = [e for e in data["entries"]
                           if e["label"] != update_label] + [entry]
        ELASTIC_BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded entry {update_label!r} "
              f"in {ELASTIC_BENCH_PATH.name}")
    if not identical:
        print("FAIL: autoscaled counts diverged from the fixed run")
        return 1
    if not (rows["auto"]["rescales_up"] and rows["auto"]["rescales_down"]):
        print("FAIL: the autoscaler did not rescale both directions")
        return 1
    print("OK")
    return 0


def load_bench() -> dict:
    return json.loads(BENCH_PATH.read_text())


def baseline_entry(data: dict) -> dict:
    return data["entries"][0]


def smoke(data: dict) -> int:
    """Fast regression check: short kernel run vs recorded baseline."""
    result = kernel_microbench(3.0)
    base = baseline_entry(data)["kernel_events_per_sec"]
    rate = result["events_per_sec"]
    print(f"kernel smoke (3 sim s): {rate:,.0f} events/sec "
          f"(baseline {base:,.0f}; ratio {rate / base:.2f}x)")
    # Short windows understate the gap (the seed's tombstone bloat grows
    # with run length), so the smoke floor is only "not below baseline".
    if rate < base:
        print("FAIL: kernel slower than the pre-fast-path baseline")
        return 1
    print("OK")
    return 0


def full(data: dict, trials: int, update_label: str | None,
         bigcluster: bool = False) -> int:
    base = baseline_entry(data)
    kernel = best_of(lambda: kernel_microbench(), trials=trials)
    wallclock = best_of(lambda: wordcount_wallclock(), trials=2)
    ratio = kernel["events_per_sec"] / base["kernel_events_per_sec"]
    wc_ratio = base["wordcount_p25_cpu_s"] / wallclock["cpu_s"]
    print(f"kernel microbench : {kernel['events_per_sec']:,.0f} events/sec "
          f"({kernel['events']:,.0f} events / {kernel['cpu_s']:.3f}s CPU)")
    print(f"  vs baseline     : {base['kernel_events_per_sec']:,.0f} "
          f"events/sec -> {ratio:.2f}x")
    print(f"wordcount p25 run : {wallclock['cpu_s']:.3f}s CPU "
          f"({wallclock['throughput_mtpm']:,.0f} Mtuples/min simulated)")
    print(f"  vs baseline     : {base['wordcount_p25_cpu_s']:.3f}s CPU "
          f"-> {wc_ratio:.2f}x")
    big = None
    if bigcluster:
        big = measure_bigcluster()
        for name, row in big.items():
            print(f"bigcluster {name:<8}: "
                  f"{row['events_per_sec']:,.0f} events/sec, "
                  f"{row['wall_s']:.2f}s wall, "
                  f"{row['peak_rss_mb']:.0f}MB peak RSS")
    if update_label:
        entry = {
            "label": update_label,
            "commit": current_commit(),
            "kernel_events_per_sec": round(kernel["events_per_sec"], 1),
            "kernel_events": int(kernel["events"]),
            "kernel_cpu_s": round(kernel["cpu_s"], 3),
            "wordcount_p25_cpu_s": round(wallclock["cpu_s"], 3),
            "wordcount_p25_throughput_mtpm":
                round(wallclock["throughput_mtpm"], 1),
        }
        if big is not None:
            entry["bigcluster"] = big
        entries = [e for e in data["entries"]
                   if e["label"] != update_label]
        entries.append(entry)
        data["entries"] = entries
        BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"recorded entry {update_label!r} in {BENCH_PATH.name}")
    if ratio < 1.0:
        print("FAIL: kernel slower than the pre-fast-path baseline")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick kernel-only regression check (CI)")
    parser.add_argument("--update", metavar="LABEL",
                        help="record the measurement as entry LABEL")
    parser.add_argument("--trials", type=int, default=3,
                        help="kernel trials (best CPU time wins)")
    parser.add_argument("--bigcluster", action="store_true",
                        help="also run the big-cluster stress scenario "
                             "(heap vs calendar; slow)")
    parser.add_argument("--placement", action="store_true",
                        help="per-policy placement rows (RR/FFD/R-Storm) "
                             "into BENCH_placement.json")
    parser.add_argument("--elastic", action="store_true",
                        help="autoscaled vs fixed elastic-WordCount rows "
                             "into BENCH_elastic.json")
    parser.add_argument("--full", action="store_true",
                        help="with --placement/--elastic: full-size "
                             "profile (default is the fast profile)")
    args = parser.parse_args(argv)
    if args.placement:
        return placement_report(fast=not args.full,
                                update_label=args.update)
    if args.elastic:
        return elastic_report(fast=not args.full,
                              update_label=args.update)
    data = load_bench()
    if args.smoke:
        return smoke(data)
    return full(data, args.trials, args.update, bigcluster=args.bigcluster)


if __name__ == "__main__":
    sys.exit(main())
