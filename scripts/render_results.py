#!/usr/bin/env python3
"""Render the figure tables from the benchmark CSV artifacts.

``pytest benchmarks/`` saves every reproduced figure's series under
``benchmarks/results/*.csv`` (plus an SVG chart). This script re-renders
those series as the aligned tables the paper plots — handy because
pytest captures the in-test prints unless run with ``-s``.

Usage:  python scripts/render_results.py [results_dir]
"""

import csv
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.experiments.series import Figure  # noqa: E402


def load_figure(path: pathlib.Path) -> Figure:
    """Rebuild a Figure from one results CSV."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        x_label, _series, y_label = header[0], header[1], header[2]
        figure = Figure(path.stem, "(from benchmark artifacts)",
                        x_label, y_label)
        for x_value, series, y_value in reader:
            figure.add_point(series, float(x_value), float(y_value))
    return figure


def main() -> int:
    """Render every CSV in the results directory as a table."""
    results_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else \
        pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
    paths = sorted(results_dir.glob("*.csv"))
    if not paths:
        print(f"no CSV artifacts under {results_dir}; run "
              f"'pytest benchmarks/ --benchmark-only' first",
              file=sys.stderr)
        return 1
    for path in paths:
        print(load_figure(path).format_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
