"""The State Manager module: distributed coordination + topology metadata.

Per Section IV-C, Heron "uses the State Manager module for distributed
coordination and for storing topology metadata": the Topology Master
advertises its location through it (so Stream Managers learn immediately
when the TM dies), and it stores the topology definition, the packing
plan, container host/port info, and the scheduler location.

Both implementations the paper describes are provided:

* :class:`InMemoryStateManager` — ZooKeeper-like: tree-structured nodes,
  versioned writes, **sessions** with **ephemeral nodes** (deleted when the
  owning session dies) and **watches** (one-shot notifications, as in
  ZooKeeper);
* :class:`LocalFileSystemStateManager` — the same API persisted to a
  directory on the local filesystem (Heron's local mode), with nodes
  stored as wire-encoded :class:`~repro.serialization.messages.StateEntry`
  records.

Anything implementing :class:`StateManager` can be plugged into the
engine — that is the extensibility point the paper advertises.
"""

from repro.statemgr.base import (StateManager, StateSession, WatchEvent,
                                 WatchEventType)
from repro.statemgr.inmemory import InMemoryStateManager
from repro.statemgr.localfs import LocalFileSystemStateManager
from repro.statemgr.paths import TopologyPaths

__all__ = [
    "InMemoryStateManager",
    "LocalFileSystemStateManager",
    "StateManager",
    "StateSession",
    "TopologyPaths",
    "WatchEvent",
    "WatchEventType",
]
