"""The local-filesystem State Manager (Heron's local mode).

Section IV-C: "Heron provides a State Manager implementation using Apache
Zookeeper for distributed coordination in a cluster environment and also
an implementation on the local file system for running locally in a
single server. Both implementations currently operate on tree-structured
storage where the root of the tree is supplied by the Heron
administrator."

Nodes map to files under the supplied root directory; each file holds a
wire-encoded :class:`~repro.serialization.messages.StateEntry` so the
on-disk format is the same protocol family the rest of the engine speaks.
Ephemeral nodes are *not* persisted across restarts (matching ZooKeeper:
an ephemeral cannot outlive its session, and a restart kills the session).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.common.errors import StateError
from repro.serialization.messages import StateEntry, decode_message, \
    encode_message
from repro.statemgr.base import StateManager, _Node, normalize_path

_SUFFIX = ".node"


class LocalFileSystemStateManager(StateManager):
    """State Manager persisted under a root directory."""

    def __init__(self, root: "str | os.PathLike") -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._load()

    # -- path mapping ----------------------------------------------------
    def _file_for(self, path: str) -> Path:
        relative = normalize_path(path).lstrip("/")
        return self.root / (relative + _SUFFIX) if relative else \
            self.root / _SUFFIX

    def _path_for(self, file: Path) -> str:
        relative = file.relative_to(self.root).as_posix()
        return "/" + relative[:-len(_SUFFIX)]

    # -- startup recovery ---------------------------------------------------
    def _load(self) -> None:
        """Rebuild the in-memory tree from disk, dropping stale ephemerals."""
        for file in sorted(self.root.rglob("*" + _SUFFIX)):
            entry = decode_message(file.read_bytes())
            if not isinstance(entry, StateEntry):
                raise StateError(f"corrupt state file: {file}")
            if entry.ephemeral:
                # The owning session died with the previous process.
                file.unlink()
                continue
            path = self._path_for(file)
            self._nodes[path] = _Node(entry.data, version=entry.version)

    # -- persistence hooks ----------------------------------------------------
    def _write(self, path: str, node: _Node) -> None:
        entry = StateEntry(path=path, data=node.data, version=node.version,
                           ephemeral=node.ephemeral)
        file = self._file_for(path)
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_bytes(encode_message(entry))

    def _persist_create(self, path: str, node: _Node) -> None:
        self._write(path, node)

    def _persist_set(self, path: str, node: _Node) -> None:
        self._write(path, node)

    def _persist_delete(self, path: str) -> None:
        file = self._file_for(path)
        if file.exists():
            file.unlink()
        # Prune now-empty directories so children() stays accurate on load.
        parent = file.parent
        while parent != self.root and not any(parent.iterdir()):
            parent.rmdir()
            parent = parent.parent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalFileSystemStateManager(root={self.root})"
