"""The local-filesystem State Manager (Heron's local mode).

Section IV-C: "Heron provides a State Manager implementation using Apache
Zookeeper for distributed coordination in a cluster environment and also
an implementation on the local file system for running locally in a
single server. Both implementations currently operate on tree-structured
storage where the root of the tree is supplied by the Heron
administrator."

Nodes map to files under the supplied root directory; each file holds a
4-byte big-endian CRC32 followed by a wire-encoded
:class:`~repro.serialization.messages.StateEntry`, so the on-disk format
is the same protocol family the rest of the engine speaks — plus a
checksum that catches truncated or bit-flipped files. A file that fails
the checksum (or fails to decode) is *skipped* on load and recorded in
:attr:`LocalFileSystemStateManager.corrupt_files` rather than taking the
whole tree down: higher layers (e.g. checkpoint rollback) fall back to
an older replica of the data.

Ephemeral nodes are *not* persisted across restarts (matching ZooKeeper:
an ephemeral cannot outlive its session, and a restart kills the session).
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import List, Optional

from repro.common.errors import ReproError
from repro.serialization.messages import StateEntry, decode_message, \
    encode_message
from repro.statemgr.base import StateManager, _Node, normalize_path

_SUFFIX = ".node"
_CRC_BYTES = 4


class LocalFileSystemStateManager(StateManager):
    """State Manager persisted under a root directory."""

    def __init__(self, root: "str | os.PathLike") -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Files that failed checksum/decode on the last :meth:`_load`.
        self.corrupt_files: List[Path] = []
        self._load()

    # -- path mapping ----------------------------------------------------
    def _file_for(self, path: str) -> Path:
        relative = normalize_path(path).lstrip("/")
        return self.root / (relative + _SUFFIX) if relative else \
            self.root / _SUFFIX

    def _path_for(self, file: Path) -> str:
        relative = file.relative_to(self.root).as_posix()
        return "/" + relative[:-len(_SUFFIX)]

    # -- startup recovery ---------------------------------------------------
    def _read_entry(self, file: Path) -> Optional[StateEntry]:
        """Decode one checked state file; None if truncated/corrupted."""
        raw = file.read_bytes()
        if len(raw) < _CRC_BYTES:
            return None  # truncated before the checksum completed
        expected = int.from_bytes(raw[:_CRC_BYTES], "big")
        payload = raw[_CRC_BYTES:]
        if zlib.crc32(payload) & 0xFFFFFFFF != expected:
            return None
        try:
            entry = decode_message(payload)
        except (ReproError, ValueError):
            return None
        if not isinstance(entry, StateEntry):
            return None
        return entry

    def _load(self) -> None:
        """Rebuild the in-memory tree from disk, dropping stale ephemerals.

        Corrupt files are skipped (and listed in :attr:`corrupt_files`),
        not fatal: one bad node must not make the whole tree — and every
        checkpoint in it — unreachable.
        """
        self.corrupt_files = []
        for file in sorted(self.root.rglob("*" + _SUFFIX)):
            entry = self._read_entry(file)
            if entry is None:
                self.corrupt_files.append(file)
                continue
            if entry.ephemeral:
                # The owning session died with the previous process.
                file.unlink()
                continue
            path = self._path_for(file)
            self._nodes[path] = _Node(entry.data, version=entry.version)

    # -- persistence hooks ----------------------------------------------------
    def _write(self, path: str, node: _Node) -> None:
        entry = StateEntry(path=path, data=node.data, version=node.version,
                           ephemeral=node.ephemeral)
        file = self._file_for(path)
        file.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_message(entry)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        file.write_bytes(crc.to_bytes(_CRC_BYTES, "big") + payload)

    def _persist_create(self, path: str, node: _Node) -> None:
        self._write(path, node)

    def _persist_set(self, path: str, node: _Node) -> None:
        self._write(path, node)

    def _persist_delete(self, path: str) -> None:
        file = self._file_for(path)
        if file.exists():
            file.unlink()
        # Prune now-empty directories so children() stays accurate on load.
        parent = file.parent
        while parent != self.root and not any(parent.iterdir()):
            parent.rmdir()
            parent = parent.parent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalFileSystemStateManager(root={self.root})"
