"""The ZooKeeper-like in-memory State Manager.

All the tree/watch/session semantics live in
:class:`~repro.statemgr.base.StateManager`; this class exists so the
pluggability contract reads naturally (`InMemoryStateManager()` vs
`LocalFileSystemStateManager(root)`), and to carry the cluster-mode
documentation:

In production Heron this role is played by a ZooKeeper ensemble shared by
all containers. In the simulation every engine process holds a reference
to the same ``InMemoryStateManager``, which models a ZooKeeper that is
always reachable; session expiry (process death) is driven explicitly by
the component that owned the session — see the Topology Master failover
test for the full sequence.
"""

from __future__ import annotations

from repro.statemgr.base import StateManager


class InMemoryStateManager(StateManager):
    """Tree store with sessions, ephemerals, and one-shot watches."""

    def __init__(self) -> None:
        super().__init__()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemoryStateManager(nodes={len(self._nodes)})"
