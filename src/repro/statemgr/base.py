"""The State Manager API: a tree-structured, watchable, versioned store.

Semantics follow ZooKeeper closely because that is what Heron's production
State Manager wraps:

* nodes form a tree addressed by ``/``-separated paths;
* ``create`` fails if the node exists (intermediate nodes are auto-created
  as permanent empty nodes, mirroring Heron's mkdirs helpers);
* ``set`` fails if the node does not exist; each set bumps the version;
  an expected version can be supplied for optimistic concurrency;
* **ephemeral** nodes belong to a :class:`StateSession` and disappear when
  the session closes/expires — this is how Topology Master liveness works;
* **watches** are one-shot: a watcher registered on a path fires once for
  the next create/change/delete and must re-register (exactly ZooKeeper's
  model, and the discipline the Topology Master failover logic follows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import StateError


class WatchEventType:
    """What happened to a watched node."""

    CREATED = "CREATED"
    CHANGED = "CHANGED"
    DELETED = "DELETED"


@dataclass(frozen=True)
class WatchEvent:
    """Delivered to a watcher exactly once."""

    type: str
    path: str


WatchCallback = Callable[[WatchEvent], None]


def normalize_path(path: str) -> str:
    """Canonicalize a node path: absolute, no trailing slash, no doubles."""
    if not path or not path.startswith("/"):
        raise StateError(f"paths must be absolute: {path!r}")
    parts = [part for part in path.split("/") if part]
    for part in parts:
        if part in (".", ".."):
            raise StateError(f"path traversal not allowed: {path!r}")
    return "/" + "/".join(parts)


def parent_paths(path: str) -> List[str]:
    """All proper ancestors of ``path``, root-first (excluding '/')."""
    parts = [part for part in path.split("/") if part]
    return ["/" + "/".join(parts[:i]) for i in range(1, len(parts))]


class StateSession:
    """A client session owning ephemeral nodes.

    Closing (or expiring) the session deletes every ephemeral node it
    created, firing their watches — the mechanism behind "in case the
    Topology Master dies, all the Stream Managers become immediately
    aware of the event".
    """

    def __init__(self, manager: "StateManager", session_id: int) -> None:
        self._manager = manager
        self.session_id = session_id
        self.alive = True
        self.ephemeral_paths: List[str] = []

    def create_ephemeral(self, path: str, data: bytes) -> None:
        """Create an ephemeral node owned by this session."""
        if not self.alive:
            raise StateError(f"session {self.session_id} is closed")
        self._manager._create(path, data, ephemeral=True, session=self)
        self.ephemeral_paths.append(normalize_path(path))

    def close(self) -> None:
        """Graceful close: ephemerals removed, session unusable."""
        self.expire()

    def expire(self) -> None:
        """Abrupt expiry (process death): same cleanup as close."""
        if not self.alive:
            return
        self.alive = False
        for path in list(self.ephemeral_paths):
            if self._manager.exists(path):
                self._manager.delete(path)
        self.ephemeral_paths.clear()
        self._manager._forget_session(self)


@dataclass
class _Node:
    data: bytes
    version: int = 0
    ephemeral: bool = False
    session_id: Optional[int] = None


class StateManager:
    """Shared implementation of the tree/watch/session semantics.

    Subclasses supply persistence by overriding the ``_persist_*`` hooks;
    the in-memory implementation is this class with no-op hooks.
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, _Node] = {"/": _Node(b"")}
        self._watches: Dict[str, List[WatchCallback]] = {}
        self._child_watches: Dict[str, List[WatchCallback]] = {}
        self._sessions: Dict[int, StateSession] = {}
        self._next_session = 0

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Expire every open session and drop watches."""
        for session in list(self._sessions.values()):
            session.expire()
        self._watches.clear()
        self._child_watches.clear()

    def session(self) -> StateSession:
        """Open a new client session (for ephemeral nodes)."""
        session = StateSession(self, self._next_session)
        self._sessions[self._next_session] = session
        self._next_session += 1
        return session

    def _forget_session(self, session: StateSession) -> None:
        self._sessions.pop(session.session_id, None)

    # -- reads ----------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """Whether a node exists at ``path``."""
        return normalize_path(path) in self._nodes

    def get(self, path: str) -> Tuple[bytes, int]:
        """Return (data, version); raises if missing."""
        node = self._nodes.get(normalize_path(path))
        if node is None:
            raise StateError(f"no such node: {path}")
        return node.data, node.version

    def get_data(self, path: str) -> bytes:
        """A node's data (raises if missing)."""
        return self.get(path)[0]

    def children(self, path: str) -> List[str]:
        """Immediate child *names* (not full paths), sorted."""
        base = normalize_path(path)
        if base not in self._nodes:
            raise StateError(f"no such node: {path}")
        prefix = base if base.endswith("/") else base + "/"
        names = set()
        for other in self._nodes:
            if other.startswith(prefix):
                names.add(other[len(prefix):].split("/", 1)[0])
        return sorted(names)

    # -- writes ------------------------------------------------------------
    def create(self, path: str, data: bytes = b"") -> None:
        """Create a permanent node (parents auto-created)."""
        self._create(path, data, ephemeral=False, session=None)

    def _create(self, path: str, data: bytes, ephemeral: bool,
                session: Optional[StateSession]) -> None:
        path = normalize_path(path)
        if path in self._nodes:
            raise StateError(f"node already exists: {path}")
        for ancestor in parent_paths(path):
            if ancestor not in self._nodes:
                self._nodes[ancestor] = _Node(b"")
                self._persist_create(ancestor, self._nodes[ancestor])
        node = _Node(data, ephemeral=ephemeral,
                     session_id=session.session_id if session else None)
        self._nodes[path] = node
        self._persist_create(path, node)
        self._fire(path, WatchEventType.CREATED)
        self._fire_child(path)

    def set(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        """Overwrite a node's data; returns the new version."""
        path = normalize_path(path)
        node = self._nodes.get(path)
        if node is None:
            raise StateError(f"cannot set missing node: {path}")
        if expected_version is not None and node.version != expected_version:
            raise StateError(
                f"version conflict on {path}: expected {expected_version}, "
                f"found {node.version}")
        node.data = data
        node.version += 1
        self._persist_set(path, node)
        self._fire(path, WatchEventType.CHANGED)
        return node.version

    def put(self, path: str, data: bytes) -> None:
        """Create-or-set convenience."""
        if self.exists(path):
            self.set(path, data)
        else:
            self.create(path, data)

    def delete(self, path: str, recursive: bool = False) -> None:
        """Delete a node (and optionally its subtree)."""
        path = normalize_path(path)
        if path == "/":
            raise StateError("cannot delete the root")
        if path not in self._nodes:
            raise StateError(f"no such node: {path}")
        prefix = path + "/"
        descendants = [p for p in self._nodes if p.startswith(prefix)]
        if descendants and not recursive:
            raise StateError(f"node {path} has children; use recursive=True")
        for victim in sorted(descendants, reverse=True) + [path]:
            del self._nodes[victim]
            self._persist_delete(victim)
            self._fire(victim, WatchEventType.DELETED)
        self._fire_child(path)

    # -- watches ---------------------------------------------------------------
    def watch(self, path: str, callback: WatchCallback) -> None:
        """One-shot data watch on ``path`` (ZooKeeper-style)."""
        self._watches.setdefault(normalize_path(path), []).append(callback)

    def watch_children(self, path: str, callback: WatchCallback) -> None:
        """One-shot watch firing when ``path``'s child set changes."""
        self._child_watches.setdefault(normalize_path(path),
                                       []).append(callback)

    def _fire(self, path: str, event_type: str) -> None:
        callbacks = self._watches.pop(path, [])
        event = WatchEvent(event_type, path)
        for callback in callbacks:
            callback(event)

    def _fire_child(self, changed_path: str) -> None:
        parent = changed_path.rsplit("/", 1)[0] or "/"
        callbacks = self._child_watches.pop(parent, [])
        event = WatchEvent(WatchEventType.CHANGED, parent)
        for callback in callbacks:
            callback(event)

    # -- persistence hooks ----------------------------------------------------
    def _persist_create(self, path: str, node: _Node) -> None:
        """Subclass hook: a node was created."""

    def _persist_set(self, path: str, node: _Node) -> None:
        """Subclass hook: a node's data changed."""

    def _persist_delete(self, path: str) -> None:
        """Subclass hook: a node was removed."""
