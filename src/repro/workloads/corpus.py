"""The synthetic word corpus.

The paper's WordCount spout "picks a word at random from a set of 450K
English words". No such dictionary ships offline, so we build a
deterministic synthetic corpus of the same cardinality: distinct
lowercase pseudo-words whose distribution under hash partitioning is
indistinguishable from a real dictionary's (uniform across buckets).
"""

from __future__ import annotations

from typing import Dict, List

DEFAULT_CORPUS_SIZE = 450_000

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"
_CACHE: Dict[int, List[str]] = {}


def _word_for(index: int) -> str:
    """A distinct pseudo-word per index (bijective base-26 with a prefix)."""
    letters = []
    value = index
    while True:
        letters.append(_ALPHABET[value % 26])
        value //= 26
        if value == 0:
            break
    return "w" + "".join(reversed(letters))


def corpus(size: int = DEFAULT_CORPUS_SIZE) -> List[str]:
    """The first ``size`` corpus words (memoized; shared across tasks)."""
    if size <= 0:
        raise ValueError(f"corpus size must be positive: {size}")
    cached = _CACHE.get(size)
    if cached is None:
        cached = [_word_for(i) for i in range(size)]
        _CACHE[size] = cached
    return cached
