"""The Fig. 14 production-style topology: Kafka → filter → aggregate → Redis.

"We used a real topology that reads events from Apache Kafka at a rate of
60-100 million events/min. It then filters the tuples before sending
them to an aggregator bolt, which after performing aggregation, stores
the data in Redis."

The paper does not publish the workload's internals, so the selectivity,
aggregation ratio and per-operation user costs below are free parameters
of the reproduction, set (see EXPERIMENTS.md) so the profile matches the
production pie: fetch ≈ 60%, user logic ≈ 21%, Heron ≈ 11%,
write ≈ 8%. The *engine* share is whatever the engine actually charges —
nothing here writes to the ``engine`` category.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.api.component import Bolt, ComponentContext, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import TopologyBuilder
from repro.common.config import Config
from repro.simulation.costs import CostCategory
from repro.workloads.external import KafkaBroker, KafkaConsumer, RedisServer

MICROS = 1e-6

#: Fraction of events that survive the filter.
FILTER_SELECTIVITY = 0.4

#: Input events per aggregate record written to Redis.
AGGREGATION_RATIO = 25

#: Client-side CPU per fetched event (decompress + decode share).
KAFKA_FETCH_COST = 18.0 * MICROS

#: Filter bolt user logic per event.
FILTER_COST = 3.4 * MICROS

#: Aggregator user logic per surviving event.
AGGREGATE_COST = 7.0 * MICROS

#: Redis client cost per aggregate record written.
REDIS_WRITE_COST = 145.0 * MICROS


class KafkaSpout(Spout):
    """Reads events from the (simulated) broker at its production rate."""

    outputs = {"default": ["key", "kind", "value"]}
    user_cost_per_tuple = KAFKA_FETCH_COST
    charges_category = CostCategory.FETCH

    def __init__(self, broker: KafkaBroker, consumer_count: int) -> None:
        super().__init__()
        self.broker = broker
        self.consumer_count = consumer_count
        self._consumer: Optional[KafkaConsumer] = None
        self._now = lambda: 0.0
        self._sample_cap = 0

    def open(self, context: ComponentContext, collector) -> None:
        self._consumer = self.broker.assign(context.task_id,
                                            self.consumer_count)
        self._now = context.now
        self._sample_cap = int(context.config.get(Keys.SAMPLE_CAP))

    def next_batch(self, collector, max_tuples: int) -> int:
        assert self._consumer is not None
        values, count = self._consumer.poll(self._now(), max_tuples,
                                            concrete_cap=self._sample_cap)
        if count:
            collector.emit_batch(values, count=count)
        return count

    def next_tuple(self, collector) -> None:
        assert self._consumer is not None
        values, count = self._consumer.poll(self._now(), 1)
        if count:
            collector.emit(values[0])


class FilterBolt(Bolt):
    """Keeps roughly FILTER_SELECTIVITY of the input events."""

    outputs = {"default": ["key", "kind", "value"]}
    user_cost_per_tuple = FILTER_COST

    def __init__(self, selectivity: float = FILTER_SELECTIVITY) -> None:
        super().__init__()
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1]: {selectivity}")
        self.selectivity = selectivity
        self.passed = 0
        self.dropped = 0

    def _keep(self, values) -> bool:
        # Deterministic predicate: keep `kind` values below the cutoff
        # (kinds are uniform over 0..16, so cutoff approximates the
        # selectivity exactly in expectation).
        return values[1] < int(17 * self.selectivity + 0.5)

    def execute(self, tup, collector) -> None:
        if self._keep(tup.values):
            self.passed += 1
            collector.emit(list(tup.values))
        else:
            self.dropped += 1

    def execute_batch(self, batch, collector) -> None:
        kept = [v for v in batch.values if self._keep(v)]
        total_kept = int(round(batch.count * len(kept) /
                               len(batch.values))) if batch.values else 0
        self.passed += total_kept
        self.dropped += batch.count - total_kept
        if kept and total_kept:
            collector.emit_batch(kept, count=max(total_kept, len(kept)))


class AggregateBolt(Bolt):
    """Windowed aggregation: one output record per AGGREGATION_RATIO
    inputs (per task), carrying per-key partial sums."""

    outputs = {"default": ["agg_key", "agg_value"]}
    user_cost_per_tuple = AGGREGATE_COST

    def __init__(self, ratio: int = AGGREGATION_RATIO) -> None:
        super().__init__()
        if ratio < 1:
            raise ValueError(f"ratio must be >= 1: {ratio}")
        self.ratio = ratio
        self.sums = defaultdict(float)
        self._running_total = 0.0
        self._pending = 0.0
        self._emitted_windows = 0
        self._task_id = 0

    def prepare(self, context: ComponentContext, collector) -> None:
        self._task_id = context.task_id

    def execute(self, tup, collector) -> None:
        self.sums[tup[0]] += tup[2]
        self._running_total += tup[2]
        self._pending += 1
        self._maybe_emit(collector)

    def execute_batch(self, batch, collector) -> None:
        weight = batch.weight
        for values in batch.values:
            self.sums[values[0]] += values[2] * weight
            self._running_total += values[2] * weight
        self._pending += batch.count
        self._maybe_emit(collector)

    def _maybe_emit(self, collector) -> None:
        while self._pending >= self.ratio:
            self._pending -= self.ratio
            self._emitted_windows += 1
            collector.emit([f"agg-{self._task_id}-{self._emitted_windows}",
                            self._running_total])


class RedisSinkBolt(Bolt):
    """Writes aggregate records to the (simulated) Redis server."""

    user_cost_per_tuple = REDIS_WRITE_COST
    charges_category = CostCategory.WRITE

    def __init__(self, server: RedisServer) -> None:
        super().__init__()
        self.server = server

    def execute(self, tup, collector) -> None:
        self.server.write(tup[0], tup[1])

    def execute_batch(self, batch, collector) -> None:
        weight = int(round(batch.weight)) or 1
        for values in batch.values:
            self.server.write(values[0], values[1], count=weight)


def kafka_redis_topology(*, events_per_min: float = 80e6,
                         spouts: int = 24, filters: int = 24,
                         aggregators: int = 24, sinks: int = 12,
                         config: Optional[Config] = None,
                         name: str = "kafka-redis"
                         ) -> tuple:
    """Build the Fig. 14 topology; returns (topology, broker, redis)."""
    broker = KafkaBroker(events_per_min / 60.0)
    redis = RedisServer()
    builder = TopologyBuilder(name)
    builder.set_spout("kafka", KafkaSpout(broker, spouts), spouts)
    builder.set_bolt("filter", FilterBolt(), filters) \
        .shuffle_grouping("kafka")
    builder.set_bolt("aggregate", AggregateBolt(), aggregators) \
        .fields_grouping("filter", fields=["key"])
    builder.set_bolt("sink", RedisSinkBolt(redis), sinks) \
        .shuffle_grouping("aggregate")
    return builder.build(config), broker, redis
