"""Simulated external services: a Kafka broker and a Redis server.

The Fig. 14 production topology "reads events from Apache Kafka at a rate
of 60-100 million events/min ... and stores the data in Redis". Neither
service is available offline, so we model what matters for the paper's
resource-consumption breakdown: the *client-side CPU time* of fetching
and writing, attributed to the ``fetch``/``write`` cost categories, plus
a rate-limited event source.

The :class:`KafkaBroker` is a token-bucket event source: consumers can
never fetch faster than the configured production rate (events arrive
when they arrive). The :class:`RedisServer` counts writes and models a
bounded write rate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.simulation.rng import RngStream


class KafkaBroker:
    """A rate-limited, partitioned event stream.

    ``events_per_sec`` is the aggregate production rate across all
    partitions; each consumer (spout task) owns ``partitions /
    consumer_count`` partitions and can fetch its proportional share.
    """

    def __init__(self, events_per_sec: float, *, partitions: int = 64,
                 payload_fields: int = 3, seed: int = 7) -> None:
        if events_per_sec <= 0:
            raise ValueError(
                f"events_per_sec must be positive: {events_per_sec}")
        if partitions <= 0:
            raise ValueError(f"partitions must be positive: {partitions}")
        self.events_per_sec = events_per_sec
        self.partitions = partitions
        self.payload_fields = payload_fields
        self._rng = RngStream(seed, "kafka")
        self._consumed_by: dict = {}
        self.total_fetched = 0

    def __deepcopy__(self, memo):
        # External services are shared infrastructure: per-task copies of
        # a spout must all talk to the *same* broker.
        return self

    def assign(self, consumer_id: int, consumer_count: int) -> "KafkaConsumer":
        """Create a consumer owning its share of partitions."""
        if not 0 <= consumer_id < consumer_count:
            raise ValueError(
                f"consumer_id {consumer_id} out of range for "
                f"{consumer_count} consumers")
        share = self.events_per_sec / consumer_count
        return KafkaConsumer(self, consumer_id, share)

    def make_event(self, sequence: int) -> List:
        """A synthetic event record: [key, kind, value]."""
        return [f"k{sequence % 10_000}", sequence % 17,
                (sequence * 2654435761) % 1_000_000]


class KafkaConsumer:
    """One spout task's view of the broker: a token bucket at its share
    of the production rate."""

    #: Kafka-consumer-style batching: don't return a fetch until at least
    #: ``min_fetch`` events are available or ``max_wait`` has elapsed
    #: since the last fetch (fetch.min.bytes / fetch.max.wait.ms).
    min_fetch = 250
    max_wait = 0.05

    def __init__(self, broker: KafkaBroker, consumer_id: int,
                 rate: float) -> None:
        self.broker = broker
        self.consumer_id = consumer_id
        self.rate = rate
        self._fetched = 0
        self._sequence = consumer_id << 32
        self._last_fetch = 0.0

    def available(self, now: float) -> int:
        """How many events have been produced but not yet fetched."""
        produced = int(self.rate * now)
        return max(0, produced - self._fetched)

    def poll(self, now: float, max_events: int,
             concrete_cap: int = 0) -> tuple:
        """Fetch up to ``max_events``; returns (values, count).

        ``concrete_cap`` bounds how many concrete records are
        materialized (sampling, as with the WordCount spout)."""
        count = min(max_events, self.available(now))
        if count < min(max_events, self.min_fetch) and \
                now - self._last_fetch < self.max_wait:
            return [], 0
        if count <= 0:
            return [], 0
        self._last_fetch = now
        self._fetched += count
        self.broker.total_fetched += count
        concrete = min(count, concrete_cap) if concrete_cap else count
        values = []
        make_event = self.broker.make_event
        for i in range(concrete):
            self._sequence += 1
            values.append(make_event(self._sequence))
        return values, count


class RedisServer:
    """Counts writes; exposes simple aggregate state for verification."""

    def __init__(self, max_writes_per_sec: Optional[float] = None) -> None:
        self.max_writes_per_sec = max_writes_per_sec
        self.writes = 0
        self.records_written = 0
        self.store: dict = {}

    def __deepcopy__(self, memo):
        # Shared infrastructure: every sink task writes to the same server.
        return self

    def write(self, key, value, count: int = 1) -> None:
        """One pipeline write of ``count`` records."""
        self.writes += 1
        self.records_written += count
        self.store[key] = value
