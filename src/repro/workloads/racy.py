"""Deliberately order-sensitive workload — the race detector's fixture.

Two deterministic spout tasks feed one sink bolt. The tuples the two
tasks emit at any instant carry distinct tags, so whenever their
deliveries land in the same kernel tie group the sink observes a true
scheduling choice. Two sink variants make the detector's discrimination
observable:

* :class:`LastWordBolt` keeps the **last** word seen — a plain
  order-sensitive write (``'w'``), so tied two-source arrivals are a
  real race: :mod:`repro.analysis.races` must flag it (R001) and the
  schedule explorer must confirm divergence;
* :class:`MergeCountBolt` only **accumulates** counts — a commutative
  footprint (``'c'``), so the very same arrival schedule is race-free
  and the detector must stay silent.

This module is a correctness fixture, not a benchmark; it exists so the
``racy``/``commuting`` scenarios of ``heron-sim races`` (and the tests)
exercise both verdicts on an otherwise identical topology.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.api.component import Bolt, ComponentContext, Spout
from repro.api.topology import Topology, TopologyBuilder
from repro.common.config import Config

#: Per-call emission cap: keeps event volume small so short traced runs
#: stay cheap while still producing plenty of cross-source ties.
_BATCH = 4


class TaggedWordSpout(Spout):
    """Emits ``t<task>w<offset>`` — unique per (task, offset), so any
    reordering of two tasks' tuples is visible in downstream state.

    ``total_tuples`` bounds the stream per task so the topology drains
    early; the race scenarios then inject their tied deliveries into a
    quiescent sink, where a reordering is the *final* state change.
    """

    outputs = {"default": ["word"]}

    def __init__(self, total_tuples: int = 120) -> None:
        super().__init__()
        self.total_tuples = total_tuples
        self.offset = 0
        self._tag = ""

    def open(self, context: ComponentContext, collector) -> None:
        self._tag = f"t{context.task_id}"

    def next_batch(self, collector, max_tuples: int) -> int:
        n = min(max_tuples, _BATCH, self.total_tuples - self.offset)
        if n <= 0:
            return 0  # drained: the engine backs off
        start = self.offset
        collector.emit_batch(
            [[f"{self._tag}w{start + i}"] for i in range(n)], count=n)
        self.offset = start + n
        return n

    def next_tuple(self, collector) -> None:
        if self.offset >= self.total_tuples:
            return
        collector.emit([f"{self._tag}w{self.offset}"])
        self.offset += 1


class LastWordBolt(Bolt):
    """Order-sensitive on purpose: remembers the last word it saw.

    ``last_word`` is a plain overwrite — when two tied deliveries from
    different spout tasks are causally unordered, which word survives
    is a kernel tie-break. This is the R001 the detector must find.
    """

    def __init__(self) -> None:
        super().__init__()
        self.last_word = ""
        self.seen = 0

    def execute(self, tup, collector) -> None:
        self.last_word = tup[0]
        self.seen += 1


class MergeCountBolt(Bolt):
    """Commuting twin of :class:`LastWordBolt`: counting only.

    Same arrival schedule, but every update is an accumulation —
    reordering tied deliveries cannot change final state, and the
    detector must prune the pair.
    """

    def __init__(self) -> None:
        super().__init__()
        self.counts: Counter = Counter()
        self.seen = 0

    def execute(self, tup, collector) -> None:
        self.counts[tup[0]] += 1
        self.seen += 1


def racy_topology(*, commuting: bool = False, spouts: int = 2,
                  config: Optional[Config] = None,
                  name: Optional[str] = None) -> Topology:
    """``spouts`` tagged sources shuffled into one sink task."""
    builder = TopologyBuilder(
        name or ("commuting-fixture" if commuting else "racy-fixture"))
    builder.set_spout("src", TaggedWordSpout(), spouts)
    sink: Bolt = MergeCountBolt() if commuting else LastWordBolt()
    builder.set_bolt("sink", sink, 1).shuffle_grouping("src")
    return builder.build(config)
