"""The WordCount topology — the paper's benchmark workload.

"The spout picks a word at random from a set of 450K English words and
emits it. ... The spouts use hash partitioning to distribute the words
to the bolts which in turn count the number of times each word was
encountered" (Section VI-A). The same topology objects run on Heron and
on the baselines.

``WordSpout.next_batch`` honors the engine's ``sample_cap`` config: in
full-fidelity mode every emitted tuple carries a concrete word; in
performance mode a capped sample of concrete words represents the batch
(see DESIGN.md §5).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Optional

from repro.api.component import Bolt, ComponentContext, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import Topology, TopologyBuilder
from repro.common.config import Config
from repro.workloads.corpus import DEFAULT_CORPUS_SIZE, corpus


class WordSpout(Spout):
    """Emits uniformly random corpus words, as fast as it is allowed to."""

    outputs = {"default": ["word"]}

    def __init__(self, corpus_size: int = DEFAULT_CORPUS_SIZE,
                 seed: int = 0) -> None:
        super().__init__()
        self.corpus_size = corpus_size
        self.seed = seed
        self._words = None
        self._rng: Optional[random.Random] = None
        self._sample_cap = 0
        self.acks_seen = 0
        self.fails_seen = 0

    def open(self, context: ComponentContext, collector) -> None:
        # Loaded here (not __init__) so per-task copies share the
        # memoized corpus instead of deep-copying 450K strings.
        self._words = corpus(self.corpus_size)
        self._rng = random.Random((self.seed << 16) ^ context.task_id)
        self._sample_cap = int(context.config.get(Keys.SAMPLE_CAP))

    def next_batch(self, collector, max_tuples: int) -> int:
        assert self._words is not None and self._rng is not None
        concrete = max_tuples
        if self._sample_cap and max_tuples > self._sample_cap:
            concrete = self._sample_cap
        # Index via raw random() rather than Random.choice: same uniform
        # distribution and per-seed determinism, a fraction of the cost
        # on the hottest loop of every performance run.
        rand = self._rng.random
        words = self._words
        n = len(words)
        values = [[words[int(rand() * n)]] for _ in range(concrete)]
        collector.emit_batch(values, count=max_tuples)
        return max_tuples

    def next_tuple(self, collector) -> None:
        assert self._words is not None and self._rng is not None
        collector.emit([self._rng.choice(self._words)])

    def ack(self, tuple_id: int) -> None:
        self.acks_seen += 1

    def fail(self, tuple_id: int) -> None:
        self.fails_seen += 1


class CountBolt(Bolt):
    """Counts word occurrences (weighted when batches are sampled)."""

    outputs = {"default": ["word", "count"]}

    def __init__(self) -> None:
        super().__init__()
        self.counts: Counter = Counter()

    def execute(self, tup, collector) -> None:
        self.counts[tup[0]] += 1

    def execute_batch(self, batch, collector) -> None:
        if not batch.values:
            return
        weight = batch.weight
        if weight == 1.0:
            self.counts.update(values[0] for values in batch.values)
        else:
            for values in batch.values:
                self.counts[values[0]] += weight


def wordcount_topology(parallelism: int = 4, *,
                       corpus_size: int = DEFAULT_CORPUS_SIZE,
                       config: Optional[Config] = None,
                       name: str = "wordcount") -> Topology:
    """The paper's benchmark: N spouts → fields-grouped → N bolts."""
    builder = TopologyBuilder(name)
    builder.set_spout("word", WordSpout(corpus_size), parallelism)
    builder.set_bolt("count", CountBolt(), parallelism) \
        .fields_grouping("word", fields=["word"])
    return builder.build(config)
