"""Stateful WordCount: the effectively-once demonstration workload.

Same shape as :mod:`repro.workloads.wordcount` — spouts fields-grouped
into counting bolts — but both components carry **managed state** through
the ``init_state``/``snapshot_state`` hooks:

* :class:`StatefulWordSpout` reads a deterministic word stream and keeps
  its **offset** as state, so a rollback rewinds it to the last committed
  checkpoint and it re-emits exactly the words whose counts were lost;
* :class:`StatefulCountBolt` keeps its word counts as state.

Because the word at each offset is a pure function of (task, offset),
a failure-free run and a run with any number of rollbacks produce *the
same final counts* when checkpointing is on — which is what the e2e test
and the ``checkpoint`` figure assert. With checkpointing off the bolts
restart empty and the spouts restart at offset 0 only on the failed
container, so counts demonstrably diverge.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from repro.api.component import Bolt, ComponentContext, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import Topology, TopologyBuilder
from repro.common.config import Config
from repro.workloads.corpus import DEFAULT_CORPUS_SIZE, corpus

#: Knuth-style multiplicative hash constant for the per-offset word pick.
_MIX = 2654435761


class StatefulWordSpout(Spout):
    """Replayable source: emits word #offset of a deterministic stream.

    ``total_tuples`` bounds the stream per task (0 = unbounded);
    ``rate`` throttles emission to ``rate`` tuples/sec of simulated time
    per task (0 = as fast as the engine allows). Replayability is the
    source contract effectively-once needs — like a Kafka consumer, the
    snapshot is just the read offset.
    """

    outputs = {"default": ["word"]}
    stateful = True
    #: Offsets are per-task, not keyed: monolithic state is deliberate.
    key_groups = 0

    def __init__(self, total_tuples: int = 0, *, rate: float = 0.0,
                 corpus_size: int = DEFAULT_CORPUS_SIZE,
                 seed: int = 0) -> None:
        super().__init__()
        self.total_tuples = total_tuples
        self.rate = rate
        self.corpus_size = corpus_size
        self.seed = seed
        self.offset = 0
        self._words = None
        self._salt = 0
        self._now = None
        self._sample_cap = 0
        self.acks_seen = 0
        self.fails_seen = 0

    # -- managed state -----------------------------------------------------
    def init_state(self, state: Optional[Any]) -> None:
        self.offset = int(state["offset"]) if state else 0

    def snapshot_state(self) -> Any:
        return {"offset": self.offset}

    # -- Spout protocol ----------------------------------------------------
    def open(self, context: ComponentContext, collector) -> None:
        self._words = corpus(self.corpus_size)
        self._salt = (self.seed << 16) ^ (context.task_id * _MIX)
        self._now = context.now
        self._sample_cap = int(context.config.get(Keys.SAMPLE_CAP))

    def _word_at(self, offset: int) -> str:
        assert self._words is not None
        return self._words[((offset * _MIX) ^ self._salt) % len(self._words)]

    def _paced_target(self, now: float) -> Optional[int]:
        """Cumulative emission budget at simulated time ``now`` (None =
        unpaced). Subclasses override for time-varying load curves."""
        if self.rate > 0:
            return int(now * self.rate)
        return None

    def next_batch(self, collector, max_tuples: int) -> int:
        assert self._words is not None and self._now is not None
        target = self.total_tuples
        paced = self._paced_target(self._now())
        if paced is not None:
            target = min(target, paced) if target else paced
        available = (target - self.offset) if target else max_tuples
        n = min(max_tuples, available)
        if n <= 0:
            return 0  # drained (or pacing): the engine backs off
        start = self.offset
        if self._sample_cap and n > self._sample_cap:
            concrete = self._sample_cap
        else:
            concrete = n
        values = [[self._word_at(start + i)] for i in range(concrete)]
        collector.emit_batch(values, count=n)
        self.offset = start + n
        return n

    def next_tuple(self, collector) -> None:
        collector.emit([self._word_at(self.offset)])
        self.offset += 1

    def ack(self, tuple_id: int) -> None:
        self.acks_seen += 1

    def fail(self, tuple_id: int) -> None:
        self.fails_seen += 1


class StatefulCountBolt(Bolt):
    """Word counter whose counts are managed (checkpointed) state."""

    outputs = {"default": ["word", "count"]}
    stateful = True
    #: Monolithic counts by default; KeyGroupCountBolt partitions them.
    key_groups = 0

    def __init__(self) -> None:
        super().__init__()
        self.counts: Counter = Counter()

    # -- managed state -----------------------------------------------------
    def init_state(self, state: Optional[Any]) -> None:
        self.counts = Counter(state) if state else Counter()

    def snapshot_state(self) -> Any:
        return dict(self.counts)

    # -- Bolt protocol -----------------------------------------------------
    def execute(self, tup, collector) -> None:
        self.counts[tup[0]] += 1

    def execute_batch(self, batch, collector) -> None:
        if not batch.values:
            return
        weight = batch.weight
        if weight == 1.0:
            self.counts.update(values[0] for values in batch.values)
        else:
            for values in batch.values:
                self.counts[values[0]] += weight


def stateful_wordcount_topology(parallelism: int = 4, *,
                                total_tuples: int = 0, rate: float = 0.0,
                                corpus_size: int = DEFAULT_CORPUS_SIZE,
                                config: Optional[Config] = None,
                                name: str = "stateful-wordcount"
                                ) -> Topology:
    """Stateful WordCount: N replayable spouts → fields-grouped counts."""
    builder = TopologyBuilder(name)
    builder.set_spout(
        "word", StatefulWordSpout(total_tuples, rate=rate,
                                  corpus_size=corpus_size), parallelism)
    builder.set_bolt("count", StatefulCountBolt(), parallelism) \
        .fields_grouping("word", fields=["word"])
    return builder.build(config)
