"""Elastic WordCount: the autoscaler's demonstration workload.

Stateful WordCount reshaped for live rescaling (``repro.autoscale``):

* :class:`ScheduledWordSpout` paces emission along a piecewise-constant
  **load schedule** — the diurnal-style curve that sweeps offered load
  up ~10x and back down in the ``elastic`` figure. The spout stays
  replayable (offset state), so effectively-once holds across every
  rescale-triggered rollback;
* :class:`KeyGroupCountBolt` keeps its word counts **per virtual key
  group**, the unit :func:`repro.checkpoint.repartition.restore_into`
  moves between tasks when parallelism changes;
* :func:`elastic_wordcount_topology` wires them with a
  :class:`~repro.autoscale.keygroups.KeyGroupGrouping` on the word edge,
  so routing and state placement agree before and after every rescale.

Because the word at each offset is a pure function of (task, offset)
and the schedule is a pure function of time, an autoscaled run and a
fixed-overprovisioned run must converge to byte-identical final counts
— the acceptance bar of the e2e elasticity test.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.topology import Topology, TopologyBuilder
from repro.autoscale.keygroups import (DEFAULT_KEY_GROUPS, KeyGroupGrouping,
                                       group_of)
from repro.common.config import Config
from repro.workloads.corpus import DEFAULT_CORPUS_SIZE
from repro.workloads.stateful_wordcount import (StatefulCountBolt,
                                                StatefulWordSpout)

#: One (start_time, tuples_per_sec) step of a load schedule.
LoadStep = Tuple[float, float]

#: The default diurnal-style sweep: up ~10x, hold, back down.
DIURNAL_SCHEDULE: List[LoadStep] = [
    (0.0, 2_000.0),
    (2.0, 20_000.0),
    (6.0, 2_000.0),
]


class ScheduledWordSpout(StatefulWordSpout):
    """Replayable spout paced by a piecewise-constant load schedule.

    ``schedule`` is a list of ``(start_time, rate)`` steps in ascending
    start order; the emission budget at time *t* is the integral of the
    step function up to *t* — deterministic, so a rollback re-emits
    exactly the same stream.
    """

    def __init__(self, schedule: Sequence[LoadStep], *,
                 total_tuples: int = 0,
                 corpus_size: int = DEFAULT_CORPUS_SIZE,
                 seed: int = 0) -> None:
        super().__init__(total_tuples, rate=0.0, corpus_size=corpus_size,
                         seed=seed)
        if not schedule:
            raise ValueError("load schedule must have at least one step")
        steps = sorted((float(start), float(rate))
                       for start, rate in schedule)
        if steps[0][0] != 0.0:
            steps.insert(0, (0.0, 0.0))
        self.schedule: List[LoadStep] = steps
        self._starts = [start for start, _rate in steps]
        # Cumulative budget at each step boundary, so _paced_target is
        # O(log steps) per call.
        self._cumulative: List[float] = [0.0]
        for (start, rate), (next_start, _r) in zip(steps[:-1], steps[1:]):
            self._cumulative.append(
                self._cumulative[-1] + rate * (next_start - start))

    def rate_at(self, now: float) -> float:
        """Offered load (tuples/sec per task) at simulated time ``now``."""
        index = bisect_right(self._starts, now) - 1
        return self.schedule[max(0, index)][1]

    def _paced_target(self, now: float) -> Optional[int]:
        index = bisect_right(self._starts, now) - 1
        start, rate = self.schedule[max(0, index)]
        return int(self._cumulative[max(0, index)] + rate * (now - start))


class KeyGroupCountBolt(StatefulCountBolt):
    """Word counter whose state is partitioned by virtual key group.

    Same counting logic as :class:`StatefulCountBolt`; only the snapshot
    shape changes: ``{group_id: {word: count}}`` instead of one flat
    dict, which is what lets the checkpoint layer re-partition it across
    a parallelism change without ever splitting a key.
    """

    def __init__(self, num_groups: int = DEFAULT_KEY_GROUPS,
                 cost_per_tuple: float = 0.0) -> None:
        super().__init__()
        self.key_groups = num_groups
        # Declared user-logic cost bounds per-instance capacity at
        # ~1/cost tuples/sec — what makes offered load actually saturate
        # instances so the autoscaler has something to react to.
        self.user_cost_per_tuple = cost_per_tuple

    def init_state(self, state: Optional[Any]) -> None:
        self.counts = Counter()
        if state:
            for group_counts in state.values():
                for word, count in group_counts.items():
                    self.counts[word] += count

    def snapshot_state(self) -> Any:
        groups: Dict[int, Dict[str, float]] = {}
        for word, count in sorted(self.counts.items()):
            group = group_of(word, self.key_groups)
            groups.setdefault(group, {})[word] = count
        return groups


def elastic_wordcount_topology(spouts: int = 2, counts: int = 2, *,
                               schedule: Optional[Sequence[LoadStep]] = None,
                               total_tuples: int = 0,
                               num_groups: int = DEFAULT_KEY_GROUPS,
                               count_cost_per_tuple: float = 0.0,
                               corpus_size: int = DEFAULT_CORPUS_SIZE,
                               config: Optional[Config] = None,
                               name: str = "elastic-wordcount") -> Topology:
    """Schedule-paced spouts → key-group-partitioned stateful counts.

    ``counts`` is only the *initial* bolt parallelism — the autoscaler
    (or :meth:`TopologyHandle.rescale`) reshapes it live.
    """
    builder = TopologyBuilder(name)
    builder.set_spout(
        "word", ScheduledWordSpout(schedule or DIURNAL_SCHEDULE,
                                   total_tuples=total_tuples,
                                   corpus_size=corpus_size), spouts)
    builder.set_bolt(
        "count", KeyGroupCountBolt(num_groups, count_cost_per_tuple),
        counts) \
        .grouping("word", KeyGroupGrouping(["word"], num_groups))
    return builder.build(config)
