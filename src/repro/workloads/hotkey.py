"""Hot-key stress: Zipf-skewed keys through partial-key grouping.

Real streams are skewed — a few keys dominate (trending hashtags, hot
users). This workload stresses exactly that:

* :class:`ZipfWordSpout` draws words from a Zipf(``skew``) distribution
  over the corpus via a deterministic inverse-CDF: the variate at each
  offset is a pure function of (task, offset, seed), so the stream is
  replayable and a rollback re-emits it exactly — the source contract
  effectively-once needs;
* :func:`hotkey_topology` routes it through **partial-key grouping**
  (Nasir et al.'s two-choice routing, see
  :class:`~repro.api.grouping.PartialKeyGrouping`), which splits each
  key over two candidate tasks so the hottest key cannot pin a single
  instance, into stateful counters.

It doubles as a chaos recovery scenario: the counters checkpoint their
(hot, skewed) counts, so a run with fault injection plus rollbacks must
converge to the same final counts as a clean run —
``tests/test_hotkey_workload.py`` pins that, and the key-group variant
feeds the elastic figure's skewed-load arm.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List, Optional

from repro.api.component import ComponentContext
from repro.api.topology import Topology, TopologyBuilder
from repro.common.config import Config
from repro.workloads.corpus import corpus
from repro.workloads.stateful_wordcount import (_MIX, StatefulCountBolt,
                                                StatefulWordSpout)

#: Default corpus slice for the skewed draw — small enough that the
#: inverse-CDF table builds instantly, large enough for a heavy tail.
DEFAULT_HOTKEY_CORPUS = 10_000

#: Default Zipf exponent; > 1 concentrates mass on the head (the
#: canonical "hot key" regime).
DEFAULT_SKEW = 1.2


class ZipfWordSpout(StatefulWordSpout):
    """Replayable spout with Zipf(``skew``)-distributed word picks.

    Rank *r* (0-based) of the corpus carries probability proportional to
    ``1 / (r + 1) ** skew``; the word at each offset comes from
    inverting the CDF at a deterministic per-offset uniform variate. The
    managed state stays the read offset, inherited unchanged.
    """

    def __init__(self, total_tuples: int = 0, *, rate: float = 0.0,
                 skew: float = DEFAULT_SKEW,
                 corpus_size: int = DEFAULT_HOTKEY_CORPUS,
                 seed: int = 0) -> None:
        super().__init__(total_tuples, rate=rate, corpus_size=corpus_size,
                         seed=seed)
        if skew <= 0:
            raise ValueError(f"zipf skew must be positive: {skew}")
        self.skew = skew
        self._cdf: List[float] = []

    def open(self, context: ComponentContext, collector) -> None:
        super().open(context, collector)
        weights = [1.0 / math.pow(rank + 1, self.skew)
                   for rank in range(self.corpus_size)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cdf.append(acc / total)
        self._cdf = cdf

    def _word_at(self, offset: int) -> str:
        assert self._words is not None and self._cdf
        # A 32-bit mixed hash of the offset as the uniform variate —
        # pure, seeded, and independent of parallelism.
        bits = ((offset * _MIX) ^ self._salt) & 0xFFFFFFFF
        u = (bits + 0.5) / 4294967296.0
        rank = bisect_right(self._cdf, u)
        return self._words[min(rank, len(self._words) - 1)]

    def hot_word(self) -> str:
        """The head of the distribution (rank 0) — what the stress
        checks look for."""
        return corpus(self.corpus_size)[0]


def hotkey_topology(parallelism: int = 4, *, total_tuples: int = 0,
                    rate: float = 0.0, skew: float = DEFAULT_SKEW,
                    corpus_size: int = DEFAULT_HOTKEY_CORPUS,
                    config: Optional[Config] = None,
                    name: str = "hotkey") -> Topology:
    """Zipf spouts → partial-key-grouped stateful counters.

    Partial-key grouping splits every key over two candidate tasks, so
    per-word totals are the sum over instances — the price of not
    letting the hot key saturate one counter.
    """
    builder = TopologyBuilder(name)
    builder.set_spout(
        "word", ZipfWordSpout(total_tuples, rate=rate, skew=skew,
                              corpus_size=corpus_size), parallelism)
    builder.set_bolt("count", StatefulCountBolt(), parallelism) \
        .partial_key_grouping("word", fields=["word"])
    return builder.build(config)
