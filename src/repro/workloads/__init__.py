"""Workloads: the paper's benchmark topologies and external services.

* :mod:`repro.workloads.wordcount` — the WordCount topology used by
  every head-to-head and tuning figure (Figs. 2–13);
* :mod:`repro.workloads.stateful_wordcount` — the stateful WordCount
  variant (replayable spouts + checkpointed counts) driving the
  effectively-once demonstrations of ``repro.checkpoint``;
* :mod:`repro.workloads.elastic` — schedule-paced spouts and
  key-group-partitioned counters for the live-rescale demonstrations of
  ``repro.autoscale``;
* :mod:`repro.workloads.hotkey` — Zipf-skewed keys through partial-key
  grouping (hot-key stress + chaos recovery scenario);
* :mod:`repro.workloads.kafka_redis` — the production-style
  Kafka → filter → aggregate → Redis topology of Fig. 14;
* :mod:`repro.workloads.external` — simulated Kafka broker and Redis
  server with per-operation cost accounting;
* :mod:`repro.workloads.corpus` — the 450K-word synthetic corpus.
"""

from repro.workloads.corpus import DEFAULT_CORPUS_SIZE, corpus
from repro.workloads.elastic import (DIURNAL_SCHEDULE, KeyGroupCountBolt,
                                     ScheduledWordSpout,
                                     elastic_wordcount_topology)
from repro.workloads.hotkey import ZipfWordSpout, hotkey_topology
from repro.workloads.stateful_wordcount import (StatefulCountBolt,
                                                StatefulWordSpout,
                                                stateful_wordcount_topology)
from repro.workloads.wordcount import (CountBolt, WordSpout,
                                       wordcount_topology)

__all__ = [
    "CountBolt",
    "DEFAULT_CORPUS_SIZE",
    "DIURNAL_SCHEDULE",
    "KeyGroupCountBolt",
    "ScheduledWordSpout",
    "StatefulCountBolt",
    "StatefulWordSpout",
    "WordSpout",
    "ZipfWordSpout",
    "corpus",
    "elastic_wordcount_topology",
    "hotkey_topology",
    "stateful_wordcount_topology",
    "wordcount_topology",
]
