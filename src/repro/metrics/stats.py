"""Weighted streaming statistics.

Latency observations arrive per *batch* with a tuple-count weight, so the
stats track weighted mean/min/max plus a deterministic weighted reservoir
for percentile estimates.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple


class WeightedStats:
    """Streaming weighted mean/min/max with a bounded sample reservoir."""

    def __init__(self, reservoir_size: int = 512) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1: {reservoir_size}")
        self.count = 0.0        # total weight
        self.total = 0.0        # weighted sum
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir = WeightedReservoir(reservoir_size)

    def add(self, value: float, weight: float = 1.0) -> None:
        """Record one observation with the given weight."""
        if weight <= 0:
            raise ValueError(f"weight must be positive: {weight}")
        self.count += weight
        self.total += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._reservoir.add(value, weight)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Weighted percentile (q in [0, 1]) from the reservoir."""
        return self._reservoir.percentile(q)

    def merge(self, other: "WeightedStats") -> None:
        """Fold another stats object into this one."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min, bound)
                self.max = bound if self.max is None else max(self.max, bound)
        self._reservoir.merge(other._reservoir)

    def snapshot(self) -> dict:
        """Summary dict: count/mean/min/max/p50/p99."""
        return {"count": self.count, "mean": self.mean,
                "min": self.min, "max": self.max,
                "p50": self.percentile(0.50), "p99": self.percentile(0.99)}


class WeightedReservoir:
    """Deterministic weighted sampling via systematic thinning.

    Keeps at most ``size`` (value, weight) pairs. When full, pairs are
    coalesced by halving: adjacent samples merge, weights add — a simple
    deterministic sketch adequate for figure-level percentiles (no RNG,
    so simulations replay identically).
    """

    def __init__(self, size: int = 512) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1: {size}")
        self.size = size
        self.samples: List[Tuple[float, float]] = []

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add a weighted sample (compacting when full)."""
        self.samples.append((value, weight))
        if len(self.samples) >= 2 * self.size:
            self._compact()

    def _compact(self) -> None:
        """Shrink back to ``size`` samples by repeatedly merging the
        adjacent (by value) pair with the smallest combined weight —
        heavy clusters stay put, so quantile resolution stays balanced
        instead of collapsing the oldest region (a t-digest-flavoured
        strategy)."""
        samples = sorted(self.samples)
        while len(samples) > self.size:
            best = min(range(len(samples) - 1),
                       key=lambda i: samples[i][1] + samples[i + 1][1])
            (v1, w1), (v2, w2) = samples[best], samples[best + 1]
            samples[best:best + 2] = [
                ((v1 * w1 + v2 * w2) / (w1 + w2), w1 + w2)]
        self.samples = samples

    def percentile(self, q: float) -> float:
        """Weighted percentile (q in [0, 1]) over the kept samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1]: {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples, key=lambda pair: pair[0])
        total = sum(weight for _v, weight in ordered)
        target = q * total
        acc = 0.0
        for value, weight in ordered:
            acc += weight
            if acc >= target:
                return value
        return ordered[-1][0]

    def merge(self, other: "WeightedReservoir") -> None:
        """Fold another reservoir's samples into this one."""
        for value, weight in other.samples:
            self.add(value, weight)

    @property
    def total_weight(self) -> float:
        return math.fsum(weight for _v, weight in self.samples)
