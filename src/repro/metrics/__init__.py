"""Metrics primitives: weighted streaming statistics and reservoirs.

Used by engine processes for their counters/latency tracking and by the
experiment harness to compute the figures' series.
"""

from repro.metrics.stats import WeightedReservoir, WeightedStats

__all__ = ["WeightedReservoir", "WeightedStats"]
