"""Elastic scaling subsystem: key-group state + backpressure autoscaler.

Closes the elasticity loop the ROADMAP calls for (STRETCH-style
shared-nothing elasticity, PAPERS.md):

* :mod:`repro.autoscale.keygroups` — virtual key-group partitioning:
  keys hash into a fixed number of groups, groups are range-assigned to
  tasks, and snapshots split/merge along group boundaries so state
  survives a parallelism change.
* :mod:`repro.autoscale.policy` — pluggable scaling policies
  (threshold + hysteresis + cooldown; headroom target).
* :mod:`repro.autoscale.controller` — the :class:`ScalingController`
  actor colocated with the TopologyMaster that turns queue-depth and
  backpressure signals into orchestrated live rescales
  (checkpoint → repack → restore).
* :mod:`repro.autoscale.config_keys` — the ``autoscale.*`` config schema.
"""

from repro.autoscale.config_keys import SCHEMA, AutoscaleConfigKeys
from repro.autoscale.controller import ScalingController
from repro.autoscale.keygroups import (
    DEFAULT_KEY_GROUPS,
    KeyGroupGrouping,
    group_of,
    group_range,
    merge_groups,
    owner_index,
    split_groups,
)
from repro.autoscale.policy import (
    HeadroomPolicy,
    ScalingPolicy,
    ScalingSignals,
    ThresholdPolicy,
    make_policy,
)

__all__ = [
    "AutoscaleConfigKeys",
    "DEFAULT_KEY_GROUPS",
    "HeadroomPolicy",
    "KeyGroupGrouping",
    "SCHEMA",
    "ScalingController",
    "ScalingPolicy",
    "ScalingSignals",
    "ThresholdPolicy",
    "group_of",
    "group_range",
    "make_policy",
    "merge_groups",
    "owner_index",
    "split_groups",
]
