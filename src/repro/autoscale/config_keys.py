"""Configuration keys for the elastic scaling subsystem."""

from __future__ import annotations

from typing import Any

from repro.common.config import ConfigKey, ConfigSchema

SCHEMA = ConfigSchema("autoscale")


def _declare(*args: Any, **kwargs: Any) -> ConfigKey:
    return SCHEMA.declare(ConfigKey(*args, **kwargs))


class AutoscaleConfigKeys:
    """Knobs consumed by the :class:`~repro.autoscale.ScalingController`."""

    AUTOSCALE_ENABLED = _declare(
        "autoscale.enabled", default=False, value_type=bool,
        description="Run a ScalingController next to the TopologyMaster "
                    "that watches queue-depth/backpressure signals and "
                    "drives live rescales (checkpoint -> repack -> "
                    "restore). Requires checkpointing for stateful "
                    "components to survive the parallelism change.")

    AUTOSCALE_INTERVAL_SECS = _declare(
        "autoscale.interval.secs", default=1.0, value_type=float,
        validator=lambda v: v > 0,
        description="Seconds between controller evaluations of the "
                    "scaling policy.")

    AUTOSCALE_POLICY = _declare(
        "autoscale.policy", default="threshold", value_type=str,
        validator=lambda v: v in ("threshold", "headroom"),
        description="Which scaling policy decides parallelism: "
                    "'threshold' (queue-depth watermarks + hysteresis) "
                    "or 'headroom' (target per-instance utilization).")

    AUTOSCALE_COMPONENTS = _declare(
        "autoscale.components", default="", value_type=str,
        description="Comma-separated component names the controller may "
                    "rescale. Empty means every bolt whose incoming "
                    "groupings are all key-group partitioned (the only "
                    "components whose state survives a shape change).")

    COOLDOWN_SECS = _declare(
        "autoscale.cooldown.secs", default=5.0, value_type=float,
        validator=lambda v: v >= 0,
        description="Minimum seconds between rescales of the same "
                    "component; absorbs the restore transient so one "
                    "burst cannot trigger a scale-up/scale-down "
                    "oscillation.")

    HYSTERESIS_TICKS = _declare(
        "autoscale.hysteresis.ticks", default=2, value_type=int,
        validator=lambda v: v >= 1,
        description="Consecutive controller ticks a signal must stay "
                    "beyond a watermark before the policy acts on it.")

    QUEUE_HIGH_WATERMARK = _declare(
        "autoscale.queue.high.watermark", default=60.0, value_type=float,
        validator=lambda v: v > 0,
        description="Mean per-instance queue depth above which the "
                    "threshold policy proposes a scale-up.")

    QUEUE_LOW_WATERMARK = _declare(
        "autoscale.queue.low.watermark", default=5.0, value_type=float,
        validator=lambda v: v >= 0,
        description="Mean per-instance queue depth below which the "
                    "threshold policy proposes a scale-down (must stay "
                    "well under the high watermark).")

    SCALE_FACTOR = _declare(
        "autoscale.scale.factor", default=2.0, value_type=float,
        validator=lambda v: v > 1.0,
        description="Multiplier applied on scale-up (and divided out on "
                    "scale-down) by the threshold policy.")

    MIN_PARALLELISM = _declare(
        "autoscale.min.parallelism", default=1, value_type=int,
        validator=lambda v: v >= 1,
        description="Floor on any component's autoscaled parallelism.")

    MAX_PARALLELISM = _declare(
        "autoscale.max.parallelism", default=16, value_type=int,
        validator=lambda v: v >= 1,
        description="Ceiling on any component's autoscaled parallelism "
                    "(also bounded by the key-group count).")

    TARGET_HEADROOM = _declare(
        "autoscale.target.headroom", default=0.3, value_type=float,
        validator=lambda v: 0 < v < 1,
        description="The headroom policy sizes parallelism so measured "
                    "per-instance load sits at (1 - headroom) of the "
                    "per-instance processing rate.")
