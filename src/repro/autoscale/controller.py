"""The ScalingController: closes the loop from metrics to rescales.

One controller actor runs per autoscaled topology, colocated with the
TopologyMaster in container 0 (control plane, like the checkpoint
coordinator). Every ``autoscale.interval.secs`` it:

1. reads the per-component aggregates the Metrics Managers forwarded to
   the TM (queue depths, emitted/executed counters) and the TM-side
   backpressure view;
2. derives :class:`~repro.autoscale.policy.ScalingSignals` per eligible
   component — arrival rate from the upstream components' emitted
   deltas, executed rate and mean per-instance queue depth from the
   component's own counters;
3. asks the configured :class:`~repro.autoscale.policy.ScalingPolicy`
   for a target parallelism and, when it answers, hands the change to
   the runtime's rescale hook, which drives the orchestrated
   checkpoint → repack → restore sequence
   (:meth:`_TopologyRuntime.apply_rescale`).

Eligibility: only components whose user code declares key-grouped state
(``key_groups > 0``) are rescaled by default — they are the only ones
whose state survives a shape change through
:func:`repro.checkpoint.repartition.restore_into`. The
``autoscale.components`` config key narrows (or overrides) the set.

The controller keeps a ``history`` of every tick's signals and a
``rescales`` log — the ``elastic`` figure and the e2e tests read both.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.autoscale.config_keys import AutoscaleConfigKeys as Keys
from repro.autoscale.policy import ScalingSignals, make_policy
from repro.common.config import Config
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel
from repro.simulation.events import Simulator


class _ScaleTick:
    """Self-timer: evaluate the scaling policy."""


def _component_key_groups(topology: Any, component: str) -> int:
    """Key-group count declared by a component's user code (0 = none)."""
    spec = topology.component(component)
    user = spec.spout if getattr(spec, "spout", None) is not None \
        else spec.bolt
    return int(getattr(user, "key_groups", 0) or 0)


class ScalingController(Actor):
    """Turns backpressure/queue-depth signals into live rescales."""

    def __init__(self, sim: Simulator, *, location: Location, network: Any,
                 ledger: Optional[CostLedger], costs: CostModel,
                 config: Config, pplan: Any,
                 read_component_metrics: Callable[[], Dict[str, Dict[str, float]]],
                 sample_backpressure: Callable[[], bool],
                 request_rescale: Callable[[Dict[str, int]], None]) -> None:
        name = pplan.topology.name
        super().__init__(sim, f"autoscaler-{name}", location,
                         network=network, ledger=ledger,
                         group="scaling-controller")
        self.costs = costs
        self.config = config
        self.pplan = pplan
        self.read_component_metrics = read_component_metrics
        self.sample_backpressure = sample_backpressure
        self.request_rescale = request_rescale

        self.interval = float(config.get(Keys.AUTOSCALE_INTERVAL_SECS))
        self.policy = make_policy(str(config.get(Keys.AUTOSCALE_POLICY)),
                                  config)
        self.eligible: List[str] = self._eligible_components(config, pplan)
        self._upstream: Dict[str, List[str]] = {
            component: self._upstream_of(component)
            for component in self.eligible}

        # Cumulative-counter baselines for rate derivation.
        self._last_counters: Dict[str, Dict[str, float]] = {}
        self._last_tick_at: Optional[float] = None
        #: True while a requested rescale has not yet landed in a new
        #: physical plan (update_plan flips it back).
        self.rescale_in_flight = False

        # --- observability (figure + tests) --------------------------------
        self.history: List[Dict[str, Any]] = []
        self.rescales: List[Dict[str, Any]] = []
        self.rescales_up = 0
        self.rescales_down = 0
        self.ticks = 0

    def start(self) -> None:
        """Arm the evaluation timer (called after attach, like the TM)."""
        self.every(self.interval, lambda: self.deliver(_ScaleTick()))

    def inherit(self, previous: "ScalingController") -> None:
        """Adopt a replaced controller's control state (TM failover).

        The policy object carries per-component cooldown timestamps —
        sharing it keeps the rescale cadence intact across the master
        change instead of re-opening a just-used cooldown window. Rate
        baselines, the in-flight flag, logs and counters come along so
        ``autoscaler_stats()`` and the elastic figure see one continuous
        controller rather than a reset at the failover boundary.
        """
        self.policy = previous.policy
        self._last_counters = {name: dict(values) for name, values
                               in previous._last_counters.items()}
        self._last_tick_at = previous._last_tick_at
        self.rescale_in_flight = previous.rescale_in_flight
        self.history = list(previous.history)
        self.rescales = list(previous.rescales)
        self.rescales_up = previous.rescales_up
        self.rescales_down = previous.rescales_down
        self.ticks = previous.ticks

    # -- wiring ---------------------------------------------------------------
    def _eligible_components(self, config: Config,
                             pplan: Any) -> List[str]:
        configured = str(config.get(Keys.AUTOSCALE_COMPONENTS)).strip()
        topology = pplan.topology
        if configured:
            return [name.strip() for name in configured.split(",")
                    if name.strip()]
        return [name for name in topology.components()
                if not topology.is_spout(name)
                and _component_key_groups(topology, name) > 0]

    def _upstream_of(self, component: str) -> List[str]:
        topology = self.pplan.topology
        spec = topology.component(component, missing_ok=True)
        if spec is None or not hasattr(spec, "inputs"):
            return []
        return sorted({inp.component for inp in spec.inputs})

    def update_plan(self, pplan: Any) -> None:
        """A new physical plan is live: the requested rescale landed."""
        self.pplan = pplan
        self.rescale_in_flight = False

    # -- message handling -----------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, _ScaleTick):
            self._tick()

    # -- the control loop -----------------------------------------------------
    def _rate(self, component: str, counters: Dict[str, float],
              metric: str, dt: float) -> float:
        """Delta-derived rate from a cumulative counter; clamped at zero
        because restores/bounces reset instance counters."""
        last = self._last_counters.get(component, {}).get(metric, 0.0)
        current = counters.get(metric, 0.0)
        if dt <= 0:
            return 0.0
        return max(0.0, (current - last) / dt)

    def _tick(self) -> None:
        self.ticks += 1
        self.charge(self.costs.tmaster_per_event)
        now = self.sim.now
        dt = (now - self._last_tick_at) \
            if self._last_tick_at is not None else 0.0
        metrics = self.read_component_metrics()
        backpressured = bool(self.sample_backpressure())
        for component in self.eligible:
            task_ids = self.pplan.task_ids.get(component, [])
            parallelism = len(task_ids)
            if parallelism == 0:
                continue
            counters = metrics.get(component, {})
            instances = max(1.0, counters.get("instances", parallelism))
            depth = counters.get("queue_depth", 0.0) / instances
            executed_rate = self._rate(component, counters, "executed", dt)
            arrival = 0.0
            for upstream in self._upstream[component]:
                arrival += self._rate(
                    upstream, metrics.get(upstream, {}), "emitted", dt)
            signals = ScalingSignals(
                component=component, parallelism=parallelism,
                queue_depth=depth, arrival_rate=arrival,
                executed_rate=executed_rate,
                in_backpressure=backpressured, time=now)
            self.history.append({
                "time": now, "component": component,
                "parallelism": float(parallelism),
                "queue_depth": depth, "arrival_rate": arrival,
                "executed_rate": executed_rate,
                "backpressure": 1.0 if backpressured else 0.0})
            if self.rescale_in_flight:
                continue  # one orchestrated rescale at a time
            target = self.policy.decide(signals)
            if target is None or target == parallelism:
                continue
            self.policy.record_rescale(component, now)
            self.rescale_in_flight = True
            if target > parallelism:
                self.rescales_up += 1
            else:
                self.rescales_down += 1
            self.rescales.append({
                "time": now, "component": component,
                "from": float(parallelism), "to": float(target)})
            self.charge(self.costs.tmaster_per_event)
            self.request_rescale({component: target})
        self._last_counters = {name: dict(values)
                               for name, values in metrics.items()}
        self._last_tick_at = now
