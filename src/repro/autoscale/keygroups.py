"""Virtual key-group partitioning: the unit of state elasticity.

STRETCH-style shared-nothing elasticity (PAPERS.md) decouples *keys*
from *tasks* through a fixed number of virtual key groups per component:

* every key hashes into one of ``num_groups`` groups
  (:func:`group_of`), and
* every group is owned by exactly one task, with groups assigned to
  tasks in contiguous ranges (:func:`group_range` /
  :func:`owner_index`).

Because the key→group mapping never changes, a parallelism change only
moves whole groups between tasks: a snapshot taken at parallelism *p*
merges its per-task group dicts into one global ``{group: state}`` map
(:func:`merge_groups`) and re-splits it for parallelism *q*
(:func:`split_groups`) without touching any key. The checkpoint layer
(:mod:`repro.checkpoint.repartition`) rides exactly this round trip.

The range convention is the classic ``ceil`` split (same as Flink's
key-group ranges): task *i* of *p* owns groups
``[ceil(i*G/p), ceil((i+1)*G/p))``, and the owner of group *g* is
``g*p // G`` — the two formulas are exact inverses, which
``tests/test_keygroups.py`` pins property-style.

:class:`KeyGroupGrouping` is the routing half: a drop-in stream
grouping that sends each tuple to the task owning its key's group, so
routing and state placement stay consistent across rescales (a plain
``FieldsGrouping`` hashes ``key % p``, which does *not* commute with
range reassignment).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.api.grouping import (Grouping, GroupingInstance, Route,
                                allocate_proportionally, stable_hash)
from repro.api.tuples import Values, fields_index
from repro.common.errors import TopologyError

#: Default number of virtual key groups per component. Far above any
#: realistic parallelism (so ranges stay balanced) yet small enough that
#: per-group snapshot overhead is negligible.
DEFAULT_KEY_GROUPS = 128


def group_of(key: object, num_groups: int) -> int:
    """The virtual key group a key belongs to. Pure and stable: this
    mapping must never depend on parallelism."""
    return stable_hash(key) % num_groups


def group_range(num_groups: int, parallelism: int, index: int) -> range:
    """The contiguous group range owned by task ``index`` of
    ``parallelism`` (half-open, possibly empty when p > G)."""
    if parallelism <= 0:
        raise ValueError(f"parallelism must be positive: {parallelism}")
    if not 0 <= index < parallelism:
        raise ValueError(f"task index {index} out of range for "
                         f"parallelism {parallelism}")
    start = -(-(index * num_groups) // parallelism)
    end = -(-((index + 1) * num_groups) // parallelism)
    return range(start, end)


def owner_index(group: int, num_groups: int, parallelism: int) -> int:
    """The task index (0-based) owning ``group`` — the exact inverse of
    :func:`group_range`."""
    if not 0 <= group < num_groups:
        raise ValueError(f"group {group} out of range [0, {num_groups})")
    return group * parallelism // num_groups


def merge_groups(per_task: Mapping[int, Mapping[int, Any]]) -> Dict[int, Any]:
    """Merge per-task ``{group: state}`` dicts into one global map.

    ``per_task`` maps task ids to the group dicts their snapshots
    returned. Groups must be disjoint across tasks (each group has one
    owner); a duplicate means the snapshot was taken under two
    conflicting assignments and is rejected loudly.
    """
    merged: Dict[int, Any] = {}
    for task in sorted(per_task):
        for group, state in per_task[task].items():
            if group in merged:
                raise ValueError(
                    f"key group {group} appears in more than one task's "
                    f"snapshot (task {task} and an earlier one)")
            merged[group] = state
    return merged


def split_groups(global_groups: Mapping[int, Any], num_groups: int,
                 parallelism: int) -> List[Dict[int, Any]]:
    """Partition a global ``{group: state}`` map into per-task dicts for
    a (possibly different) parallelism, by contiguous group ranges."""
    parts: List[Dict[int, Any]] = [{} for _ in range(parallelism)]
    for group in sorted(global_groups):
        parts[owner_index(group, num_groups, parallelism)][group] = (
            global_groups[group])
    return parts


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

class _KeyGroupInstance(GroupingInstance):
    """Route each tuple to the task owning its key's group."""

    def __init__(self, task_ids: Sequence[int], positions: List[int],
                 num_groups: int) -> None:
        # Contiguous ranges are defined over task *indices*; sorting the
        # ids makes index i the i-th lowest task, matching how
        # split_groups hands out state after a repack (which keeps task
        # ids contiguous 0..p-1).
        super().__init__(sorted(task_ids))
        self._positions = positions
        self._single = positions[0] if len(positions) == 1 else None
        self._num_groups = num_groups
        self._task_memo: Dict[object, int] = {}

    def task_for(self, value: Values) -> int:
        if self._single is not None:
            key = value[self._single]
        else:
            key = tuple(value[p] for p in self._positions)
        try:
            task = self._task_memo.get(key)
        except TypeError:  # unhashable key: no memo
            return self._route(key)
        if task is None:
            task = self._task_memo[key] = self._route(key)
        return task

    def _route(self, key: object) -> int:
        group = group_of(key, self._num_groups)
        return self.task_ids[
            owner_index(group, self._num_groups, len(self.task_ids))]

    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        if not values:
            # Nothing concrete to hash: spread the represented count by
            # range width (exact when the batch is full fidelity anyway).
            if count <= 0:
                return []
            widths = [float(len(group_range(self._num_groups,
                                            len(self.task_ids), i)))
                      for i in range(len(self.task_ids))]
            if sum(widths) <= 0:
                widths = [1.0] * len(self.task_ids)
            shares = allocate_proportionally(widths, count)
            return [(task, [], [], share)
                    for task, share in zip(self.task_ids, shares) if share]
        return self._split_by_choice(values, tuple_ids, count, self.task_for)


class KeyGroupGrouping(Grouping):
    """Key-group partitioning: same key → same group → owning task.

    Unlike :class:`~repro.api.grouping.FieldsGrouping` (``hash % p``),
    the key→group half never changes with parallelism, so re-routing
    after a rescale lands every key exactly where
    :func:`split_groups` placed its state.
    """

    def __init__(self, fields: Sequence[str],
                 num_groups: int = DEFAULT_KEY_GROUPS) -> None:
        if not fields:
            raise TopologyError("key-group grouping needs at least one field")
        if num_groups <= 0:
            raise TopologyError(
                f"key-group grouping needs a positive group count: "
                f"{num_groups}")
        self.fields = list(fields)
        self.num_groups = num_groups

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        if len(task_ids) > self.num_groups:
            raise TopologyError(
                f"parallelism {len(task_ids)} exceeds the key-group count "
                f"{self.num_groups}; some tasks would own no keys")
        positions = fields_index(source_fields, self.fields)
        return _KeyGroupInstance(task_ids, positions, self.num_groups)

    def describe(self) -> str:
        return f"KeyGroupGrouping({self.fields}, groups={self.num_groups})"
