"""Pluggable scaling policies: signals in, target parallelism out.

A policy is a pure-ish decision object the
:class:`~repro.autoscale.controller.ScalingController` consults once per
tick with one component's observed :class:`ScalingSignals`. It answers
``None`` ("leave it") or a target parallelism. All smoothing state
(hysteresis streaks, cooldown clocks, rate EMAs) lives inside the
policy, keyed by component, so the controller stays a thin actor.

Two policies ship:

* :class:`ThresholdPolicy` — classic reactive control: scale up by a
  factor when mean per-instance queue depth stays above the high
  watermark (or the component is backpressured) for ``hysteresis``
  consecutive ticks; scale down when it stays below the low watermark.
  A per-component cooldown absorbs the restore transient after each
  rescale so the loop cannot oscillate.
* :class:`HeadroomPolicy` — model-based: estimate the per-instance
  service rate from ticks where the component was saturated, then size
  parallelism so the measured arrival rate lands at
  ``(1 - headroom)`` of capacity (Karimov et al.'s sustainable-
  throughput framing, PAPERS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.autoscale.config_keys import AutoscaleConfigKeys as Keys
from repro.common.config import Config


@dataclass
class ScalingSignals:
    """One component's observed load at one controller tick."""

    component: str
    parallelism: int
    #: Mean per-instance pending queue depth (tuples).
    queue_depth: float
    #: Tuples/sec arriving from upstream components since the last tick.
    arrival_rate: float
    #: Tuples/sec this component executed since the last tick.
    executed_rate: float
    #: True when any instance of the component reported growing queues
    #: while the topology was in backpressure.
    in_backpressure: bool = False
    #: Simulated time of the observation.
    time: float = 0.0


@dataclass
class _ComponentTrack:
    """Per-component smoothing state shared by the policies."""

    high_streak: int = 0
    low_streak: int = 0
    last_rescale: float = field(default=-math.inf)
    service_rate: float = 0.0  # EMA of per-instance executed rate


class ScalingPolicy:
    """Base policy: bounds, cooldown and hysteresis bookkeeping."""

    def __init__(self, config: Config) -> None:
        self.min_parallelism: int = config.get(Keys.MIN_PARALLELISM)
        self.max_parallelism: int = config.get(Keys.MAX_PARALLELISM)
        self.cooldown: float = config.get(Keys.COOLDOWN_SECS)
        self.hysteresis: int = config.get(Keys.HYSTERESIS_TICKS)
        self._tracks: Dict[str, _ComponentTrack] = {}

    def describe(self) -> str:
        """Short name for logs and figure notes."""
        return type(self).__name__

    # -- shared bookkeeping --------------------------------------------------
    def _track(self, component: str) -> _ComponentTrack:
        track = self._tracks.get(component)
        if track is None:
            track = self._tracks[component] = _ComponentTrack()
        return track

    def _clamp(self, parallelism: int) -> int:
        return max(self.min_parallelism,
                   min(self.max_parallelism, parallelism))

    def _in_cooldown(self, track: _ComponentTrack, now: float) -> bool:
        return now - track.last_rescale < self.cooldown

    def record_rescale(self, component: str, time: float) -> None:
        """The controller reports every applied rescale back here so the
        cooldown clock starts and streaks reset."""
        track = self._track(component)
        track.last_rescale = time
        track.high_streak = 0
        track.low_streak = 0

    # -- the decision --------------------------------------------------------
    def decide(self, signals: ScalingSignals) -> Optional[int]:
        """Target parallelism for the component, or ``None`` to hold."""
        raise NotImplementedError


class ThresholdPolicy(ScalingPolicy):
    """Watermark + hysteresis + cooldown reactive scaling."""

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        self.high_watermark: float = config.get(Keys.QUEUE_HIGH_WATERMARK)
        self.low_watermark: float = config.get(Keys.QUEUE_LOW_WATERMARK)
        self.factor: float = config.get(Keys.SCALE_FACTOR)

    def decide(self, signals: ScalingSignals) -> Optional[int]:
        track = self._track(signals.component)
        pressured = (signals.queue_depth > self.high_watermark
                     or signals.in_backpressure)
        idle = signals.queue_depth < self.low_watermark
        track.high_streak = track.high_streak + 1 if pressured else 0
        track.low_streak = track.low_streak + 1 if idle else 0
        if self._in_cooldown(track, signals.time):
            return None
        p = signals.parallelism
        if track.high_streak >= self.hysteresis:
            target = self._clamp(math.ceil(p * self.factor))
            return target if target != p else None
        if track.low_streak >= self.hysteresis:
            target = self._clamp(math.ceil(p / self.factor))
            return target if target < p else None
        return None


class HeadroomPolicy(ScalingPolicy):
    """Size parallelism for a target utilization headroom.

    Per-instance capacity is only observable when the component is
    saturated (queues pending), so the estimate is an EMA over
    saturated ticks; until the first saturated tick the policy holds.
    """

    #: EMA smoothing for the service-rate estimate.
    ALPHA = 0.5
    #: Queue depth that counts as "saturated" for capacity estimation.
    SATURATION_DEPTH = 1.0

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        self.headroom: float = config.get(Keys.TARGET_HEADROOM)
        self.low_watermark: float = config.get(Keys.QUEUE_LOW_WATERMARK)

    def decide(self, signals: ScalingSignals) -> Optional[int]:
        track = self._track(signals.component)
        p = signals.parallelism
        if signals.queue_depth >= self.SATURATION_DEPTH and p > 0:
            observed = signals.executed_rate / p
            if observed > 0:
                if track.service_rate <= 0:
                    track.service_rate = observed
                else:
                    track.service_rate += self.ALPHA * (
                        observed - track.service_rate)
        if track.service_rate <= 0:
            return None  # capacity unknown until first saturation
        usable = track.service_rate * (1.0 - self.headroom)
        required = self._clamp(
            max(1, math.ceil(signals.arrival_rate / usable)))
        over = required > p or signals.in_backpressure
        under = (required < p
                 and signals.queue_depth < self.low_watermark)
        track.high_streak = track.high_streak + 1 if over else 0
        track.low_streak = track.low_streak + 1 if under else 0
        if self._in_cooldown(track, signals.time):
            return None
        if track.high_streak >= self.hysteresis and required != p:
            return self._clamp(max(required, p + 1))
        if track.low_streak >= self.hysteresis and required < p:
            return required
        return None


def make_policy(name: str, config: Config) -> ScalingPolicy:
    """Instantiate the configured policy (``autoscale.policy``)."""
    if name == "threshold":
        return ThresholdPolicy(config)
    if name == "headroom":
        return HeadroomPolicy(config)
    raise ValueError(f"unknown autoscale policy {name!r}")
