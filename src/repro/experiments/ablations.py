"""Ablations beyond the paper (DESIGN.md §4).

The paper toggles the two Section V-A optimizations *together*
(Figs. 5-9) and never isolates the tuple cache. These runners fill the
gaps:

* **optimization decomposition** — memory pools and lazy deserialization
  toggled independently, so each one's contribution is visible;
* **batching ablation** — the SM tuple cache disabled entirely (every
  routed sub-batch forwarded immediately) vs normal drain-based
  batching.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.experiments.harness import (heron_perf_config,
                                       run_heron_wordcount)
from repro.experiments.series import Figure, ShapeCheck

COMBOS = [
    ("both on", True, True),
    ("lazy only", False, True),
    ("pools only", True, False),
    ("both off", False, False),
]


def run_optimization_decomposition(fast: bool = False) -> Dict[str, Figure]:
    """No-ack WordCount with pools/lazy-deser toggled independently."""
    parallelism = 10 if fast else 25
    warmup, measure = (0.3, 0.5) if fast else (0.4, 0.8)
    figure = Figure("Ablation A", "SM optimizations decomposed",
                    "combo (1=both on, 2=lazy only, 3=pools only, "
                    "4=both off)", "million tuples/min")
    for index, (label, mempool, lazy) in enumerate(COMBOS, start=1):
        point = run_heron_wordcount(
            parallelism, acks=False,
            config=heron_perf_config(acks=False, mempool=mempool,
                                     lazy=lazy),
            warmup=warmup, measure=measure)
        figure.add_point("throughput", index, point.throughput_mtpm)
        figure.notes.append(f"combo {index}: {label} -> "
                            f"{point.throughput_mtpm:,.0f}M tuples/min")
    return {"ablation_opt": figure}


def check_optimization_decomposition(
        figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Ordering claims: both-on > each alone > both-off; lazy > pools."""
    series = figures["ablation_opt"].series["throughput"]
    both_on = series.y_at(1)
    lazy_only = series.y_at(2)
    pools_only = series.y_at(3)
    both_off = series.y_at(4)
    return [
        ShapeCheck("both-on beats every partial combo",
                   both_on > lazy_only and both_on > pools_only,
                   f"on={both_on:.0f}, lazy={lazy_only:.0f}, "
                   f"pools={pools_only:.0f}"),
        ShapeCheck("every partial combo beats both-off",
                   lazy_only > both_off and pools_only > both_off,
                   f"off={both_off:.0f}"),
        ShapeCheck("lazy deserialization contributes more than pools "
                   "(it avoids two full passes per tuple)",
                   lazy_only > pools_only,
                   f"lazy-only {lazy_only:.0f} vs pools-only "
                   f"{pools_only:.0f}"),
    ]


def run_batching_ablation(fast: bool = False) -> Dict[str, Figure]:
    """Fine-grained emission (100-tuple TupleSets) across 25 destinations:
    the regime the tuple cache exists for — without it every routed
    sub-batch is a ~4-tuple transfer and per-batch overheads dominate."""
    parallelism = 10 if fast else 25
    warmup, measure = (0.3, 0.5) if fast else (0.4, 0.8)
    figure = Figure("Ablation B", "Tuple-cache batching on/off",
                    "cache (1=enabled, 0=disabled)", "million tuples/min")
    latency = Figure("Ablation B (latency)", "Tuple-cache batching on/off",
                     "cache (1=enabled, 0=disabled)", "latency (ms)")
    for enabled in (True, False):
        config = heron_perf_config(acks=True, max_pending=10_000,
                                   batch_size=100)
        config.set(Keys.CACHE_ENABLED, enabled)
        point = run_heron_wordcount(parallelism, acks=True, config=config,
                                    warmup=warmup, measure=measure)
        figure.add_point("throughput", int(enabled), point.throughput_mtpm)
        latency.add_point("latency", int(enabled), point.latency_ms)
    return {"ablation_cache": figure, "ablation_cache_latency": latency}


def check_batching_ablation(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """The cache must buy throughput and (closed-loop) lower latency."""
    series = figures["ablation_cache"].series["throughput"]
    lat = figures["ablation_cache_latency"].series["latency"]
    return [
        ShapeCheck("tuple-cache batching improves throughput",
                   series.y_at(1) > series.y_at(0) * 1.1,
                   f"enabled {series.y_at(1):.0f} vs disabled "
                   f"{series.y_at(0):.0f}"),
        ShapeCheck("the overloaded uncached SM also inflates latency "
                   "(closed loop: cap / lower rate)",
                   lat.y_at(0) > lat.y_at(1),
                   f"enabled {lat.y_at(1):.1f}ms vs disabled "
                   f"{lat.y_at(0):.1f}ms"),
    ]


def run(fast: bool = False) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    figures = {}
    figures.update(run_optimization_decomposition(fast))
    figures.update(run_batching_ablation(fast))
    return figures


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    return (check_optimization_decomposition(figures) +
            check_batching_ablation(figures))


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
