"""Elastic scaling figure: the autoscaler tracking a diurnal load sweep.

The ``repro.autoscale`` demonstration, end to end: a stateful
elastic-WordCount (schedule-paced replayable spouts →
key-group-partitioned counters, :mod:`repro.workloads.elastic`) runs
under a piecewise-constant load curve that sweeps offered load up ~10x
and back down. Two runs:

* **autoscaled** — the :class:`~repro.autoscale.ScalingController`
  watches queue depth + backpressure and rescales the ``count`` bolt
  live (checkpoint → repack → restore per rescale);
* **fixed** — the identical bounded stream on a statically
  overprovisioned bolt (the autoscaler's ceiling), no rescales.

Both streams are bounded and deterministic, so the acceptance bar is
exact: the autoscaled run must finish with **byte-identical** final
word counts — every rescale re-partitioned the key-group state and
rolled the spouts back without losing or double-counting anything —
while provisioning fewer instance-seconds than the fixed run.

The figure plots the controller's own history: offered load,
parallelism, mean per-instance queue depth and executed rate over time.
``scripts/perf_report.py --elastic`` turns the same numbers into
``BENCH_elastic.json`` rows.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.autoscale import AutoscaleConfigKeys as AKeys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.experiments.harness import measure_sweep
from repro.experiments.series import Figure, ShapeCheck
from repro.workloads.elastic import LoadStep, elastic_wordcount_topology

#: Load schedule (per spout task): up ~10x, hold, back down.
FULL_SCHEDULE: List[LoadStep] = [(0.0, 1_000.0), (3.0, 10_000.0),
                                 (9.0, 1_000.0)]
FAST_SCHEDULE: List[LoadStep] = [(0.0, 1_000.0), (2.0, 8_000.0),
                                 (5.0, 1_000.0)]
FULL_DRAIN_AT = 12.0
FAST_DRAIN_AT = 7.0
#: Extra settle time after the stream drains (restores, final ticks).
SETTLE_SECS = 2.5

SPOUTS = 2
INITIAL_COUNTS = 2
#: The fixed run's static parallelism == the autoscaler's ceiling.
MAX_COUNTS = 8
#: Declared counter cost: ~5k tuples/sec capacity per instance, so the
#: high phase genuinely saturates the initial shape.
COUNT_COST = 2e-4

SEED = 7


def _schedule_total(schedule: List[LoadStep], drain_at: float) -> int:
    """Tuples per spout task over the whole curve (bounds the stream)."""
    total = 0.0
    for (start, rate), (next_start, _r) in zip(
            schedule, schedule[1:] + [(drain_at, 0.0)]):
        total += rate * (min(next_start, drain_at) - start)
    return int(total)


def _config(autoscaled: bool) -> Config:
    cfg = (Config()
           .set(Keys.ACKING_ENABLED, False)
           .set(Keys.BATCH_SIZE, 50)
           .set(Keys.SAMPLE_CAP, 0)  # full fidelity: counts are exact
           .set(Keys.INSTANCES_PER_CONTAINER, 2)
           .set(Keys.CHECKPOINT_ENABLED, True)
           .set(Keys.CHECKPOINT_INTERVAL_SECS, 0.2)
           .set(Keys.METRICS_REPORT_INTERVAL_SECS, 0.25)
           .set(Keys.METRICS_FORWARD_INTERVAL_SECS, 0.25))
    if autoscaled:
        cfg.set(AKeys.AUTOSCALE_ENABLED, True)
        cfg.set(AKeys.AUTOSCALE_INTERVAL_SECS, 0.5)
        cfg.set(AKeys.COOLDOWN_SECS, 2.0)
        cfg.set(AKeys.QUEUE_HIGH_WATERMARK, 40.0)
        cfg.set(AKeys.QUEUE_LOW_WATERMARK, 2.0)
        cfg.set(AKeys.MIN_PARALLELISM, 2)
        cfg.set(AKeys.MAX_PARALLELISM, MAX_COUNTS)
    return cfg


def measure_run(spec: Tuple[str, bool]) -> Dict[str, Any]:
    """One bounded elastic-WordCount run (picklable for the pool)."""
    mode, fast = spec
    autoscaled = mode == "auto"
    schedule = FAST_SCHEDULE if fast else FULL_SCHEDULE
    drain_at = FAST_DRAIN_AT if fast else FULL_DRAIN_AT
    total = _schedule_total(schedule, drain_at)

    topology = elastic_wordcount_topology(
        SPOUTS, INITIAL_COUNTS if autoscaled else MAX_COUNTS,
        schedule=schedule, total_tuples=total,
        count_cost_per_tuple=COUNT_COST, config=_config(autoscaled))
    cluster = HeronCluster.on_yarn(machines=8, seed=SEED)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()

    # Sample provisioned cores along the run (the elasticity dividend).
    core_seconds = 0.0
    step = 0.25
    while cluster.now < drain_at + SETTLE_SECS:
        cores = handle.provisioned_cores()
        cluster.run_for(step)
        core_seconds += cores * step

    counts: Counter = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    controller = handle.autoscaler
    history = [row for row in controller.history
               if row["component"] == "count"] if controller else []
    rescales = list(controller.rescales) if controller else []
    result: Dict[str, Any] = {
        "counts": dict(counts),
        "total_counted": float(sum(counts.values())),
        "offered_total": float(total * SPOUTS),
        "history": history,
        "rescales": rescales,
        "rescales_up": controller.rescales_up if controller else 0,
        "rescales_down": controller.rescales_down if controller else 0,
        "final_parallelism":
            float(len(handle.physical_plan.task_ids["count"])),
        "core_seconds": core_seconds,
        "restores": handle.checkpoint_stats()["restores"],
    }
    handle.kill()
    return result


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    schedule = FAST_SCHEDULE if fast else FULL_SCHEDULE
    results = measure_sweep(measure_run, [("auto", fast), ("fixed", fast)],
                            parallel=parallel)
    auto, fixed = results

    elastic = Figure("elastic",
                     "Autoscaler tracking a 10x diurnal load sweep",
                     "time (s)", "tuples/sec | instances | queue depth")
    for row in auto["history"]:
        t = row["time"]
        elastic.add_point("offered load (tuples/s)", t,
                          _offered_at(schedule, t) * SPOUTS)
        elastic.add_point("count parallelism", t, row["parallelism"])
        elastic.add_point("queue depth (mean/instance)", t,
                          row["queue_depth"])
        elastic.add_point("executed rate (tuples/s)", t,
                          row["executed_rate"])
    deviation = _deviation(fixed["counts"], auto["counts"])
    identical = auto["counts"] == fixed["counts"]
    elastic.notes.append(
        f"rescales: {len(auto['rescales'])} "
        f"({auto['rescales_up']} up, {auto['rescales_down']} down) via "
        f"{auto['restores']:.0f} checkpoint restores; final parallelism "
        f"{auto['final_parallelism']:g} (fixed run: {MAX_COUNTS})")
    elastic.notes.append(
        f"final counts vs fixed overprovisioned run: "
        f"{'byte-identical' if identical else 'MISMATCH'} "
        f"(deviation {deviation:g} tuples over "
        f"{auto['offered_total']:,.0f})")
    elastic.notes.append(
        f"instance-seconds: autoscaled {auto['core_seconds']:,.0f} "
        f"core-secs vs fixed {fixed['core_seconds']:,.0f} core-secs")
    elastic.notes.append("counts_identical=1.0" if identical
                         else "counts_identical=0.0")
    return {"elastic": elastic}


def _offered_at(schedule: List[LoadStep], t: float) -> float:
    rate = schedule[0][1]
    for start, step_rate in schedule:
        if t >= start:
            rate = step_rate
    return rate


def _deviation(clean: Dict[str, float], other: Dict[str, float]) -> float:
    words = set(clean) | set(other)
    return sum(abs(clean.get(w, 0) - other.get(w, 0)) for w in words)


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the elasticity claims on the measured figure."""
    checks: List[ShapeCheck] = []
    elastic = figures["elastic"]
    parallelism = [y for _x, y in
                   sorted(elastic.series["count parallelism"].points)]
    checks.append(ShapeCheck(
        "elastic: the autoscaler scaled up during the high phase",
        max(parallelism) > parallelism[0],
        f"parallelism peaked at {max(parallelism):g} from "
        f"{parallelism[0]:g}"))
    checks.append(ShapeCheck(
        "elastic: the autoscaler scaled back down after the sweep",
        parallelism[-1] < max(parallelism),
        f"settled at {parallelism[-1]:g} after peaking at "
        f"{max(parallelism):g}"))
    identical = any("counts_identical=1.0" in note
                    for note in elastic.notes)
    checks.append(ShapeCheck(
        "elastic: final counts byte-identical to the fixed "
        "overprovisioned run (effectively-once across rescales)",
        identical, "; ".join(n for n in elastic.notes
                             if "final counts" in n)))
    depths = [y for _x, y in sorted(
        elastic.series["queue depth (mean/instance)"].points)]
    tail = depths[-3:]
    checks.append(ShapeCheck(
        "elastic: queue depth bounded once the stream drains",
        max(tail) < 50.0, f"last depths: {[f'{d:g}' for d in tail]}"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
