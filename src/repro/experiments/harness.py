"""Shared measurement plumbing for the figure runners.

A measurement run is: build the topology with performance-grade config
(sampled batches, counted acking), launch it on a cluster sized like the
paper's testbed, warm up, then measure throughput/latency over a window
by differencing counters — simulated-time rates, fully deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.baselines.storm.cluster import StormCluster
from repro.baselines.storm.config_keys import StormConfigKeys as StormKeys
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB, MINUTES
from repro.core.heron import HeronCluster
from repro.experiments.parallel import run_sweep
from repro.metrics.stats import WeightedStats
from repro.simulation.costs import CostModel
from repro.workloads.wordcount import wordcount_topology

#: The paper's two testbeds.
HDINSIGHT_MACHINE = Resource(cpu=8, ram=28 * GB, disk=500 * GB)
DUAL_XEON_MACHINE = Resource(cpu=24, ram=72 * GB, disk=1000 * GB)

#: Corpus size used in performance runs: the full 450K words dominate
#: setup time without changing hash-partitioning behaviour, so perf runs
#: use a smaller corpus with identical uniformity.
PERF_CORPUS = 45_000


@dataclass
class ExperimentPoint:
    """One measured configuration."""

    engine: str
    parallelism: int
    throughput_tps: float            # tuples/second (simulated)
    latency_s: float                 # mean end-to-end latency (acked runs)
    cores: float                     # provisioned CPU cores
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_mtpm(self) -> float:
        """Million tuples/minute — the paper's throughput unit."""
        return self.throughput_tps * MINUTES / 1e6

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def throughput_mtpm_per_core(self) -> float:
        return self.throughput_mtpm / self.cores if self.cores else 0.0


def measure_sweep(point_fn, specs, *, parallel=None):
    """Evaluate independent sweep points, serially or across a pool.

    The standard entry point for figure modules: ``point_fn`` must be a
    module-level function (picklable) and each spec a picklable value.
    Results come back in spec order and are identical in serial and
    parallel mode — see :mod:`repro.experiments.parallel`.
    """
    return run_sweep(point_fn, specs, parallel=parallel)


def windows_for(parallelism: int, fast: bool) -> tuple:
    """(warmup, measure) seconds, shrunk at scale.

    High-parallelism points simulate millions of events per simulated
    second; steady state is reached well within a few hundred ms, so
    shorter windows lose nothing but wall-clock time.
    """
    if fast:
        return (0.3, 0.5)
    if parallelism >= 200:
        return (0.3, 0.5)
    if parallelism >= 100:
        return (0.3, 0.6)
    return (0.4, 0.8)


class _LatencyWindow:
    """Mean latency over a window by differencing WeightedStats."""

    def __init__(self, stats: WeightedStats) -> None:
        self._count = stats.count
        self._total = stats.total

    def mean_since(self, stats: WeightedStats) -> float:
        dcount = stats.count - self._count
        dtotal = stats.total - self._total
        return dtotal / dcount if dcount > 0 else 0.0


def heron_perf_config(*, acks: bool, optimized: bool = True,
                      max_pending: int = 20_000, drain_ms: float = 10.0,
                      instances_per_container: int = 4,
                      batch_size: int = 1000,
                      sample_cap: int = 24,
                      mempool: Optional[bool] = None,
                      lazy: Optional[bool] = None) -> Config:
    """Performance-run configuration for the Heron engine."""
    cfg = Config()
    cfg.set(Keys.ACKING_ENABLED, acks)
    cfg.set(Keys.ACK_TRACKING, "counted")
    cfg.set(Keys.MAX_SPOUT_PENDING, max_pending)
    cfg.set(Keys.CACHE_DRAIN_FREQUENCY_MS, drain_ms)
    cfg.set(Keys.BATCH_SIZE, batch_size)
    cfg.set(Keys.SAMPLE_CAP, sample_cap)
    cfg.set(Keys.INSTANCES_PER_CONTAINER, instances_per_container)
    cfg.set(Keys.MEMPOOL_ENABLED, optimized if mempool is None else mempool)
    cfg.set(Keys.LAZY_DESERIALIZATION, optimized if lazy is None else lazy)
    return cfg


def machines_for(parallelism: int, instances_per_container: int,
                 machine: Resource) -> int:
    """Machines needed for a WordCount run of this size (+TM headroom)."""
    instances = 2 * parallelism
    containers = math.ceil(instances / instances_per_container)
    container_cpu = instances_per_container + 1.0  # + SM/MM padding
    per_machine = max(1, int(machine.cpu // container_cpu))
    return math.ceil((containers + 1) / per_machine) + 1


def run_heron_wordcount(parallelism: int, *, acks: bool, config: Config,
                        warmup: float = 0.5, measure: float = 1.0,
                        machine: Resource = HDINSIGHT_MACHINE,
                        costs: Optional[CostModel] = None,
                        corpus_size: int = PERF_CORPUS) -> ExperimentPoint:
    """Measure WordCount on Heron (YARN scheduling framework)."""
    ipc = int(config.get(Keys.INSTANCES_PER_CONTAINER))
    cluster = HeronCluster.on_yarn(
        machines=machines_for(parallelism, ipc, machine),
        machine_resource=machine, costs=costs)
    topology = wordcount_topology(parallelism, corpus_size=corpus_size,
                                  config=config)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    return _measure(cluster, handle, parallelism, "heron", acks,
                    warmup, measure)


def run_storm_wordcount(parallelism: int, *, acks: bool, config: Config,
                        warmup: float = 0.5, measure: float = 1.0,
                        machine: Resource = HDINSIGHT_MACHINE,
                        costs: Optional[CostModel] = None,
                        corpus_size: int = PERF_CORPUS) -> ExperimentPoint:
    """Measure WordCount on the Storm baseline, same machine budget."""
    ipc = int(config.get(Keys.INSTANCES_PER_CONTAINER))
    supervisors = machines_for(parallelism, ipc, machine)
    cluster = StormCluster(supervisors=supervisors,
                           supervisor_resource=machine, costs=costs)
    storm_config = config.copy()
    storm_config.set(StormKeys.TRANSFER_FLUSH_MS, 10.0)
    topology = wordcount_topology(parallelism, corpus_size=corpus_size,
                                  config=storm_config)
    handle = cluster.submit_topology(topology)
    return _measure(cluster, handle, parallelism, "storm", acks,
                    warmup, measure)


def _measure(cluster, handle, parallelism: int, engine: str, acks: bool,
             warmup: float, measure: float) -> ExperimentPoint:
    cluster.run_for(warmup)
    start_totals = handle.totals()
    start_time = cluster.now
    latency_window = _LatencyWindow(handle.latency_stats())
    cluster.run_for(measure)
    end_totals = handle.totals()
    window = cluster.now - start_time
    counter = "acked" if acks else "executed"
    throughput = (end_totals[counter] - start_totals[counter]) / window
    latency = latency_window.mean_since(handle.latency_stats()) if acks \
        else 0.0
    cores = handle.provisioned_cores()
    point = ExperimentPoint(engine=engine, parallelism=parallelism,
                            throughput_tps=throughput, latency_s=latency,
                            cores=cores)
    point.extra["failed"] = end_totals["failed"] - start_totals["failed"]
    handle.kill()
    return point
