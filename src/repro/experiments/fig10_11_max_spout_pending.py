"""Figures 10-11: sweeping ``max_spout_pending`` (Section V-B, VI-C).

* Fig. 10 — throughput rises with the pending cap until the topology
  "cannot handle more in-flight tuples", then saturates;
* Fig. 11 — latency rises monotonically with the cap (more in-flight
  tuples ⇒ more queueing — Little's law).

Acks on, WordCount, parallelism ∈ {25, 100, 200} on dual-Xeon machines;
8 instances per container to match the paper's denser second testbed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (DUAL_XEON_MACHINE, heron_perf_config,
                                       measure_sweep, run_heron_wordcount,
                                       windows_for)
from repro.experiments.series import (Figure, ShapeCheck, check_monotonic)

FULL_PARALLELISMS = [25, 100, 200]
FAST_PARALLELISMS = [25]
FULL_PENDING = [1_000, 2_500, 5_000, 10_000, 20_000, 40_000, 60_000]
FAST_PENDING = [1_000, 5_000, 20_000, 60_000]


def series_label(parallelism: int) -> str:
    """The paper's series label for one parallelism level."""
    return f"{parallelism} Spouts/{parallelism} Bolts"


def measure_point(spec: Tuple[int, int, bool]) -> Tuple[float, float]:
    """One sweep point (module-level: picklable for the process pool)."""
    parallelism, pending, fast = spec
    warmup, measure = windows_for(parallelism, fast)
    point = run_heron_wordcount(
        parallelism, acks=True,
        config=heron_perf_config(acks=True, max_pending=pending,
                                 instances_per_container=8),
        warmup=warmup, measure=measure,
        machine=DUAL_XEON_MACHINE)
    return point.throughput_mtpm, point.latency_ms


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    parallelisms = FAST_PARALLELISMS if fast else FULL_PARALLELISMS
    pending_values = FAST_PENDING if fast else FULL_PENDING

    fig10 = Figure("Figure 10", "Throughput vs max spout pending",
                   "max spout pending (tuples)", "million tuples/min")
    fig11 = Figure("Figure 11", "Latency vs max spout pending",
                   "max spout pending (tuples)", "latency (ms)")

    specs = [(parallelism, pending, fast)
             for parallelism in parallelisms
             for pending in pending_values]
    results = measure_sweep(measure_point, specs, parallel=parallel)
    for (parallelism, pending, _fast), (mtpm, latency_ms) in \
            zip(specs, results):
        label = series_label(parallelism)
        fig10.add_point(label, pending, mtpm)
        fig11.add_point(label, pending, latency_ms)

    return {"fig10": fig10, "fig11": fig11}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    checks: List[ShapeCheck] = []
    for label, series in figures["fig10"].series.items():
        points = sorted(series.points)
        rises = points[1][1] > points[0][1] * 1.2
        first_half_max = max(y for _x, y in points[:len(points) // 2 + 1])
        plateau = points[-1][1] < first_half_max * 2.0
        checks.append(ShapeCheck(
            f"Fig 10 [{label}]: throughput rises then saturates",
            rises and plateau,
            f"ys: {', '.join(f'{y:.0f}' for _x, y in points)}"))
    for label, series in figures["fig11"].series.items():
        checks.append(check_monotonic(
            series, increasing=True, tolerance=0.15,
            description=f"Fig 11 [{label}]: latency rises with the cap"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
