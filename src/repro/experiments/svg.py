"""Minimal SVG line-chart rendering for reproduced figures.

No plotting library ships offline, so this renders a
:class:`~repro.experiments.series.Figure` to a standalone SVG line chart
(axes, ticks, legend, one polyline+markers per series) with nothing but
string formatting. `heron-sim figure <id> --svg DIR` and the benchmark
harness use it to produce viewable artifacts next to the CSVs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.series import Figure

#: Line colors per series index (accessible, print-safe).
PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#17becf"]

WIDTH, HEIGHT = 640, 400
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 20, 40, 50


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10 ** int(f"{raw_step:e}".split("e")[1])
    for factor in (1, 2, 2.5, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    first = step * int(low / step)
    if first > low:
        first -= step
    ticks = []
    tick = first
    while tick <= high + step * 0.51:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return f"{int(value):,}"
    return f"{value:g}"


def render_svg(figure: Figure) -> str:
    """Render the figure as a standalone SVG document."""
    all_points: List[Tuple[float, float]] = [
        p for s in figure.series.values() for p in s.points]
    if not all_points:
        raise ValueError(f"figure {figure.figure_id!r} has no points")
    xs = [x for x, _y in all_points]
    ys = [y for _x, y in all_points]
    x_ticks = _nice_ticks(min(xs), max(xs))
    y_ticks = _nice_ticks(min(0.0, min(ys)), max(ys))
    x_lo, x_hi = x_ticks[0], x_ticks[-1]
    y_lo, y_hi = y_ticks[0], y_ticks[-1]

    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    def sx(x: float) -> float:
        return MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="sans-serif">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="14" font-weight="bold">{figure.figure_id}: '
        f'{figure.title}</text>',
    ]
    # Gridlines + ticks.
    for tick in y_ticks:
        y = sy(tick)
        parts.append(f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
                     f'x2="{WIDTH - MARGIN_R}" y2="{y:.1f}" '
                     f'stroke="#e0e0e0"/>')
        parts.append(f'<text x="{MARGIN_L - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end" font-size="10">'
                     f'{_fmt(tick)}</text>')
    for tick in x_ticks:
        x = sx(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{MARGIN_T}" '
                     f'x2="{x:.1f}" y2="{HEIGHT - MARGIN_B}" '
                     f'stroke="#f0f0f0"/>')
        parts.append(f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_B + 16}" '
                     f'text-anchor="middle" font-size="10">'
                     f'{_fmt(tick)}</text>')
    # Axes.
    parts.append(f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
                 f'y2="{HEIGHT - MARGIN_B}" stroke="black"/>')
    parts.append(f'<line x1="{MARGIN_L}" y1="{HEIGHT - MARGIN_B}" '
                 f'x2="{WIDTH - MARGIN_R}" y2="{HEIGHT - MARGIN_B}" '
                 f'stroke="black"/>')
    parts.append(f'<text x="{MARGIN_L + plot_w / 2}" '
                 f'y="{HEIGHT - 12}" text-anchor="middle" '
                 f'font-size="11">{figure.x_label}</text>')
    parts.append(f'<text x="16" y="{MARGIN_T + plot_h / 2}" '
                 f'text-anchor="middle" font-size="11" '
                 f'transform="rotate(-90 16 {MARGIN_T + plot_h / 2})">'
                 f'{figure.y_label}</text>')
    # Series.
    for index, (label, series) in enumerate(figure.series.items()):
        color = PALETTE[index % len(PALETTE)]
        points = sorted(series.points)
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in points:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                         f'r="3" fill="{color}"/>')
        # Legend entry.
        ly = MARGIN_T + 6 + index * 16
        lx = WIDTH - MARGIN_R - 150
        parts.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" '
                     f'y2="{ly}" stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{lx + 24}" y="{ly + 4}" font-size="10">'
                     f'{label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(figure: Figure, path) -> None:
    """Write the rendered chart to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(figure))
