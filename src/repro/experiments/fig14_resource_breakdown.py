"""Figure 14: resource-consumption breakdown of a production topology.

"We used a real topology that reads events from Apache Kafka at a rate
of 60-100 million events/min. It then filters the tuples before sending
them to an aggregator bolt, which after performing aggregation, stores
the data in Redis. ... Heron consumes only 11% of the resources. ...
The remaining resources are used to fetch data from Kafka (60%), execute
the user logic (21%) and write data to Redis (8%)."

We run the analogous Kafka→filter→aggregate→Redis topology (simulated
external services, see ``repro.workloads.kafka_redis``) and read the
CPU-time attribution straight off the simulation's cost ledger.

The measurement window is split into independent *shards* — each shard
is a fresh cluster (its own seed) measured for ``duration / shards``
seconds — so ``REPRO_PARALLEL`` / ``--parallel`` fans the shards across
a process pool like every sweep-style figure. Fractions are computed
from the summed per-category CPU totals, and shard results are summed
in shard order, so serial and pooled runs are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.heron import HeronCluster
from repro.experiments.harness import measure_sweep
from repro.experiments.series import Figure, ShapeCheck
from repro.simulation.costs import CostCategory
from repro.workloads.kafka_redis import kafka_redis_topology

#: The paper's pie, as fractions.
PAPER_BREAKDOWN = {
    CostCategory.FETCH: 0.60,
    CostCategory.USER: 0.21,
    CostCategory.ENGINE: 0.11,
    CostCategory.WRITE: 0.08,
}

SERIES = "measured fraction"
PAPER_SERIES = "paper fraction"

CATEGORY_ORDER = [CostCategory.FETCH, CostCategory.USER,
                  CostCategory.ENGINE, CostCategory.WRITE]

CATEGORY_INDEX = {category: i + 1 for i, category in
                  enumerate(CATEGORY_ORDER)}


#: Measurement shards (independent clusters) per profile.
FULL_SHARDS = 4
FAST_SHARDS = 2


def measure_shard(spec: Tuple[int, int, bool]) -> Dict[str, float]:
    """One measurement shard (module-level: picklable for the pool)."""
    shard_index, shards, fast = spec
    events_per_min = 80e6
    if fast:
        scale = dict(spouts=6, filters=6, aggregators=6, sinks=3)
        events_per_min = 20e6
        duration = 3.0
    else:
        scale = dict(spouts=24, filters=24, aggregators=24, sinks=12)
        duration = 6.0

    config = Config()
    config.set(Keys.SAMPLE_CAP, 24)
    config.set(Keys.BATCH_SIZE, 1000)
    config.set(Keys.INSTANCES_PER_CONTAINER, 4)
    topology, broker, redis = kafka_redis_topology(
        events_per_min=events_per_min, config=config, **scale)

    machine = Resource(cpu=24, ram=72 * GB, disk=1000 * GB)
    instances = sum(scale.values())
    machines = (instances // 4 + 2) * 5 // 4 // 4 + 3
    cluster = HeronCluster.on_yarn(machines=max(machines, 4),
                                   machine_resource=machine,
                                   seed=shard_index)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(1.0)  # warmup: pipeline fills, aggregation windows turn
    baseline = {cat: cluster.ledger.by_category.get(cat, 0.0)
                for cat in CATEGORY_ORDER}
    cluster.run_for(duration / shards)
    result = {cat: cluster.ledger.by_category.get(cat, 0.0) - baseline[cat]
              for cat in CATEGORY_ORDER}
    result["fetched"] = float(broker.total_fetched)
    result["writes"] = float(redis.writes)
    result["records"] = float(redis.records_written)
    return result


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    shards = FAST_SHARDS if fast else FULL_SHARDS
    specs = [(index, shards, fast) for index in range(shards)]
    shard_results = measure_sweep(measure_shard, specs, parallel=parallel)

    totals = {cat: sum(r[cat] for r in shard_results)
              for cat in CATEGORY_ORDER}
    grand = sum(totals.values())

    figure = Figure("Figure 14", "Resource consumption breakdown",
                    "category (1=fetch 2=user 3=heron 4=write)", "fraction")
    for category in CATEGORY_ORDER:
        fraction = totals[category] / grand if grand else 0.0
        figure.add_point(SERIES, CATEGORY_INDEX[category], fraction)
        figure.add_point(PAPER_SERIES, CATEGORY_INDEX[category],
                         PAPER_BREAKDOWN[category])
    fetched = int(sum(r["fetched"] for r in shard_results))
    writes = int(sum(r["writes"] for r in shard_results))
    records = int(sum(r["records"] for r in shard_results))
    figure.notes.append(
        f"events fetched: {fetched:,}; "
        f"redis writes: {writes:,} "
        f"({records:,} records) across {shards} shards")
    return {"fig14": figure}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    figure = figures["fig14"]
    checks: List[ShapeCheck] = []
    measured = {category: figure.series[SERIES].y_at(index)
                for category, index in CATEGORY_INDEX.items()}
    for category in CATEGORY_ORDER:
        target = PAPER_BREAKDOWN[category]
        value = measured[category]
        ok = abs(value - target) <= max(0.06, target * 0.4)
        checks.append(ShapeCheck(
            f"Fig 14: {category} share ~= {target:.0%}", ok,
            f"measured {value:.1%}"))
    ordering = (measured[CostCategory.FETCH] > measured[CostCategory.USER]
                > measured[CostCategory.ENGINE]
                > measured[CostCategory.WRITE] > 0)
    checks.append(ShapeCheck(
        "Fig 14: fetch > user > heron > write ordering", ordering,
        ", ".join(f"{c}={measured[c]:.1%}" for c in CATEGORY_ORDER)))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
