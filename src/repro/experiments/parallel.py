"""Fan independent sweep points of a figure run across processes.

Every figure in the reproduction is a sweep over independent
configurations (parallelism levels, drain frequencies, pending caps...).
Each point builds its own freshly seeded :class:`Simulator` and cluster,
so points share no state and their results do not depend on execution
order — which makes the sweep embarrassingly parallel *and* lets us
promise determinism: :func:`run_sweep` returns results in point order,
and each point's result is bit-identical whether it ran serially, in a
pool, or in any interleaving (the determinism test in
``tests/test_parallel_sweeps.py`` asserts exactly this).

Enable with the ``REPRO_PARALLEL`` environment variable (any value but
``0``/empty), the CLI's ``--parallel`` flag, or ``parallel=True``::

    results = run_sweep(point_fn, specs)              # env-controlled
    results = run_sweep(point_fn, specs, parallel=True)

``point_fn`` must be a module-level function and each spec picklable
(``multiprocessing`` requirements). Pools add per-process interpreter
start-up and result pickling, so parallel mode pays off for full figure
regenerations on multi-core hosts and is off by default.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

S = TypeVar("S")
R = TypeVar("R")

#: Environment switch consulted when ``parallel`` is not given.
ENV_FLAG = "REPRO_PARALLEL"


def parallel_enabled() -> bool:
    """Whether ``REPRO_PARALLEL`` asks for pooled sweeps."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def default_processes(points: int) -> int:
    """Pool size: one process per point, capped at the host's cores."""
    return max(1, min(points, os.cpu_count() or 1))


def run_sweep(point_fn: Callable[[S], R], specs: Sequence[S], *,
              parallel: Optional[bool] = None,
              processes: Optional[int] = None) -> List[R]:
    """Evaluate ``point_fn`` over ``specs``; results in spec order.

    ``parallel=None`` defers to :func:`parallel_enabled`. A single spec,
    ``processes=1``, or a single-core host all fall back to the serial
    path (identical results either way — that is the contract).
    """
    specs = list(specs)
    if parallel is None:
        parallel = parallel_enabled()
    if processes is None:
        processes = default_processes(len(specs))
    if not parallel or len(specs) <= 1 or processes <= 1:
        return [point_fn(spec) for spec in specs]
    # fork keeps the warm interpreter/corpus caches; chunksize=1 because
    # points are few and coarse. Pool.map preserves input order.
    ctx = multiprocessing.get_context("fork") \
        if "fork" in multiprocessing.get_all_start_methods() \
        else multiprocessing.get_context()
    with ctx.Pool(processes=processes) as pool:
        return pool.map(point_fn, specs, chunksize=1)
