"""Section III-B (no figure): the micro-batch latency floor.

"Because of its architecture, [Spark Streaming] operates on small batches
of input data and thus it is not suitable for applications with latency
needs below a few hundred milliseconds."

We run WordCount on the micro-batch baseline across batch intervals and
on Heron (acked, so latency is measured), and show that micro-batch
latency is bounded below by roughly half the batch interval while
Heron's sits in the tens of milliseconds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.baselines.microbatch.engine import MicroBatchEngine
from repro.common.config import Config
from repro.experiments.harness import heron_perf_config, run_heron_wordcount
from repro.experiments.series import Figure, ShapeCheck, check_monotonic
from repro.workloads.wordcount import wordcount_topology

FULL_INTERVALS = [0.1, 0.25, 0.5, 1.0, 2.0]
FAST_INTERVALS = [0.25, 1.0]

MICROBATCH = "Micro-batch engine"
HERON = "Heron"


def run(fast: bool = False) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    intervals = FAST_INTERVALS if fast else FULL_INTERVALS
    figure = Figure("§III-B", "Micro-batch latency floor vs Heron",
                    "batch interval (ms)", "mean latency (ms)")

    config = Config().set(Keys.SAMPLE_CAP, 64)
    for interval in intervals:
        topology = wordcount_topology(2, corpus_size=1000, config=config)
        engine = MicroBatchEngine(topology, batch_interval=interval,
                                  input_rate=50_000.0, executor_count=4)
        result = engine.run(max(3.0, interval * 8))
        figure.add_point(MICROBATCH, interval * 1000,
                         result.mean_latency * 1000)

    heron = run_heron_wordcount(
        4, acks=True, config=heron_perf_config(acks=True),
        warmup=0.3, measure=0.7)
    for interval in intervals:
        figure.add_point(HERON, interval * 1000, heron.latency_ms)
    figure.notes.append(
        "Heron's latency is batch-interval independent (no such knob).")
    return {"microbatch": figure}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    figure = figures["microbatch"]
    checks = [check_monotonic(
        figure.series[MICROBATCH], increasing=True,
        description="micro-batch latency grows with the batch interval")]
    floor_ok = all(latency >= interval_ms / 2
                   for interval_ms, latency in
                   figure.series[MICROBATCH].points)
    checks.append(ShapeCheck(
        "micro-batch latency >= interval/2 (the discretization floor)",
        floor_ok))
    heron_latency = figure.series[HERON].points[0][1]
    slower = [latency for interval_ms, latency in
              figure.series[MICROBATCH].points if interval_ms >= 250]
    checks.append(ShapeCheck(
        "Heron is far below the 'few hundred ms' micro-batch regime",
        all(latency > 3 * heron_latency for latency in slower),
        f"heron {heron_latency:.0f}ms vs micro-batch "
        f"{', '.join(f'{v:.0f}' for v in slower)}ms"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
