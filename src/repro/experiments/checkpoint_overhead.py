"""Checkpointing figures: overhead sweep + effectively-once recovery.

Two beyond-paper figures for the ``repro.checkpoint`` subsystem (the
paper lists stateful topologies among the engine extensions its
modularity is meant to enable; Heron's own stateful-processing release
is the reference implementation):

* **ckpt_overhead** — steady-state throughput of the stateful WordCount
  as the checkpoint interval shrinks. x = checkpoints/second (0 = off).
  Barrier alignment briefly stalls each bolt input channel and every
  task pays the snapshot cost, so overhead grows with frequency;
* **ckpt_recovery** — a mid-run container failure with checkpointing on
  vs off. With the subsystem on, the rollback restores the last
  committed snapshot and replayable spouts rewind: the final counts are
  *exactly* the failure-free counts (deviation 0). Off, the failed
  container's state is simply gone and the counts diverge.

Every sweep point builds its own cluster, so points run serially or in
a pool (``REPRO_PARALLEL`` / ``--parallel``) with identical results.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.experiments.harness import (DUAL_XEON_MACHINE, machines_for,
                                       measure_sweep)
from repro.experiments.series import Figure, ShapeCheck
from repro.workloads.stateful_wordcount import stateful_wordcount_topology

#: Checkpoint intervals swept for the overhead figure (None = disabled).
FULL_INTERVALS: List[Optional[float]] = [None, 1.0, 0.5, 0.25, 0.1, 0.05]
FAST_INTERVALS: List[Optional[float]] = [None, 0.5, 0.1]

#: Overhead-run topology size (spouts = bolts = parallelism).
FULL_PARALLELISM = 8
FAST_PARALLELISM = 4

#: Recovery-run stream: enough per-task tuples to span the failure and
#: the rollback, small enough to compare exact final counts.
RECOVERY_TUPLES_PER_TASK = 3000
RECOVERY_RATE = 10_000.0
RECOVERY_PARALLELISM = 2
RECOVERY_FAIL_AT = 0.15
RECOVERY_RUN_FOR = 3.5


def _overhead_config(interval: Optional[float]) -> Config:
    cfg = (Config()
           .set(Keys.ACKING_ENABLED, False)
           .set(Keys.BATCH_SIZE, 1000)
           .set(Keys.SAMPLE_CAP, 24)
           .set(Keys.INSTANCES_PER_CONTAINER, 4))
    if interval is not None:
        cfg.set(Keys.CHECKPOINT_ENABLED, True)
        cfg.set(Keys.CHECKPOINT_INTERVAL_SECS, interval)
    return cfg


def _recovery_config(checkpointing: bool) -> Config:
    # Full fidelity (no sampling) so final counts are exact and the
    # clean/recovered runs can be compared word by word.
    cfg = (Config()
           .set(Keys.ACKING_ENABLED, False)
           .set(Keys.BATCH_SIZE, 50)
           .set(Keys.SAMPLE_CAP, 0)
           .set(Keys.INSTANCES_PER_CONTAINER, 2))
    if checkpointing:
        cfg.set(Keys.CHECKPOINT_ENABLED, True)
        cfg.set(Keys.CHECKPOINT_INTERVAL_SECS, 0.1)
    return cfg


def measure_point(spec: Tuple) -> Dict:
    """One sweep point (module-level: picklable for the process pool)."""
    kind = spec[0]
    if kind == "overhead":
        return _measure_overhead(interval=spec[1], fast=spec[2])
    return _measure_recovery(mode=spec[1])


def _measure_overhead(interval: Optional[float], fast: bool) -> Dict:
    parallelism = FAST_PARALLELISM if fast else FULL_PARALLELISM
    config = _overhead_config(interval)
    cluster = HeronCluster.on_yarn(
        machines=machines_for(parallelism, 4, DUAL_XEON_MACHINE),
        machine_resource=DUAL_XEON_MACHINE)
    topology = stateful_wordcount_topology(parallelism, config=config)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    warmup, measure = (0.3, 0.5) if fast else (0.4, 1.0)
    cluster.run_for(warmup)
    start = handle.totals()["executed"]
    start_time = cluster.now
    cluster.run_for(measure)
    window = cluster.now - start_time
    throughput = (handle.totals()["executed"] - start) / window
    stats = handle.checkpoint_stats()
    handle.kill()
    return {"throughput_tps": throughput,
            "committed": stats["committed"]}


def _measure_recovery(mode: str) -> Dict:
    """One recovery run: ``clean``, ``ckpt`` (failure, checkpointing on)
    or ``nockpt`` (failure, checkpointing off)."""
    checkpointing = mode != "nockpt"
    cluster = HeronCluster.on_yarn(machines=4)
    topology = stateful_wordcount_topology(
        RECOVERY_PARALLELISM, total_tuples=RECOVERY_TUPLES_PER_TASK,
        rate=RECOVERY_RATE, config=_recovery_config(checkpointing))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    fail_time = -1.0
    if mode != "clean":
        cluster.run_for(RECOVERY_FAIL_AT)
        victims = [jc for jc in
                   cluster.framework.job_containers(topology.name)
                   if jc.role != "tmaster"]
        fail_time = cluster.now
        cluster.cluster.fail_container(victims[0].container)
    cluster.run_for(RECOVERY_RUN_FOR)
    counts: Counter = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    stats = handle.checkpoint_stats()
    recovery_secs = (stats["last_restore_at"] - fail_time
                     if stats["last_restore_at"] >= 0 and fail_time >= 0
                     else -1.0)
    return {"counts": dict(counts), "recovery_secs": recovery_secs,
            "restores": stats["restores"]}


def _deviation(clean: Dict[str, float], other: Dict[str, float]) -> float:
    """Total absolute per-word count difference between two runs."""
    words = set(clean) | set(other)
    return sum(abs(clean.get(w, 0) - other.get(w, 0)) for w in words)


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    intervals = FAST_INTERVALS if fast else FULL_INTERVALS
    specs: List[Tuple] = [("overhead", interval, fast)
                          for interval in intervals]
    specs += [("recovery", mode, fast)
              for mode in ("clean", "ckpt", "nockpt")]
    results = measure_sweep(measure_point, specs, parallel=parallel)
    overhead_results = results[:len(intervals)]
    clean, ckpt, nockpt = results[len(intervals):]

    overhead = Figure("ckpt_overhead",
                      "Checkpointing overhead vs frequency",
                      "checkpoints/second (0 = disabled)",
                      "throughput (tuples/s)")
    baseline = overhead_results[0]["throughput_tps"]
    for interval, result in zip(intervals, overhead_results):
        frequency = 0.0 if interval is None else 1.0 / interval
        tps = result["throughput_tps"]
        overhead.add_point("throughput", frequency, tps)
        overhead.add_point("overhead %", frequency,
                           100.0 * (1.0 - tps / baseline) if baseline
                           else 0.0)
    overhead.notes.append(
        f"baseline (checkpointing off): {baseline:,.0f} tuples/s")

    recovery = Figure("ckpt_recovery",
                      "Effectively-once recovery from container failure",
                      "checkpointing (0 = off, 1 = on)",
                      "final-count deviation (tuples)")
    recovery.add_point("count deviation vs clean run", 0.0,
                       _deviation(clean["counts"], nockpt["counts"]))
    recovery.add_point("count deviation vs clean run", 1.0,
                       _deviation(clean["counts"], ckpt["counts"]))
    recovery.add_point("recovery time (s)", 0.0,
                       max(0.0, nockpt["recovery_secs"]))
    recovery.add_point("recovery time (s)", 1.0,
                       max(0.0, ckpt["recovery_secs"]))
    recovery.notes.append(
        f"clean-run total: {sum(clean['counts'].values()):,.0f} tuples; "
        f"restores: on={ckpt['restores']:.0f} off={nockpt['restores']:.0f}")

    return {"ckpt_overhead": overhead, "ckpt_recovery": recovery}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the subsystem's qualitative claims on the figures."""
    checks: List[ShapeCheck] = []
    overhead = figures["ckpt_overhead"].series["overhead %"]
    points = sorted(overhead.points)
    fastest = points[-1][1]
    slowest_on = points[1][1] if len(points) > 1 else 0.0
    checks.append(ShapeCheck(
        "ckpt_overhead: overhead stays moderate (< 25% at the fastest "
        "interval)", fastest < 25.0, f"fastest-interval: {fastest:.2f}%"))
    checks.append(ShapeCheck(
        "ckpt_overhead: more frequent checkpoints do not cost less",
        fastest >= slowest_on - 2.0,
        f"{slowest_on:.2f}% at slowest vs {fastest:.2f}% at fastest"))

    deviation = figures["ckpt_recovery"].series["count deviation vs "
                                                "clean run"]
    dev_on, dev_off = deviation.y_at(1.0), deviation.y_at(0.0)
    checks.append(ShapeCheck(
        "ckpt_recovery: checkpointing on ⇒ exactly the failure-free "
        "counts (effectively-once)", dev_on == 0.0,
        f"deviation: {dev_on:g}"))
    checks.append(ShapeCheck(
        "ckpt_recovery: checkpointing off ⇒ state is lost",
        dev_off > 0.0, f"deviation: {dev_off:g}"))
    recovery_time = figures["ckpt_recovery"].series["recovery time (s)"]
    checks.append(ShapeCheck(
        "ckpt_recovery: rollback completes after the framework "
        "relaunches the container", recovery_time.y_at(1.0) > 0.0,
        f"recovery: {recovery_time.y_at(1.0):.2f}s"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
