"""The experiment harness: one runner per paper figure.

Each ``figXX_*`` module exposes ``run(fast=False) -> Figure``; a
:class:`~repro.experiments.series.Figure` holds the measured series,
prints the same rows the paper plots, exports CSV, and checks the
paper's qualitative shape (who wins, by what factor, where knees fall).
``fast=True`` shrinks parallelisms and windows for CI-speed smoke runs;
the benchmarks in ``benchmarks/`` run the full configurations.

See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments.harness import (ExperimentPoint, heron_perf_config,
                                       run_heron_wordcount,
                                       run_storm_wordcount)
from repro.experiments.series import Figure, Series

__all__ = [
    "ExperimentPoint",
    "Figure",
    "Series",
    "heron_perf_config",
    "run_heron_wordcount",
    "run_storm_wordcount",
]
