"""The ``bigcluster`` stress scenario: the Fig. 14 production topology
scaled to hundreds of machines and thousands of instances.

The paper's north star is extensibility *at scale*; this scenario is the
simulator's scale ceiling made measurable. It takes the Kafka→filter→
aggregate→Redis production topology from Fig. 14 and multiplies it ~20×
(full profile: 1,792 instances across ~230 machines), then runs the same
simulated window under each event kernel (``REPRO_KERNEL=heap`` and
``calendar``) and reports, per kernel:

* **events/sec** — kernel events processed per host CPU second,
* **wall clock** — host seconds to simulate the window end to end,
* **peak RSS** — the process high-water mark, via ``ru_maxrss``.

Each kernel runs in its own subprocess: ``ru_maxrss`` is a monotonic
per-process high-water mark, so in-process back-to-back runs would let
the first kernel's peak mask the second's. The child prints one JSON
line; the parent builds the comparison figure. Both children simulate
the identical deterministic workload, so processed-event counts must
match exactly — that equality is one of the shape checks, making the
scenario a scale-sized differential test as well as a benchmark.

``scripts/perf_report.py --bigcluster`` appends these numbers to
``BENCH_kernel.json``; ``benchmarks/bench_bigcluster.py`` pins the
calendar-beats-heap ordering in the benchmark suite.
"""

from __future__ import annotations

# lint: allow-file[D001] — like repro.experiments.perf, this module IS
# the wall-clock measurement harness: it times and sizes the host
# process running the simulation. Nothing here runs inside the
# simulated world.

import json
import os
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.experiments.series import Figure, ShapeCheck

KERNELS = ("heap", "calendar")

#: x positions in the comparison figure.
KERNEL_INDEX = {"heap": 1.0, "calendar": 2.0}

#: Full profile: ~20× Fig. 14 — thousands of instances, hundreds of
#: machines. Fast profile: a CI-smoke slice of the same shape.
FULL_SCALE = dict(spouts=512, filters=512, aggregators=512, sinks=256)
FAST_SCALE = dict(spouts=32, filters=32, aggregators=32, sinks=16)


def stress(fast: bool = False) -> Dict[str, float]:
    """Run the big-cluster window under the *current* kernel.

    Returns the raw metrics for this process; meant to run in a child
    process (one per kernel) so peak-RSS numbers do not contaminate
    each other.
    """
    from repro.core.heron import HeronCluster
    from repro.workloads.kafka_redis import kafka_redis_topology

    scale = FAST_SCALE if fast else FULL_SCALE
    events_per_min = 40e6 if fast else 200e6
    warmup = 0.1 if fast else 0.2
    window = 0.3 if fast else 0.5

    config = Config()
    config.set(Keys.SAMPLE_CAP, 24)
    config.set(Keys.BATCH_SIZE, 1000)
    config.set(Keys.INSTANCES_PER_CONTAINER, 4)
    topology, broker, redis = kafka_redis_topology(
        events_per_min=events_per_min, config=config, **scale)

    instances = sum(scale.values())
    containers = instances // int(config.get(Keys.INSTANCES_PER_CONTAINER))
    machines = max(4, containers // 2 + 4)
    machine = Resource(cpu=24, ram=72 * GB, disk=1000 * GB)

    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    cluster = HeronCluster.on_yarn(machines=machines,
                                   machine_resource=machine, seed=7)
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    cluster.run_for(warmup + window)
    wall = time.perf_counter() - wall_start
    cpu = time.process_time() - cpu_start
    totals = handle.totals()
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    events = cluster.sim.events_processed
    return {
        "kernel": cluster.sim.kernel,
        "machines": float(machines),
        "instances": float(instances),
        "events": float(events),
        "wall_s": wall,
        "cpu_s": cpu,
        "events_per_sec": events / cpu if cpu else 0.0,
        "peak_rss_mb": peak_rss_mb,
        "executed": totals["executed"],
        "fetched": float(broker.total_fetched),
        "redis_writes": float(redis.writes),
    }


def measure_kernels(fast: bool = False) -> List[Dict[str, float]]:
    """Run :func:`stress` in one subprocess per kernel."""
    results = []
    for kernel in KERNELS:
        env = dict(os.environ, REPRO_KERNEL=kernel)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.bigcluster",
             "--child"] + (["--fast"] if fast else []),
            env=env, capture_output=True, text=True, check=True)
        results.append(json.loads(proc.stdout.strip().splitlines()[-1]))
    return results


def run(fast: bool = False) -> Dict[str, Figure]:
    """Run the scenario; returns {figure_key: Figure}."""
    results = measure_kernels(fast=fast)
    figure = Figure("bigcluster",
                    "Big-cluster stress: heap vs calendar kernel",
                    "kernel (1=heap 2=calendar)", "metric")
    for row in results:
        x = KERNEL_INDEX[row["kernel"]]
        figure.add_point("events/sec (K)", x, row["events_per_sec"] / 1e3)
        figure.add_point("wall clock (s)", x, row["wall_s"])
        figure.add_point("peak RSS (MB)", x, row["peak_rss_mb"])
        figure.add_point("events (M)", x, row["events"] / 1e6)
    first = results[0]
    figure.notes.append(
        f"{first['machines']:,.0f} machines, "
        f"{first['instances']:,.0f} instances, "
        f"{first['executed']:,.0f} tuples executed, "
        f"{first['fetched']:,.0f} fetched, "
        f"{first['redis_writes']:,.0f} redis writes per run")
    return {"bigcluster": figure}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """The scale claims: both kernels finish the identical workload and
    the calendar queue wins on wall clock."""
    figure = figures["bigcluster"]
    heap_x, cal_x = KERNEL_INDEX["heap"], KERNEL_INDEX["calendar"]
    events_heap = figure.series["events (M)"].y_at(heap_x)
    events_cal = figure.series["events (M)"].y_at(cal_x)
    wall_heap = figure.series["wall clock (s)"].y_at(heap_x)
    wall_cal = figure.series["wall clock (s)"].y_at(cal_x)
    rss_heap = figure.series["peak RSS (MB)"].y_at(heap_x)
    rss_cal = figure.series["peak RSS (MB)"].y_at(cal_x)
    # A smoke run's ~2s wall clock sits inside interpreter-startup and
    # scheduler noise; demand a strict calendar win only when the run is
    # long enough for the kernel to dominate (the full profile, minutes
    # of wall per kernel). The smoke check is "no regression beyond a
    # 15% noise band".
    smoke = events_heap < 1.0  # millions of kernel events
    if smoke:
        wall_check = ShapeCheck(
            "bigcluster: calendar wall clock within noise of heap (smoke)",
            wall_cal <= wall_heap * 1.15,
            f"calendar {wall_cal:.2f}s vs heap {wall_heap:.2f}s")
    else:
        wall_check = ShapeCheck(
            "bigcluster: calendar beats heap on wall clock",
            wall_cal < wall_heap,
            f"calendar {wall_cal:.2f}s vs heap {wall_heap:.2f}s")
    return [
        ShapeCheck("bigcluster: kernels process identical event counts",
                   events_heap == events_cal,
                   f"heap {events_heap:.3f}M vs calendar {events_cal:.3f}M"),
        wall_check,
        ShapeCheck("bigcluster: calendar peak RSS within 1.5x of heap",
                   rss_cal <= rss_heap * 1.5,
                   f"calendar {rss_cal:.0f}MB vs heap {rss_heap:.0f}MB"),
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: ``--child`` measures the current kernel and prints one
    JSON line (used by :func:`measure_kernels`); otherwise runs the full
    heap-vs-calendar comparison. ``--fast`` selects the smoke profile."""
    args = sys.argv[1:] if argv is None else argv
    fast = "--fast" in args
    if "--child" in args:
        print(json.dumps(stress(fast=fast)))
        return 0
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    failed = 0
    for check in check_shapes(figures):
        print(check)
        failed += 0 if check.passed else 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
