"""Section IV-A (no figure): the packing-policy trade-off.

"A user who wants to optimize for load balancing can use a simple Round
Robin algorithm... A user who wants to reduce the total cost of running
a topology in a pay-as-you-go environment can choose a Bin Packing
algorithm that produces a packing plan with the minimum number of
containers."

We pack a heterogeneous topology with the built-in policies and report
container count, total provisioned CPU (the pay-as-you-go cost proxy),
and the load-balance spread (max/min container CPU utilization). The
R-Storm resource-aware policy (see :mod:`repro.packing.rstorm`) packs as
densely as bin packing while additionally co-locating communicating
instances; here we check its cost-side behaviour only — the
placement-quality experiment lives in :mod:`repro.experiments.placement`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.component import Bolt, Spout
from repro.api.topology import TopologyBuilder
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.experiments.series import Figure, ShapeCheck
from repro.packing.ffd import FirstFitDecreasingPacking
from repro.packing.round_robin import RoundRobinPacking
from repro.packing.rstorm import RStormPacking


class _Spout(Spout):
    outputs = {"default": ["x"]}

    def next_tuple(self, collector):
        collector.emit(["x"])


class _Bolt(Bolt):
    def execute(self, tup, collector):
        pass


def heterogeneous_topology(scale: int = 4):
    """A mixed-size topology: big spouts, medium bolts, small sinks."""
    builder = TopologyBuilder("hetero")
    builder.set_spout("ingest", _Spout(), parallelism=2 * scale,
                      resource=Resource(cpu=3.0, ram=3 * GB))
    builder.set_bolt("transform", _Bolt(), parallelism=3 * scale,
                     resource=Resource(cpu=1.5, ram=2 * GB)) \
        .shuffle_grouping("ingest")
    builder.set_bolt("sink", _Bolt(), parallelism=4 * scale,
                     resource=Resource(cpu=0.5, ram=1 * GB)) \
        .shuffle_grouping("transform")
    return builder.build()


def run(fast: bool = False) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    scales = [1, 2, 4] if fast else [1, 2, 4, 8, 16]
    containers = Figure("§IV-A (containers)",
                        "Containers allocated by packing policy",
                        "topology scale", "containers")
    cost = Figure("§IV-A (cost)", "Provisioned CPU by packing policy",
                  "topology scale", "total provisioned cpu cores")
    balance = Figure("§IV-A (balance)", "Load spread by packing policy",
                     "topology scale", "max/min container instance-cpu")

    for scale in scales:
        topology = heterogeneous_topology(scale)
        for policy_name, policy in (("Round Robin", RoundRobinPacking()),
                                    ("FFD Bin Packing",
                                     FirstFitDecreasingPacking()),
                                    ("R-Storm", RStormPacking())):
            policy.initialize(Config(), topology)
            plan = policy.pack()
            containers.add_point(policy_name, scale, plan.container_count)
            cost.add_point(policy_name, scale, plan.total_resource.cpu)
            loads = [c.instance_resource.cpu for c in plan.containers]
            balance.add_point(policy_name, scale,
                              max(loads) / max(min(loads), 1e-9))

    return {"containers": containers, "cost": cost, "balance": balance}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    checks: List[ShapeCheck] = []
    for scale in figures["containers"].series["Round Robin"].xs:
        rr = figures["containers"].series["Round Robin"].y_at(scale)
        ffd = figures["containers"].series["FFD Bin Packing"].y_at(scale)
        checks.append(ShapeCheck(
            f"scale {scale:g}: FFD uses no more containers than RR",
            ffd <= rr, f"FFD {ffd:g} vs RR {rr:g}"))
        rr_cost = figures["cost"].series["Round Robin"].y_at(scale)
        ffd_cost = figures["cost"].series["FFD Bin Packing"].y_at(scale)
        checks.append(ShapeCheck(
            f"scale {scale:g}: FFD provisions no more CPU than RR",
            ffd_cost <= rr_cost + 1e-9,
            f"FFD {ffd_cost:g} vs RR {rr_cost:g}"))
        rr_count = figures["containers"].series["Round Robin"].y_at(scale)
        rstorm_count = figures["containers"].series["R-Storm"].y_at(scale)
        checks.append(ShapeCheck(
            f"scale {scale:g}: R-Storm uses no more containers than RR",
            rstorm_count <= rr_count,
            f"R-Storm {rstorm_count:g} vs RR {rr_count:g}"))
        rstorm_cost = figures["cost"].series["R-Storm"].y_at(scale)
        checks.append(ShapeCheck(
            f"scale {scale:g}: R-Storm provisions no more CPU than RR",
            rstorm_cost <= rr_cost + 1e-9,
            f"R-Storm {rstorm_cost:g} vs RR {rr_cost:g}"))
    rr_spread = figures["balance"].series["Round Robin"].ys
    ffd_spread = figures["balance"].series["FFD Bin Packing"].ys
    checks.append(ShapeCheck(
        "RR balances load at least as evenly as FFD (on average)",
        sum(rr_spread) / len(rr_spread) <=
        sum(ffd_spread) / len(ffd_spread) + 1e-9,
        f"mean spread RR {sum(rr_spread) / len(rr_spread):.2f} vs "
        f"FFD {sum(ffd_spread) / len(ffd_spread):.2f}"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
