"""Extension experiment: online auto-tuning (Section V-B future work).

Starts the WordCount topology at deliberately bad settings — a 1ms drain
interval (deep in Fig. 12's flush-overhead regime) and a 100K pending
window (deep in Fig. 11's queueing regime) — attaches the
:class:`~repro.tuning.AutoTuner`, and shows that within a few tens of
simulated seconds it recovers most of the throughput/latency a manually
tuned configuration achieves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.common.config import Config
from repro.core.heron import HeronCluster
from repro.experiments.series import Figure, ShapeCheck
from repro.tuning import AutoTuner
from repro.workloads.wordcount import wordcount_topology

BAD_DRAIN_MS = 1.0
BAD_PENDING = 100_000
GOOD_DRAIN_MS = 12.0
GOOD_PENDING = 10_000
LATENCY_SLO = 0.060


def _launch(parallelism, drain_ms, pending):
    cfg = Config()
    cfg.set(Keys.BATCH_SIZE, 1000)
    cfg.set(Keys.SAMPLE_CAP, 16)
    cfg.set(Keys.ACKING_ENABLED, True)
    cfg.set(Keys.ACK_TRACKING, "counted")
    cfg.set(Keys.MAX_SPOUT_PENDING, pending)
    cfg.set(Keys.CACHE_DRAIN_FREQUENCY_MS, drain_ms)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(parallelism, corpus_size=1000, config=cfg))
    handle.wait_until_running()
    return cluster, handle


def _window(cluster, handle, seconds):
    totals = handle.totals()
    stats = handle.latency_stats()
    base = (totals["acked"], stats.count, stats.total, cluster.now)
    cluster.run_for(seconds)
    totals = handle.totals()
    stats = handle.latency_stats()
    window = cluster.now - base[3]
    throughput = (totals["acked"] - base[0]) / window
    dcount = stats.count - base[1]
    latency = (stats.total - base[2]) / dcount if dcount else 0.0
    return throughput, latency


def run(fast: bool = False) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    parallelism = 4 if fast else 8
    tune_time = 10.0 if fast else 25.0

    figure = Figure("Auto-tuning", "Online tuning vs manual settings",
                    "config (1=bad start, 2=auto-tuned, 3=manual best)",
                    "million tuples/min")
    latency_fig = Figure("Auto-tuning (latency)", "Latency under tuning",
                         "config (1=bad start, 2=auto-tuned, "
                         "3=manual best)", "latency (ms)")

    # 1: the bad configuration, untouched.
    cluster, handle = _launch(parallelism, BAD_DRAIN_MS, BAD_PENDING)
    cluster.run_for(1.0)
    bad_tps, bad_lat = _window(cluster, handle, 2.0)
    handle.kill()

    # 2: same bad start, tuner attached.
    cluster, handle = _launch(parallelism, BAD_DRAIN_MS, BAD_PENDING)
    tuner = AutoTuner(handle, interval=0.5, latency_slo=LATENCY_SLO)
    tuner.attach()
    cluster.run_for(tune_time)
    tuned_tps, tuned_lat = _window(cluster, handle, 2.0)
    trace = tuner.report
    handle.kill()

    # 3: the manually tuned reference.
    cluster, handle = _launch(parallelism, GOOD_DRAIN_MS, GOOD_PENDING)
    cluster.run_for(1.0)
    good_tps, good_lat = _window(cluster, handle, 2.0)
    handle.kill()

    for index, (tps, lat) in enumerate(((bad_tps, bad_lat),
                                        (tuned_tps, tuned_lat),
                                        (good_tps, good_lat)), start=1):
        figure.add_point("throughput", index, tps * 60 / 1e6)
        latency_fig.add_point("latency", index, lat * 1e3)
    figure.notes.append(
        f"tuner converged to drain {trace.final_drain_ms:.1f}ms, "
        f"pending {trace.final_max_pending} after {len(trace.steps)} "
        f"observations")
    return {"autotune": figure, "autotune_latency": latency_fig}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    throughput = figures["autotune"].series["throughput"]
    latency = figures["autotune_latency"].series["latency"]
    bad, tuned, good = (throughput.y_at(i) for i in (1, 2, 3))
    bad_lat, tuned_lat, _good_lat = (latency.y_at(i) for i in (1, 2, 3))
    return [
        # The bad start is not throughput-starved (a huge pending window
        # buys throughput at the price of ~5x-SLO latency); the tuner's
        # job is to fix latency without giving that throughput back.
        ShapeCheck("auto-tuning holds or improves throughput while "
                   "repairing the configuration",
                   tuned >= bad * 0.9,
                   f"bad {bad:.0f} -> tuned {tuned:.0f}M tuples/min"),
        ShapeCheck("auto-tuning reaches >=70% of the manual optimum",
                   tuned >= 0.7 * good,
                   f"tuned {tuned:.0f} vs manual {good:.0f}M tuples/min"),
        ShapeCheck("auto-tuning pulls latency toward the SLO",
                   tuned_lat < bad_lat * 0.5 and
                   tuned_lat < LATENCY_SLO * 1e3 * 1.5,
                   f"bad {bad_lat:.0f}ms -> tuned {tuned_lat:.0f}ms "
                   f"(SLO {LATENCY_SLO * 1e3:.0f}ms)"),
    ]


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
