"""Figures 12-13: sweeping ``cache_drain_frequency_ms`` (Section V-B, VI-C).

* Fig. 12 — throughput peaks at an intermediate drain interval: small
  intervals pay the flush overhead, large ones lengthen the round trip
  so the bounded in-flight window starves the spouts;
* Fig. 13 — latency is U-shaped for the same two reasons.

Acks on, WordCount, parallelism ∈ {25, 100, 200}; the pending cap is
fixed while the drain interval varies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (DUAL_XEON_MACHINE, heron_perf_config,
                                       measure_sweep, run_heron_wordcount,
                                       windows_for)
from repro.experiments.series import (Figure, ShapeCheck,
                                      check_peak_interior)

FULL_PARALLELISMS = [25, 100, 200]
FAST_PARALLELISMS = [25]
FULL_DRAINS_MS = [1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0]
FAST_DRAINS_MS = [1.0, 5.0, 15.0, 35.0]

#: Fixed pending cap while the drain interval is swept: the decline at
#: large intervals is the cap starving the spout (Section VI-C).
MAX_PENDING = 8_000


def series_label(parallelism: int) -> str:
    """The paper's series label for one parallelism level."""
    return f"{parallelism} Spouts/{parallelism} Bolts"


def measure_point(spec: Tuple[int, float, bool]) -> Tuple[float, float]:
    """One sweep point (module-level: picklable for the process pool)."""
    parallelism, drain_ms, fast = spec
    warmup, measure = windows_for(parallelism, fast)
    point = run_heron_wordcount(
        parallelism, acks=True,
        config=heron_perf_config(acks=True, drain_ms=drain_ms,
                                 max_pending=MAX_PENDING,
                                 instances_per_container=8),
        warmup=warmup, measure=measure,
        machine=DUAL_XEON_MACHINE)
    return point.throughput_mtpm, point.latency_ms


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    parallelisms = FAST_PARALLELISMS if fast else FULL_PARALLELISMS
    drains = FAST_DRAINS_MS if fast else FULL_DRAINS_MS

    fig12 = Figure("Figure 12", "Throughput vs cache drain frequency",
                   "cache drain frequency (ms)", "million tuples/min")
    fig13 = Figure("Figure 13", "Latency vs cache drain frequency",
                   "cache drain frequency (ms)", "latency (ms)")

    specs = [(parallelism, drain_ms, fast)
             for parallelism in parallelisms
             for drain_ms in drains]
    results = measure_sweep(measure_point, specs, parallel=parallel)
    for (parallelism, drain_ms, _fast), (mtpm, latency_ms) in \
            zip(specs, results):
        label = series_label(parallelism)
        fig12.add_point(label, drain_ms, mtpm)
        fig13.add_point(label, drain_ms, latency_ms)

    return {"fig12": fig12, "fig13": fig13}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    checks: List[ShapeCheck] = []
    for label, series in figures["fig12"].series.items():
        checks.append(check_peak_interior(
            series,
            description=f"Fig 12 [{label}]: throughput peaks at an "
                        f"intermediate drain interval"))
    for label, series in figures["fig13"].series.items():
        points = sorted(series.points)
        minimum = min(y for _x, y in points)
        u_shaped = points[0][1] > minimum * 1.1 and \
            points[-1][1] > minimum * 1.1
        checks.append(ShapeCheck(
            f"Fig 13 [{label}]: latency is U-shaped over the sweep",
            u_shaped,
            f"ys: {', '.join(f'{y:.1f}' for _x, y in points)}"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
