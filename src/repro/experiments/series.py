"""Figure/series containers: printing, CSV export, shape checks."""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Series:
    """One plotted line: label plus (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one (x, y) point."""
        self.points.append((x, y))

    def y_at(self, x: float) -> float:
        """The y value at an exact x (KeyError if absent)."""
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x}")

    @property
    def xs(self) -> List[float]:
        return [x for x, _y in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _x, y in self.points]

    def argmax(self) -> float:
        """x of the maximum y."""
        if not self.points:
            raise ValueError(f"series {self.label!r} is empty")
        return max(self.points, key=lambda p: p[1])[0]


class Figure:
    """A reproduced paper figure: series + axis labels + shape checks."""

    def __init__(self, figure_id: str, title: str, x_label: str,
                 y_label: str) -> None:
        self.figure_id = figure_id
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.series: Dict[str, Series] = {}
        self.notes: List[str] = []

    def series_for(self, label: str) -> Series:
        """Get-or-create the series with this label."""
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def add_point(self, label: str, x: float, y: float) -> None:
        """Append a point to the labeled series."""
        self.series_for(label).add(x, y)

    # -- output -----------------------------------------------------------
    def format_table(self) -> str:
        """A table with one row per x value, one column per series."""
        out = io.StringIO()
        out.write(f"== {self.figure_id}: {self.title} ==\n")
        labels = list(self.series)
        xs = sorted({x for s in self.series.values() for x in s.xs})
        header = [self.x_label] + labels
        rows = []
        for x in xs:
            row = [f"{x:g}"]
            for label in labels:
                try:
                    row.append(f"{self.series[label].y_at(x):,.2f}")
                except KeyError:
                    row.append("-")
            rows.append(row)
        widths = [max(len(header[i]), *(len(r[i]) for r in rows))
                  for i in range(len(header))]
        out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        out.write(f"    [{self.y_label}]\n")
        for row in rows:
            out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            out.write("\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def print(self) -> None:
        """Print the figure as an aligned table."""
        print(self.format_table())

    def to_csv(self) -> str:
        """CSV rendering: x,series,y rows."""
        lines = [f"{self.x_label},series,{self.y_label}"]
        for label, series in self.series.items():
            for x, y in series.points:
                lines.append(f"{x:g},{label},{y:g}")
        return "\n".join(lines) + "\n"


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper, verified on a Figure."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.description}" + \
            (f" ({self.detail})" if self.detail else "")


def check_ratio_band(figure: Figure, better: str, worse: str,
                     low: float, high: float, *,
                     description: str,
                     slack: float = 0.35) -> ShapeCheck:
    """Check that series ``better`` / ``worse`` falls in [low, high]
    (± slack as relative tolerance on the band edges) at every shared x.
    """
    ratios = []
    for x in figure.series[better].xs:
        try:
            denominator = figure.series[worse].y_at(x)
        except KeyError:
            continue
        if denominator > 0:
            ratios.append(figure.series[better].y_at(x) / denominator)
    if not ratios:
        return ShapeCheck(description, False, "no comparable points")
    lo_bound = low * (1 - slack)
    hi_bound = high * (1 + slack)
    ok = all(lo_bound <= r <= hi_bound for r in ratios)
    detail = f"ratios {', '.join(f'{r:.2f}' for r in ratios)} vs " \
             f"band [{low}, {high}]"
    return ShapeCheck(description, ok, detail)


def check_monotonic(series: Series, increasing: bool, *,
                    description: str, tolerance: float = 0.05) -> ShapeCheck:
    """Check a series is (near-)monotonic along x."""
    points = sorted(series.points)
    ok = True
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        if increasing and y2 < y1 * (1 - tolerance):
            ok = False
        if not increasing and y2 > y1 * (1 + tolerance):
            ok = False
    return ShapeCheck(description, ok,
                      f"ys: {', '.join(f'{y:.1f}' for _x, y in points)}")


def check_peak_interior(series: Series, *, description: str) -> ShapeCheck:
    """Check a series peaks strictly inside its x range (rise then fall)."""
    points = sorted(series.points)
    if len(points) < 3:
        return ShapeCheck(description, False, "too few points")
    peak_x = max(points, key=lambda p: p[1])[0]
    interior = points[0][0] < peak_x < points[-1][0]
    first, last, peak = points[0][1], points[-1][1], \
        max(y for _x, y in points)
    shaped = peak > first and peak > last
    return ShapeCheck(description, interior and shaped,
                      f"peak at x={peak_x:g}; "
                      f"ends {first:.1f}/{last:.1f}, peak {peak:.1f}")
