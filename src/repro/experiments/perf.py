"""Performance measurement for the simulation kernel and figure runs.

Two measurements, both recorded in ``BENCH_kernel.json`` by
``scripts/perf_report.py`` so the perf trajectory is tracked PR over PR
(methodology after Karimov et al., arXiv:1802.08496: fixed workload,
fixed window, report the best of N trials to reject scheduler noise):

* :func:`kernel_microbench` — events/second through the discrete-event
  kernel alone, under the operation mix a WordCount figure run induces:
  short-delay message deliveries, service completions, periodic timers
  (metrics ticks, cache drains), far-future timeout guards that are
  cancelled almost immediately (the ack-timeout pattern: cancellation
  tombstones whose deadline is ~30 simulated seconds away), kill churn
  (batches of timers stopped together, as container kills do), and a
  periodic ``pending_events`` introspection poll (progress monitoring).
  Handlers are no-ops, so the measured cost is the kernel's own:
  schedule, fire, cancel, re-arm, compact.

* :func:`wordcount_wallclock` — wall-clock seconds to simulate a fixed
  WordCount window end-to-end (the paper's benchmark topology), i.e.
  what regenerating a figure point actually costs.

Both use ``time.process_time`` (CPU seconds) so background load on the
host does not masquerade as a regression.
"""

from __future__ import annotations

# lint: allow-file[D001] — this module is the wall-clock measurement
# harness itself: it times how much real CPU a simulation costs, so
# time.process_time here is the point, not a determinism leak. Nothing
# in this file runs inside the simulated world.

import time
from collections import deque
from typing import Dict

from repro.simulation.events import Simulator

#: Kernel-microbench workload shape (WordCount-run proportions: message
#: deliveries dominate, with ~1/3 as many timeout guards, a few dozen
#: periodic timers, and a coarse monitoring poll).
DELIVERIES_PER_MS = 30
GUARDS_PER_MS = 10
GUARD_HORIZON_S = 30.0    # message_timeout: guards are cancelled ~1ms in
TIMER_COUNT = 64          # drain-like (10ms) and metrics-like (1s) timers
KILL_CHURN_PERIOD_S = 0.25  # stop/recreate a batch of timers (kill churn)
KILL_CHURN_TIMERS = 32
POLL_PERIOD_S = 0.1       # pending_events monitoring poll


def kernel_microbench(sim_seconds: float = 30.0) -> Dict[str, float]:
    """Drive the event kernel with a WordCount-shaped operation mix.

    Returns ``{"events": ..., "cpu_s": ..., "events_per_sec": ...}``.
    The event *count* is deterministic and identical across kernel
    implementations (cancelled events never count), so events/sec
    differences are purely kernel wall-time differences.
    """
    sim = Simulator()

    def noop() -> None:
        pass

    def handler() -> None:
        pass

    for i in range(TIMER_COUNT):
        sim.every(0.01 if i % 2 else 1.0, noop)

    guards: deque = deque()

    def driver() -> None:
        schedule = sim.schedule
        for _ in range(DELIVERIES_PER_MS):
            schedule(0.0005, handler)
        for _ in range(GUARDS_PER_MS):
            guards.append(schedule(GUARD_HORIZON_S, handler))
        # Acks arrive ~1ms later: cancel all but the newest guards.
        while len(guards) > GUARDS_PER_MS:
            guards.popleft().cancel()

    sim.every(0.001, driver)

    churn_timers = [sim.every(0.01, noop) for _ in range(KILL_CHURN_TIMERS)]

    def kill_churn() -> None:
        # A container kill stops a batch of actor timers at once; the
        # replacement's timers start fresh.
        for timer in churn_timers:
            timer.stop()
        churn_timers[:] = [sim.every(0.01, noop)
                           for _ in range(KILL_CHURN_TIMERS)]

    sim.every(KILL_CHURN_PERIOD_S, kill_churn)

    observed = 0

    def poll() -> None:
        nonlocal observed
        observed += sim.pending_events

    sim.every(POLL_PERIOD_S, poll)

    start = time.process_time()
    sim.run_until(sim_seconds)
    cpu = time.process_time() - start
    assert observed > 0
    return {"events": float(sim.events_processed), "cpu_s": cpu,
            "events_per_sec": sim.events_processed / cpu if cpu else 0.0}


def wordcount_wallclock(parallelism: int = 25, warmup: float = 0.2,
                        measure: float = 0.5) -> Dict[str, float]:
    """CPU seconds to simulate a fixed WordCount window end-to-end."""
    from repro.experiments.harness import (heron_perf_config,
                                           run_heron_wordcount)

    config = heron_perf_config(acks=True, max_pending=10_000)
    start = time.process_time()
    point = run_heron_wordcount(parallelism, acks=True, config=config,
                                warmup=warmup, measure=measure)
    cpu = time.process_time() - start
    return {"cpu_s": cpu, "throughput_mtpm": point.throughput_mtpm,
            "parallelism": float(parallelism)}


def best_of(fn, trials: int = 3):
    """Run ``fn`` ``trials`` times; return the result with least CPU."""
    results = [fn() for _ in range(trials)]
    return min(results, key=lambda r: r["cpu_s"])
