"""Chaos figures: reliability under message loss + partition recovery.

Two beyond-paper figures for the ``repro.chaos`` subsystem (the paper's
extensibility argument is exactly what lets a fault-injection layer slot
in under the engine without touching the topology API):

* **chaos_drops** — acked WordCount throughput and p99 latency as the
  network drop rate grows. The reliable SM↔SM channels retransmit what
  the network eats, so the acked stream keeps flowing at a modest
  throughput cost; the retransmit counter shows the link layer earning
  its keep. A companion series with reliability disabled shows the
  tuples that silently vanish without it;
* **chaos_partition** — a machine-silencing network partition mid-run.
  Heartbeat-driven failure detection declares the silent SM dead,
  relaunches its container, and (with checkpointing on) the rollback
  restores effectively-once counts: final deviation 0 vs the clean run.
  With checkpointing off the partitioned container's state is gone;
* **chaos_tmkill** — the Topology Master process is killed mid-run.
  The engine notices the vanished ``tmasterlocation`` ephemeral node,
  relaunches the master in a fresh container under a higher fencing
  epoch, and the replacement rebuilds from durable state: final counts
  deviate by 0 from the clean run and the control-plane outage (kill →
  successor's first plan broadcast) is reported.

Every sweep point builds its own cluster, so points run serially or in
a pool (``REPRO_PARALLEL`` / ``--parallel``) with identical results.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos import FaultPlan, LinkFaults, MasterFault, Partition
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.heron import HeronCluster
from repro.experiments.harness import (DUAL_XEON_MACHINE, machines_for,
                                       measure_sweep)
from repro.experiments.series import Figure, ShapeCheck
from repro.workloads.stateful_wordcount import stateful_wordcount_topology
from repro.workloads.wordcount import wordcount_topology

#: Per-message drop probabilities swept for the drops figure.
FULL_DROP_RATES: List[float] = [0.0, 0.005, 0.01, 0.02, 0.05]
FAST_DROP_RATES: List[float] = [0.0, 0.01, 0.05]

#: Drop-sweep topology size (spouts = bolts = parallelism).
FULL_PARALLELISM = 6
FAST_PARALLELISM = 3

#: One seed for every point: chaos runs replay exactly per seed.
SEED = 11

#: Partition-run stream: bounded so final counts compare exactly.
PARTITION_TUPLES_PER_TASK = 3000
PARTITION_RATE = 10_000.0
PARTITION_PARALLELISM = 2
PARTITION_AT = 0.3
PARTITION_SECS = 1.0
PARTITION_RUN_FOR = 5.0
#: Tight failure detection so the miss window fits inside the run.
PARTITION_HEARTBEAT = 0.1


def _drops_config(reliable: bool) -> Config:
    return (Config()
            .set(Keys.ACKING_ENABLED, True)
            .set(Keys.ACK_TRACKING, "counted")
            .set(Keys.BATCH_SIZE, 1000)
            .set(Keys.SAMPLE_CAP, 24)
            .set(Keys.INSTANCES_PER_CONTAINER, 4)
            .set(Keys.RELIABLE_DELIVERY, reliable)
            .set(Keys.FAILURE_DETECTION_ENABLED, False))


def _partition_config(checkpointing: bool) -> Config:
    cfg = (Config()
           .set(Keys.ACKING_ENABLED, False)
           .set(Keys.BATCH_SIZE, 50)
           .set(Keys.SAMPLE_CAP, 0)
           .set(Keys.INSTANCES_PER_CONTAINER, 2)
           .set(Keys.HEARTBEAT_INTERVAL_SECS, PARTITION_HEARTBEAT))
    if checkpointing:
        cfg.set(Keys.CHECKPOINT_ENABLED, True)
        cfg.set(Keys.CHECKPOINT_INTERVAL_SECS, 0.1)
    return cfg


def measure_point(spec: Tuple) -> Dict:
    """One sweep point (module-level: picklable for the process pool)."""
    kind = spec[0]
    if kind == "drops":
        return _measure_drops(drop_rate=spec[1], reliable=spec[2],
                              fast=spec[3])
    if kind == "tmkill":
        return _measure_tmkill()
    return _measure_partition(mode=spec[1])


def _measure_drops(drop_rate: float, reliable: bool, fast: bool) -> Dict:
    parallelism = FAST_PARALLELISM if fast else FULL_PARALLELISM
    plan = FaultPlan(link=LinkFaults(drop_rate=drop_rate))
    cluster = HeronCluster.on_yarn(
        machines=machines_for(parallelism, 4, DUAL_XEON_MACHINE),
        machine_resource=DUAL_XEON_MACHINE, seed=SEED, fault_plan=plan)
    topology = wordcount_topology(parallelism, corpus_size=45_000,
                                  config=_drops_config(reliable))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    warmup, measure = (0.3, 0.5) if fast else (0.4, 0.8)
    cluster.run_for(warmup)
    start = handle.totals()["acked"]
    start_time = cluster.now
    cluster.run_for(measure)
    window = cluster.now - start_time
    throughput = (handle.totals()["acked"] - start) / window
    sm_totals = handle.sm_totals()
    result = {"throughput_tps": throughput,
              "p99_ms": handle.latency_stats().percentile(0.99) * 1e3,
              "retransmits": sm_totals["retransmits"],
              "dropped_batches": sm_totals["dropped_batches"],
              "network_drops": cluster.chaos_stats()["drops"]}
    handle.kill()
    return result


def _measure_partition(mode: str) -> Dict:
    """One partition run: ``clean`` (no fault), ``ckpt`` (partition,
    checkpointing on) or ``nockpt`` (partition, checkpointing off)."""
    checkpointing = mode != "nockpt"
    plan = FaultPlan()  # partitions are installed once ids are known
    # Small machines: one container per machine, so the partition can
    # isolate exactly one SM and never the TM.
    cluster = HeronCluster.on_yarn(
        machines=6, machine_resource=Resource(cpu=4, ram=8 * GB,
                                              disk=100 * GB),
        seed=SEED, fault_plan=plan)
    topology = stateful_wordcount_topology(
        PARTITION_PARALLELISM, total_tuples=PARTITION_TUPLES_PER_TASK,
        rate=PARTITION_RATE, config=_partition_config(checkpointing))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    fail_time = -1.0
    if mode != "clean":
        runtime = handle._runtime
        tm_machine = runtime.tmaster.location.machine_id
        victim = next(sm.location.machine_id
                      for sm in runtime.sms.values()
                      if sm.location.machine_id != tm_machine)
        fail_time = cluster.now + PARTITION_AT
        assert cluster.chaos is not None
        cluster.chaos.add_partition(Partition(
            start=fail_time, duration=PARTITION_SECS,
            machines=frozenset({victim})))
    cluster.run_for(PARTITION_RUN_FOR)
    counts: Counter = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    stats = handle.checkpoint_stats()
    failure_stats = handle.failure_stats()
    recovery_secs = (stats["last_restore_at"] - fail_time
                     if stats["last_restore_at"] >= 0 and fail_time >= 0
                     else -1.0)
    return {"counts": dict(counts), "recovery_secs": recovery_secs,
            "suspected_failures": failure_stats["suspected_failures"],
            "relaunches": failure_stats["relaunches_requested"],
            "partition_seconds": cluster.chaos_stats()["partition_seconds"]}


def _measure_tmkill() -> Dict:
    """Kill the TM process mid-run on the partition substrate.

    Same cluster/workload/config as the ``clean`` partition mode, so
    the final counts are directly comparable; the fault targets the
    control plane only (a pure master kill never tears down data-plane
    containers, hence no checkpoint rollback — the interesting outputs
    are the failover, the fencing epoch, and the control-plane outage).
    """
    cluster = HeronCluster.on_yarn(
        machines=6, machine_resource=Resource(cpu=4, ram=8 * GB,
                                              disk=100 * GB),
        seed=SEED, fault_plan=FaultPlan())
    topology = stateful_wordcount_topology(
        PARTITION_PARALLELISM, total_tuples=PARTITION_TUPLES_PER_TASK,
        rate=PARTITION_RATE, config=_partition_config(True))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    fail_time = cluster.now + PARTITION_AT
    handle.inject_master_fault(MasterFault(at=fail_time,
                                           kind="kill-process"))
    cluster.run_for(PARTITION_RUN_FOR)
    counts: Counter = Counter()
    for (component, _task), inst in handle._runtime.instances.items():
        if component == "count":
            counts.update(inst.user.counts)
    failure_stats = handle.failure_stats()
    tmaster = handle._runtime.tmaster
    outage = -1.0
    if (tmaster is not None and tmaster.alive
            and tmaster.first_broadcast_at is not None
            and tmaster.first_broadcast_at >= fail_time):
        outage = tmaster.first_broadcast_at - fail_time
    return {"counts": dict(counts),
            "tm_failovers": failure_stats["tm_failovers"],
            "master_epoch": failure_stats["master_epoch"],
            "checkpoints_committed": handle.checkpoint_stats()["committed"],
            "outage_secs": outage}


def _deviation(clean: Dict[str, float], other: Dict[str, float]) -> float:
    """Total absolute per-word count difference between two runs."""
    words = set(clean) | set(other)
    return sum(abs(clean.get(w, 0) - other.get(w, 0)) for w in words)


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    drop_rates = FAST_DROP_RATES if fast else FULL_DROP_RATES
    specs: List[Tuple] = [("drops", rate, True, fast)
                          for rate in drop_rates]
    specs += [("drops", drop_rates[-1], False, fast)]
    specs += [("partition", mode) for mode in ("clean", "ckpt", "nockpt")]
    specs += [("tmkill",)]
    results = measure_sweep(measure_point, specs, parallel=parallel)
    reliable_results = results[:len(drop_rates)]
    unreliable = results[len(drop_rates)]
    clean, ckpt, nockpt = results[len(drop_rates) + 1:len(drop_rates) + 4]
    tmkill = results[len(drop_rates) + 4]

    drops = Figure("chaos_drops",
                   "Reliable delivery under network message loss",
                   "drop rate (%)", "throughput (tuples/s)")
    for rate, result in zip(drop_rates, reliable_results):
        pct = 100.0 * rate
        drops.add_point("acked throughput", pct, result["throughput_tps"])
        drops.add_point("p99 latency (ms)", pct, result["p99_ms"])
        drops.add_point("retransmits", pct, result["retransmits"])
    drops.notes.append(
        f"at {100.0 * drop_rates[-1]:g}% drop rate the network ate "
        f"{reliable_results[-1]['network_drops']:,.0f} messages; "
        f"{reliable_results[-1]['retransmits']:,.0f} retransmits "
        f"repaired the stream")
    drops.notes.append(
        f"reliability disabled at {100.0 * drop_rates[-1]:g}%: "
        f"{unreliable['throughput_tps']:,.0f} tuples/s acked vs "
        f"{reliable_results[-1]['throughput_tps']:,.0f} with the "
        f"reliable channels")

    partition = Figure("chaos_partition",
                       "Partition recovery via failure detection",
                       "checkpointing (0 = off, 1 = on)",
                       "final-count deviation (tuples)")
    partition.add_point("count deviation vs clean run", 0.0,
                        _deviation(clean["counts"], nockpt["counts"]))
    partition.add_point("count deviation vs clean run", 1.0,
                        _deviation(clean["counts"], ckpt["counts"]))
    partition.add_point("recovery time (s)", 0.0,
                        max(0.0, nockpt["recovery_secs"]))
    partition.add_point("recovery time (s)", 1.0,
                        max(0.0, ckpt["recovery_secs"]))
    partition.add_point("suspected failures", 1.0,
                        ckpt["suspected_failures"])
    partition.notes.append(
        f"partition window: {ckpt['partition_seconds']:g}s; TM suspected "
        f"{ckpt['suspected_failures']:.0f} SM(s), requested "
        f"{ckpt['relaunches']:.0f} relaunch(es)")

    tmkill_fig = Figure("chaos_tmkill",
                        "Topology Master failover with epoch fencing",
                        "metric index", "value")
    tmkill_fig.add_point("count deviation vs clean run", 0.0,
                         _deviation(clean["counts"], tmkill["counts"]))
    tmkill_fig.add_point("tm failovers", 0.0, tmkill["tm_failovers"])
    tmkill_fig.add_point("master epoch", 0.0, tmkill["master_epoch"])
    tmkill_fig.add_point("control-plane outage (s)", 0.0,
                         max(0.0, tmkill["outage_secs"]))
    tmkill_fig.notes.append(
        f"TM killed at +{PARTITION_AT:g}s: {tmkill['tm_failovers']:.0f} "
        f"failover(s), successor epoch {tmkill['master_epoch']:.0f}, "
        f"outage {max(0.0, tmkill['outage_secs']):.2f}s, "
        f"{tmkill['checkpoints_committed']:.0f} checkpoints committed "
        f"across the master change")

    return {"chaos_drops": drops, "chaos_partition": partition,
            "chaos_tmkill": tmkill_fig}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the subsystem's qualitative claims on the figures."""
    checks: List[ShapeCheck] = []
    drops = figures["chaos_drops"]
    throughput = sorted(drops.series["acked throughput"].points)
    lossless, lossiest = throughput[0][1], throughput[-1][1]
    checks.append(ShapeCheck(
        "chaos_drops: the acked stream survives the lossiest link "
        "(> 60% of lossless throughput)", lossiest > 0.6 * lossless,
        f"{lossiest:,.0f} vs {lossless:,.0f} tuples/s"))
    retransmits = sorted(drops.series["retransmits"].points)
    checks.append(ShapeCheck(
        "chaos_drops: no retransmits on a clean network",
        retransmits[0][1] == 0.0, f"at 0%: {retransmits[0][1]:g}"))
    checks.append(ShapeCheck(
        "chaos_drops: drops trigger retransmits",
        retransmits[-1][1] > 0.0, f"at max: {retransmits[-1][1]:g}"))

    partition = figures["chaos_partition"]
    deviation = partition.series["count deviation vs clean run"]
    dev_on, dev_off = deviation.y_at(1.0), deviation.y_at(0.0)
    checks.append(ShapeCheck(
        "chaos_partition: checkpointing on ⇒ exactly the failure-free "
        "counts despite the partition", dev_on == 0.0,
        f"deviation: {dev_on:g}"))
    checks.append(ShapeCheck(
        "chaos_partition: checkpointing off ⇒ the partitioned "
        "container's state is lost", dev_off > 0.0,
        f"deviation: {dev_off:g}"))
    checks.append(ShapeCheck(
        "chaos_partition: heartbeat detection suspected the silent SM",
        partition.series["suspected failures"].y_at(1.0) >= 1.0,
        f"suspected: {partition.series['suspected failures'].y_at(1.0):g}"))
    recovery = partition.series["recovery time (s)"]
    checks.append(ShapeCheck(
        "chaos_partition: rollback completes after the relaunch",
        recovery.y_at(1.0) > 0.0, f"recovery: {recovery.y_at(1.0):.2f}s"))

    tmkill = figures["chaos_tmkill"]
    dev = tmkill.series["count deviation vs clean run"].y_at(0.0)
    checks.append(ShapeCheck(
        "chaos_tmkill: killing the master loses no data",
        dev == 0.0, f"deviation: {dev:g}"))
    failovers = tmkill.series["tm failovers"].y_at(0.0)
    checks.append(ShapeCheck(
        "chaos_tmkill: the engine relaunched the master",
        failovers >= 1.0, f"failovers: {failovers:g}"))
    epoch = tmkill.series["master epoch"].y_at(0.0)
    checks.append(ShapeCheck(
        "chaos_tmkill: the successor fenced the old master (epoch 2)",
        epoch == 2.0, f"epoch: {epoch:g}"))
    outage = tmkill.series["control-plane outage (s)"].y_at(0.0)
    checks.append(ShapeCheck(
        "chaos_tmkill: control-plane outage is bounded and non-zero",
        0.0 < outage < PARTITION_RUN_FOR, f"outage: {outage:.2f}s"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
