"""Figures 5-9: impact of the Stream Manager optimizations (Section V-A).

Memory pools + lazy deserialization toggled together, exactly as the
paper evaluates:

* Fig. 5 — throughput without acks: 5-6x improvement,
* Fig. 6 — throughput per provisioned CPU core without acks: 4-5x,
* Fig. 7 — throughput with acks: 3.5-4.5x,
* Fig. 8 — throughput per core with acks: substantial improvement,
* Fig. 9 — end-to-end latency with acks: 2-3x reduction.

Testbed analogue: dual-Xeon 24-core/72GB machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (DUAL_XEON_MACHINE, ExperimentPoint,
                                       heron_perf_config, measure_sweep,
                                       run_heron_wordcount, windows_for)
from repro.experiments.series import Figure, ShapeCheck, check_ratio_band

FULL_PARALLELISMS = [25, 100, 200]
FAST_PARALLELISMS = [25, 50]

WITH = "With optimizations"
WITHOUT = "Without optimizations"

#: Pending cap for the acked runs (unstated in the paper; 12K lands
#: Fig. 9's latency magnitudes close to the paper's 30-40ms / 85-140ms).
MAX_PENDING = 12_000


def measure_point(spec: Tuple[int, bool, float, float]) -> Tuple[
        ExperimentPoint, ExperimentPoint]:
    """One sweep point: (no-ack, acked) runs for one optimization setting.

    Module-level (picklable) so serial and pooled sweeps share this exact
    code path.
    """
    parallelism, optimized, warmup, measure = spec
    noack = run_heron_wordcount(
        parallelism, acks=False,
        config=heron_perf_config(acks=False, optimized=optimized,
                                 max_pending=MAX_PENDING),
        warmup=warmup, measure=measure, machine=DUAL_XEON_MACHINE)
    acked = run_heron_wordcount(
        parallelism, acks=True,
        config=heron_perf_config(acks=True, optimized=optimized,
                                 max_pending=MAX_PENDING),
        warmup=warmup, measure=measure, machine=DUAL_XEON_MACHINE)
    return noack, acked


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    parallelisms = FAST_PARALLELISMS if fast else FULL_PARALLELISMS

    fig5 = Figure("Figure 5", "Throughput without acks (SM optimizations)",
                  "spout/bolt parallelism", "million tuples/min")
    fig6 = Figure("Figure 6", "Throughput per CPU core without acks",
                  "spout/bolt parallelism", "million tuples/min/cpu core")
    fig7 = Figure("Figure 7", "Throughput with acks (SM optimizations)",
                  "spout/bolt parallelism", "million tuples/min")
    fig8 = Figure("Figure 8", "Throughput per CPU core with acks",
                  "spout/bolt parallelism", "million tuples/min/cpu core")
    fig9 = Figure("Figure 9", "End-to-end latency with acks",
                  "spout/bolt parallelism", "latency (ms)")

    specs = []
    for parallelism in parallelisms:
        warmup, measure = windows_for(parallelism, fast)
        for optimized in (True, False):
            specs.append((parallelism, optimized, warmup, measure))

    for (parallelism, optimized, _w, _m), (noack, acked) in zip(
            specs, measure_sweep(measure_point, specs, parallel=parallel)):
        label = WITH if optimized else WITHOUT
        fig5.add_point(label, parallelism, noack.throughput_mtpm)
        fig6.add_point(label, parallelism, noack.throughput_mtpm_per_core)
        fig7.add_point(label, parallelism, acked.throughput_mtpm)
        fig8.add_point(label, parallelism, acked.throughput_mtpm_per_core)
        fig9.add_point(label, parallelism, acked.latency_ms)

    return {"fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8,
            "fig9": fig9}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the paper's qualitative claims on the figures."""
    return [
        check_ratio_band(
            figures["fig5"], WITH, WITHOUT, 5.0, 6.0,
            description="Fig 5: optimizations give 5-6x throughput "
                        "(no acks)"),
        check_ratio_band(
            figures["fig6"], WITH, WITHOUT, 4.0, 5.0, slack=0.5,
            description="Fig 6: 4-5x throughput per core (no acks)"),
        check_ratio_band(
            figures["fig7"], WITH, WITHOUT, 3.5, 4.5,
            description="Fig 7: 3.5-4.5x throughput (with acks)"),
        check_ratio_band(
            figures["fig8"], WITH, WITHOUT, 2.5, 5.0, slack=0.5,
            description="Fig 8: substantial per-core improvement "
                        "(with acks)"),
        # Paper band is 2-3x; in a closed loop the latency ratio tracks
        # the throughput ratio (Little's law with a fixed pending cap),
        # so the simulator lands at ~3.5-4.5x. We check the direction and
        # a widened band; the deviation is recorded in EXPERIMENTS.md.
        check_ratio_band(
            figures["fig9"], WITHOUT, WITH, 2.0, 4.5,
            description="Fig 9: optimizations cut latency substantially "
                        "(paper: 2-3x; simulator: tracks Fig 7's ratio)"),
    ]


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
