"""Placement-policy comparison on a racked cluster (R-Storm vs baselines).

R-Storm (Peng et al., PAPERS.md) reports 30-47% throughput gains from
placing communicating tasks close together. This experiment measures
that effect end to end in the reproduction: a multi-stage topology of
*disjoint sharded pipelines* (each shard is its own
ingest → filter → aggregate → sink chain, in the spirit of the paper's
Fig. 14 production topology and Karimov et al.'s multi-stage
benchmarking methodology) runs on a racked cluster under three packing
policies — Round Robin, FFD bin packing, and
:class:`~repro.packing.rstorm.RStormPacking` — and we report

* end-to-end throughput (acked tuples/sec) and its per-provisioned-core
  ratio,
* mean end-to-end (ack) latency, and
* the cross-rack share of all delivered messages (from the network
  model's per-tier counters).

Why this topology discriminates: shards never talk to each other, so a
placement-aware policy can put each shard's tasks in one container on
one machine, while Round Robin interleaves shards across containers and
FFD (sorting by decreasing RAM) groups containers *stage-pure*, forcing
every pipeline edge across containers. The run is latency-bound by
design — acking with a small ``MAX_SPOUT_PENDING`` window and the SM
tuple cache disabled — so message RTT (and therefore placement) sets
throughput, exactly the regime R-Storm targets.

Everything is deterministic per seed: the same policy measured twice
must produce byte-identical numbers, which the shape checks assert by
replaying one point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.component import Bolt, Collector, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import Topology, TopologyBuilder
from repro.common.config import Config
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.heron import HeronCluster
from repro.experiments.harness import _LatencyWindow, measure_sweep
from repro.experiments.series import Figure, ShapeCheck
from repro.packing.base import PackingConfigKeys
from repro.packing.ffd import FirstFitDecreasingPacking
from repro.packing.round_robin import RoundRobinPacking
from repro.packing.rstorm import RStormPacking
from repro.simulation.cluster import Cluster

#: Policy labels in table order.
ROUND_ROBIN = "Round Robin"
FFD = "FFD Bin Packing"
RSTORM = "R-Storm"
POLICIES = (ROUND_ROBIN, FFD, RSTORM)

#: Racked cluster shape: racks x machines-per-rack.
RACKS = 3
MACHINE = Resource(cpu=8, ram=32 * GB, disk=500 * GB)

#: Per-shard stage parallelism and resources. Distinct RAM per stage
#: makes FFD's decreasing sort stage-pure (the interesting adversary).
STAGES = (
    ("ingest", 2, Resource(cpu=1.0, ram=int(1.00 * GB))),
    ("filter", 2, Resource(cpu=1.0, ram=int(0.75 * GB))),
    ("agg", 1, Resource(cpu=1.0, ram=int(0.50 * GB))),
    ("sink", 1, Resource(cpu=1.0, ram=int(0.25 * GB))),
)


class _ShardSpout(Spout):
    """Emits sequentially-keyed tuples as fast as acking allows."""

    outputs = {"default": ["key"]}

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def next_batch(self, collector: Collector, max_tuples: int) -> int:
        for _ in range(max_tuples):
            collector.emit([self._counter & 63])
            self._counter += 1
        return max_tuples


class _ForwardBolt(Bolt):
    """Pass-through stage: re-emits every input (anchored by the engine)."""

    outputs = {"default": ["key"]}

    def execute(self, tup, collector: Collector) -> None:
        collector.emit([tup[0]])

    def execute_batch(self, batch, collector: Collector) -> None:
        if batch.values:
            collector.emit_batch(list(batch.values), count=batch.count)


class _SinkBolt(Bolt):
    """Terminal stage: consumes tuples (completing their ack trees)."""

    def __init__(self) -> None:
        super().__init__()
        self.seen = 0

    def execute(self, tup, collector: Collector) -> None:
        self.seen += 1

    def execute_batch(self, batch, collector: Collector) -> None:
        self.seen += batch.count


def sharded_pipeline_topology(shards: int,
                              config: Optional[Config] = None) -> Topology:
    """``shards`` disjoint ingest→filter→aggregate→sink pipelines."""
    builder = TopologyBuilder("placement")
    for shard in range(shards):
        ingest, filt, agg, sink = (f"{stage}{shard}"
                                   for stage, _p, _r in STAGES)
        builder.set_spout(ingest, _ShardSpout(), parallelism=STAGES[0][1],
                          resource=STAGES[0][2])
        builder.set_bolt(filt, _ForwardBolt(), parallelism=STAGES[1][1],
                         resource=STAGES[1][2]) \
            .shuffle_grouping(ingest)
        builder.set_bolt(agg, _ForwardBolt(), parallelism=STAGES[2][1],
                         resource=STAGES[2][2]) \
            .fields_grouping(filt, ["key"])
        builder.set_bolt(sink, _SinkBolt(), parallelism=STAGES[3][1],
                         resource=STAGES[3][2]) \
            .shuffle_grouping(agg)
    return builder.build(config)


def placement_config() -> Config:
    """The latency-bound measurement configuration (see module docs)."""
    config = Config()
    config.set(Keys.ACKING_ENABLED, True)
    config.set(Keys.ACK_TRACKING, "counted")
    config.set(Keys.MAX_SPOUT_PENDING, 50)
    # No SM tuple cache: per-hop latency is the network tier, not the
    # drain interval, so placement is what moves the numbers.
    config.set(Keys.CACHE_ENABLED, False)
    config.set(Keys.BATCH_SIZE, 100)
    config.set(Keys.SAMPLE_CAP, 8)
    config.set(Keys.INSTANCES_PER_CONTAINER, 4)
    # One shard (6 cpu) per bin for the heterogeneous bin packers; with
    # 1.0 cpu padding a container then exactly fits an 8-core machine.
    config.set(PackingConfigKeys.FFD_MAX_CONTAINER_CPU, 6.0)
    config.set(PackingConfigKeys.RSTORM_MAX_CONTAINER_CPU, 6.0)
    return config


def _policy(name: str):
    """Fresh ResourceManager for a policy label."""
    return {ROUND_ROBIN: RoundRobinPacking,
            FFD: FirstFitDecreasingPacking,
            RSTORM: RStormPacking}[name]()


def measure_policy(spec: Tuple[str, bool, int]) -> Dict[str, float]:
    """One (policy, profile, replica) measurement — picklable for the
    process pool; the replica index only labels determinism replays."""
    policy_name, fast, _replica = spec
    shards = 3 if fast else 6
    machines_per_rack = 2 if fast else 4
    warmup, measure = (0.3, 0.5) if fast else (0.5, 1.0)

    topology = sharded_pipeline_topology(shards, placement_config())
    racked = Cluster.racked(RACKS, machines_per_rack, MACHINE)
    cluster = HeronCluster.on_yarn(cluster=racked, seed=0)
    handle = cluster.submit_topology(topology,
                                     resource_manager=_policy(policy_name))
    handle.wait_until_running()
    cluster.run_for(warmup)

    start_totals = handle.totals()
    start_tiers = dict(cluster.base_network.tier_counts())
    latency_window = _LatencyWindow(handle.latency_stats())
    start_time = cluster.now
    cluster.run_for(measure)

    window = cluster.now - start_time
    end_totals = handle.totals()
    tiers = {tier: count - start_tiers[tier] for tier, count in
             cluster.base_network.tier_counts().items()}
    total_messages = sum(tiers.values())
    throughput = (end_totals["acked"] - start_totals["acked"]) / window
    latency = latency_window.mean_since(handle.latency_stats())
    cores = handle.provisioned_cores()
    handle.kill()
    return {
        "throughput_tps": throughput,
        "latency_ms": latency * 1e3,
        "cross_rack_share":
            tiers["cross_rack"] / total_messages if total_messages else 0.0,
        "cross_rack_messages": float(tiers["cross_rack"]),
        "total_messages": float(total_messages),
        "cores": cores,
        "tput_per_core": throughput / cores if cores else 0.0,
    }


#: The replayed policy for the byte-identical determinism check.
REPLAYED = RSTORM


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Run the experiment; returns {figure_key: Figure}."""
    specs = [(policy, fast, 0) for policy in POLICIES]
    specs.append((REPLAYED, fast, 1))  # same seed: must replay identically
    results = measure_sweep(measure_policy, specs, parallel=parallel)
    by_policy = dict(zip(POLICIES, results[:len(POLICIES)]))
    replay = results[-1]

    shards = 3 if fast else 6
    tput = Figure("placement (throughput)",
                  "End-to-end throughput by placement policy",
                  "pipeline shards", "acked tuples/sec")
    latency = Figure("placement (latency)",
                     "Mean end-to-end latency by placement policy",
                     "pipeline shards", "latency (ms)")
    crossrack = Figure("placement (cross-rack)",
                       "Cross-rack share of delivered messages",
                       "pipeline shards", "cross-rack message share")
    per_core = Figure("placement (per-core)",
                      "Throughput per provisioned core",
                      "pipeline shards", "acked tuples/sec/core")
    for policy in POLICIES:
        row = by_policy[policy]
        tput.add_point(policy, shards, row["throughput_tps"])
        latency.add_point(policy, shards, row["latency_ms"])
        crossrack.add_point(policy, shards, row["cross_rack_share"])
        per_core.add_point(policy, shards, row["tput_per_core"])
    for figure in (tput, latency, crossrack, per_core):
        figure.notes.append(
            f"{RACKS} racks x {(2 if fast else 4)} machines "
            f"({MACHINE.cpu:g} cores each), {shards} disjoint pipelines, "
            f"acking on, max-spout-pending 50, SM cache off")
    replay_matches = replay == by_policy[REPLAYED]
    crossrack.notes.append(
        f"determinism replay ({REPLAYED}): "
        f"{'byte-identical' if replay_matches else 'MISMATCH'}")
    crossrack.notes.append(
        "replay_match=1.0" if replay_matches else "replay_match=0.0")
    return {"throughput": tput, "latency": latency,
            "crossrack": crossrack, "per_core": per_core}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """Verify the R-Storm placement claims on the measured figures."""
    checks: List[ShapeCheck] = []
    shards = figures["crossrack"].series[RSTORM].xs[0]

    def value(figure_key: str, policy: str) -> float:
        return figures[figure_key].series[policy].y_at(shards)

    for baseline in (ROUND_ROBIN, FFD):
        rstorm_share = value("crossrack", RSTORM)
        base_share = value("crossrack", baseline)
        checks.append(ShapeCheck(
            f"R-Storm cuts cross-rack message share vs {baseline}",
            rstorm_share < base_share,
            f"R-Storm {rstorm_share:.1%} vs {baseline} {base_share:.1%}"))
        rstorm_pc = value("per_core", RSTORM)
        base_pc = value("per_core", baseline)
        checks.append(ShapeCheck(
            f"R-Storm throughput/core no worse than {baseline}",
            rstorm_pc >= base_pc * (1.0 - 1e-9),
            f"R-Storm {rstorm_pc:,.0f} vs {baseline} {base_pc:,.0f} "
            f"tuples/sec/core"))
        rstorm_lat = value("latency", RSTORM)
        base_lat = value("latency", baseline)
        checks.append(ShapeCheck(
            f"R-Storm end-to-end latency no worse than {baseline}",
            rstorm_lat <= base_lat * (1.0 + 1e-9),
            f"R-Storm {rstorm_lat:.2f}ms vs {baseline} {base_lat:.2f}ms"))
    replay_ok = any("replay_match=1.0" in note
                    for note in figures["crossrack"].notes)
    checks.append(ShapeCheck(
        "same-seed replay is byte-identical", replay_ok,
        "replayed point equals original exactly"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
