"""Figures 2-4: Heron vs Storm WordCount on identical machine budgets.

* Fig. 2 — throughput with acks: Heron ≈ 3-5x Storm,
* Fig. 3 — end-to-end latency with acks: Heron ≈ 2-4x lower,
* Fig. 4 — throughput without acks: Heron ≈ 2-3x Storm.

Testbed analogue: HDInsight-like 8-core/28GB machines, one Heron
container (4 instances) or one Storm worker per machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (ExperimentPoint, heron_perf_config,
                                       measure_sweep, run_heron_wordcount,
                                       run_storm_wordcount)
from repro.experiments.series import (Figure, ShapeCheck, check_monotonic,
                                      check_ratio_band)

FULL_PARALLELISMS = [10, 25, 50, 75]
FAST_PARALLELISMS = [10, 25]

#: Submission-time pending cap for these runs (the paper does not state
#: its value; 10K lands the latency magnitudes in Fig. 3's range).
MAX_PENDING = 10_000


def measure_point(spec: Tuple[int, float, float]) -> Tuple[
        ExperimentPoint, ExperimentPoint, ExperimentPoint, ExperimentPoint]:
    """One sweep point: both engines, with and without acks.

    Module-level (picklable) so serial and pooled sweeps share this exact
    code path; each call builds fresh clusters/simulators, so results are
    independent of execution order.
    """
    parallelism, warmup, measure = spec
    ack_cfg = heron_perf_config(acks=True, max_pending=MAX_PENDING)
    noack_cfg = heron_perf_config(acks=False, max_pending=MAX_PENDING)
    heron_ack = run_heron_wordcount(parallelism, acks=True, config=ack_cfg,
                                    warmup=warmup, measure=measure)
    storm_ack = run_storm_wordcount(parallelism, acks=True, config=ack_cfg,
                                    warmup=warmup, measure=measure)
    heron_noack = run_heron_wordcount(parallelism, acks=False,
                                      config=noack_cfg, warmup=warmup,
                                      measure=measure)
    storm_noack = run_storm_wordcount(parallelism, acks=False,
                                      config=noack_cfg, warmup=warmup,
                                      measure=measure)
    return heron_ack, storm_ack, heron_noack, storm_noack


def run(fast: bool = False,
        parallel: Optional[bool] = None) -> Dict[str, Figure]:
    """Returns {"fig2": ..., "fig3": ..., "fig4": ...}."""
    parallelisms = FAST_PARALLELISMS if fast else FULL_PARALLELISMS
    warmup, measure = (0.3, 0.6) if fast else (0.5, 1.0)

    fig2 = Figure("Figure 2", "Throughput with acks (Heron vs Storm)",
                  "spout/bolt parallelism", "million tuples/min")
    fig3 = Figure("Figure 3", "End-to-end latency with acks",
                  "spout/bolt parallelism", "latency (ms)")
    fig4 = Figure("Figure 4", "Throughput without acks (Heron vs Storm)",
                  "spout/bolt parallelism", "million tuples/min")

    specs = [(p, warmup, measure) for p in parallelisms]
    for (parallelism, _w, _m), points in zip(
            specs, measure_sweep(measure_point, specs, parallel=parallel)):
        heron_ack, storm_ack, heron_noack, storm_noack = points
        fig2.add_point("Heron", parallelism, heron_ack.throughput_mtpm)
        fig2.add_point("Storm", parallelism, storm_ack.throughput_mtpm)
        fig3.add_point("Heron", parallelism, heron_ack.latency_ms)
        fig3.add_point("Storm", parallelism, storm_ack.latency_ms)
        fig4.add_point("Heron", parallelism, heron_noack.throughput_mtpm)
        fig4.add_point("Storm", parallelism, storm_noack.throughput_mtpm)

    return {"fig2": fig2, "fig3": fig3, "fig4": fig4}


def check_shapes(figures: Dict[str, Figure]) -> List[ShapeCheck]:
    """The paper's qualitative claims for Figs. 2-4."""
    checks = [
        check_ratio_band(
            figures["fig2"], "Heron", "Storm", 3.0, 5.0,
            description="Fig 2: Heron throughput 3-5x Storm (with acks)"),
        check_ratio_band(
            figures["fig3"], "Storm", "Heron", 2.0, 4.0,
            description="Fig 3: Heron latency 2-4x lower than Storm"),
        check_ratio_band(
            figures["fig4"], "Heron", "Storm", 2.0, 3.0,
            description="Fig 4: Heron throughput 2-3x Storm (no acks)"),
    ]
    for fig_key, label in (("fig2", "Heron"), ("fig2", "Storm"),
                           ("fig4", "Heron"), ("fig4", "Storm")):
        checks.append(check_monotonic(
            figures[fig_key].series[label], increasing=True,
            description=f"{figures[fig_key].figure_id}: {label} "
                        f"throughput grows with parallelism"))
    return checks


def main(fast: bool = False) -> None:
    """Run, print tables, and print shape-check results."""
    figures = run(fast=fast)
    for figure in figures.values():
        figure.print()
    for check in check_shapes(figures):
        print(check)


if __name__ == "__main__":
    import sys
    main(fast="--fast" in sys.argv)
