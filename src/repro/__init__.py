"""repro — a reproduction of *Twitter Heron: Towards Extensible Streaming
Engines* (ICDE 2017).

The package implements Heron's modular streaming-engine architecture in
Python — topology API, Resource Manager (pluggable packing policies),
Scheduler (pluggable scheduling frameworks), State Manager, Topology
Master, Stream Manager (with the paper's communication-layer
optimizations), Metrics Manager, and Heron Instances — together with a
Storm-architecture baseline and a micro-batch baseline, all running on a
deterministic discrete-event cluster simulator.

See ``examples/quickstart.py`` for a complete runnable example, DESIGN.md
for the architecture, and EXPERIMENTS.md for the paper-figure
reproductions.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
