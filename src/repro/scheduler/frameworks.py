"""Simulated scheduling frameworks: Aurora-like, YARN-like, local mode.

These stand in for the production frameworks Heron runs on. They share a
small contract — allocate/release containers for a named job — and differ
exactly along the two axes Section IV-B describes:

* :class:`AuroraFramework` — only **homogeneous** containers per job, and
  **framework-side recovery**: when a container fails, Aurora itself
  allocates a replacement and re-invokes the client's relaunch hook
  ("Aurora invokes the appropriate command to restart the container and
  its corresponding tasks"). The Heron scheduler on top can be stateless.
* :class:`YarnFramework` — **heterogeneous** containers allowed, but the
  framework only *notifies* its client of failures; the client (a
  stateful Heron scheduler) must request replacements itself.
* :class:`LocalFramework` — single-machine, heterogeneous, no recovery
  and no notifications (local development mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.common.errors import SchedulerError
from repro.common.resources import Resource
from repro.simulation.cluster import Cluster, Container
from repro.simulation.events import Simulator


class FrameworkClient(Protocol):
    """What a scheduling framework needs from its client (the Heron
    Scheduler) to restore processes after container churn."""

    def relaunch_container(self, role: str, container: Container) -> None:
        """(Re)start the job's processes inside a fresh container."""
        ...

    def container_lost(self, role: str, spec: Resource) -> None:
        """Notification-only frameworks (YARN) report failures here."""
        ...


@dataclass
class JobContainer:
    """One allocated container of a job, identified by its role string.

    Placement preferences are remembered so framework-side restarts
    (Aurora) re-request the same spot after a failure.
    """

    role: str
    spec: Resource
    container: Container
    preferred_machine: Optional[int] = None
    preferred_rack: Optional[int] = None


@dataclass
class FrameworkJob:
    """A framework-side job: named container set plus the client hook."""

    name: str
    client: Optional[FrameworkClient] = None
    containers: Dict[str, JobContainer] = field(default_factory=dict)


class SchedulingFramework:
    """Common allocation bookkeeping; subclasses set policy knobs."""

    #: Can one job's containers have different sizes?
    heterogeneous = True
    #: Does the framework itself restart failed containers?
    restarts_failed_containers = False
    #: Does the framework notify the client about failures?
    notifies_client_on_failure = False

    name = "framework"

    def __init__(self, sim: Simulator, cluster: Cluster, *,
                 container_startup_delay: float = 0.0,
                 failure_recovery_delay: float = 1.0) -> None:
        self.sim = sim
        self.cluster = cluster
        self.container_startup_delay = container_startup_delay
        self.failure_recovery_delay = failure_recovery_delay
        self.jobs: Dict[str, FrameworkJob] = {}
        cluster.on_container_failed(self._handle_cluster_failure)

    # -- job lifecycle ------------------------------------------------------
    def register_job(self, job_name: str,
                     client: Optional[FrameworkClient] = None) -> FrameworkJob:
        """Register a job before allocating containers for it."""
        if job_name in self.jobs:
            raise SchedulerError(f"job {job_name!r} already registered "
                                 f"with {self.name}")
        job = FrameworkJob(job_name, client)
        self.jobs[job_name] = job
        return job

    def allocate(self, job_name: str, role: str, spec: Resource, *,
                 preferred_machine: Optional[int] = None,
                 preferred_rack: Optional[int] = None) -> Container:
        """Allocate one container for ``role`` within a job.

        Placement preferences (from placement-aware packing policies)
        are forwarded to the cluster rather than discarded; the cluster
        treats them as soft hints with a first-fit fallback.
        """
        job = self._job(job_name)
        if role in job.containers:
            raise SchedulerError(
                f"job {job_name!r} already has a container for {role!r}")
        if not self.heterogeneous:
            self._check_homogeneous(job, spec)
        container = self.cluster.allocate_container(
            spec, tag=job_name, preferred_machine=preferred_machine,
            preferred_rack=preferred_rack)
        job.containers[role] = JobContainer(
            role, spec, container, preferred_machine=preferred_machine,
            preferred_rack=preferred_rack)
        return container

    def release(self, job_name: str, role: str) -> None:
        """Release one container back to the cluster."""
        job = self._job(job_name)
        jc = job.containers.pop(role, None)
        if jc is None:
            raise SchedulerError(
                f"job {job_name!r} has no container for role {role!r}")
        if jc.container.running:
            self.cluster.release_container(jc.container)

    def kill_job(self, job_name: str) -> None:
        """Release every container of a job and forget it."""
        job = self._job(job_name)
        for jc in list(job.containers.values()):
            if jc.container.running:
                self.cluster.release_container(jc.container)
        job.containers.clear()
        del self.jobs[job_name]

    def job_containers(self, job_name: str) -> List[JobContainer]:
        """The job's currently allocated containers."""
        return list(self._job(job_name).containers.values())

    def has_container(self, job_name: str, role: str) -> bool:
        """Whether ``role`` currently holds an allocated container.

        Recovery paths race (framework restart vs engine-side TM
        failover); callers use this to stand down when another path
        already re-filled the role.
        """
        job = self.jobs.get(job_name)
        return job is not None and role in job.containers

    # -- failure handling ---------------------------------------------------
    def _handle_cluster_failure(self, container: Container) -> None:
        located = self._locate(container)
        if located is None:
            return  # not one of ours
        job, jc = located
        del job.containers[jc.role]
        if self.restarts_failed_containers:
            self.sim.schedule(self.failure_recovery_delay,
                              self._framework_restart, job, jc)
        elif self.notifies_client_on_failure and job.client is not None:
            self.sim.schedule(self.failure_recovery_delay,
                              job.client.container_lost, jc.role, jc.spec)

    def _framework_restart(self, job: FrameworkJob, jc: JobContainer) -> None:
        if job.name not in self.jobs or jc.role in job.containers:
            return  # job killed, or role re-filled, while we waited
        container = self.cluster.allocate_container(
            jc.spec, tag=job.name, preferred_machine=jc.preferred_machine,
            preferred_rack=jc.preferred_rack)
        job.containers[jc.role] = JobContainer(
            jc.role, jc.spec, container,
            preferred_machine=jc.preferred_machine,
            preferred_rack=jc.preferred_rack)
        if job.client is not None:
            job.client.relaunch_container(jc.role, container)

    # -- helpers ------------------------------------------------------------
    def _job(self, job_name: str) -> FrameworkJob:
        job = self.jobs.get(job_name)
        if job is None:
            raise SchedulerError(
                f"job {job_name!r} is not registered with {self.name}")
        return job

    def _check_homogeneous(self, job: FrameworkJob, spec: Resource) -> None:
        for jc in job.containers.values():
            if jc.spec != spec:
                raise SchedulerError(
                    f"{self.name} only allocates homogeneous containers: "
                    f"job {job.name!r} has {jc.spec} but {spec} was "
                    f"requested")

    def _locate(self, container: Container):
        for job in self.jobs.values():
            for jc in job.containers.values():
                if jc.container is container:
                    return job, jc
        return None


class AuroraFramework(SchedulingFramework):
    """Homogeneous containers; the framework restarts failed ones."""

    name = "aurora"
    heterogeneous = False
    restarts_failed_containers = True
    notifies_client_on_failure = False


class YarnFramework(SchedulingFramework):
    """Heterogeneous containers; failures are reported, not repaired."""

    name = "yarn"
    heterogeneous = True
    restarts_failed_containers = False
    notifies_client_on_failure = True


class LocalFramework(SchedulingFramework):
    """Single-server development mode: no recovery, no notifications."""

    name = "local"
    heterogeneous = True
    restarts_failed_containers = False
    notifies_client_on_failure = False

    def __init__(self, sim: Simulator, cluster: Optional[Cluster] = None,
                 **kwargs) -> None:
        if cluster is None:
            cluster = Cluster.homogeneous(
                1, Resource(cpu=1024, ram=1 << 46, disk=1 << 50))
        if len(cluster.machines) != 1:
            raise SchedulerError("local mode runs on exactly one machine")
        super().__init__(sim, cluster, **kwargs)
