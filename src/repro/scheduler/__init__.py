"""The Scheduler module and the simulated scheduling frameworks.

Per Section IV-B, the Scheduler "is the module responsible for interacting
with the underlying scheduling framework such as YARN or Aurora and
allocate the necessary resources based on the packing plan produced by
the Resource Manager". Its API::

    public interface Scheduler {
        void initialize(Configuration conf)
        void onSchedule(PackingPlan initialPlan);
        void onKill(KillTopologyRequest request);
        void onRestart(RestartTopologyRequest request);
        void onUpdate(UpdateTopologyRequest request);
        void close()
    }

Two behavioural axes from the paper are modeled faithfully:

* **stateful vs stateless** — a stateful Scheduler (YARN) monitors its
  containers and reacts to failures itself; a stateless Scheduler
  (Aurora) relies on the framework to restart failed containers;
* **heterogeneous vs homogeneous containers** — "YARN can allocate
  heterogeneous containers whereas Aurora can only allocate homogeneous
  containers for a given packing plan". The Scheduler adapts the packing
  plan to what the framework supports, abstracting this from the
  Resource Manager.

The frameworks themselves (:mod:`repro.scheduler.frameworks`) are
simulations of Aurora/YARN/local-mode built on the cluster substrate.
"""

from repro.scheduler.base import (KillTopologyRequest, RestartTopologyRequest,
                                  Scheduler, TopologyLauncher,
                                  UpdateTopologyRequest)
from repro.scheduler.frameworks import (AuroraFramework, LocalFramework,
                                        SchedulingFramework, YarnFramework)
from repro.scheduler.impls import (AuroraScheduler, LocalScheduler,
                                   YarnScheduler)

__all__ = [
    "AuroraFramework",
    "AuroraScheduler",
    "KillTopologyRequest",
    "LocalFramework",
    "LocalScheduler",
    "RestartTopologyRequest",
    "Scheduler",
    "SchedulingFramework",
    "TopologyLauncher",
    "UpdateTopologyRequest",
    "YarnFramework",
    "YarnScheduler",
]
