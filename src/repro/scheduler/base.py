"""The Scheduler interface and its request types.

The Scheduler turns packing plans into framework container allocations
and starts the Heron processes in them ("The Scheduler is also
responsible for starting all the Heron processes assigned to the
container"). Process start/stop itself is delegated to a
:class:`TopologyLauncher` provided by the runtime, keeping the Scheduler
module independent of the engine internals — the modularity boundary the
paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.common.config import Config
from repro.common.errors import PackingError, SchedulerError
from repro.common.resources import Resource
from repro.packing.plan import ContainerPlan, PackingPlan
from repro.scheduler.frameworks import SchedulingFramework
from repro.simulation.cluster import Container

TMASTER_ROLE = "tmaster"

#: Resources reserved for the Topology Master's own container.
TMASTER_RESOURCE = Resource(cpu=1.0, ram=1 << 30)


def container_role(container_id: int) -> str:
    """Framework role string for a plan container."""
    return f"container-{container_id}"


def role_container_id(role: str) -> Optional[int]:
    """Inverse of :func:`container_role` (None for the TM role)."""
    if role.startswith("container-"):
        return int(role.split("-", 1)[1])
    return None


@dataclass(frozen=True)
class KillTopologyRequest:
    topology_name: str


@dataclass(frozen=True)
class RestartTopologyRequest:
    topology_name: str
    container_id: Optional[int] = None  # None = every container


@dataclass(frozen=True)
class UpdateTopologyRequest:
    topology_name: str
    new_packing_plan: PackingPlan


class TopologyLauncher(Protocol):
    """Runtime hooks the Scheduler uses to start/stop Heron processes."""

    def launch_tmaster(self, container: Container) -> None:
        """Start the Topology Master process in its container."""
        ...

    def launch_container(self, container: Container,
                         plan: ContainerPlan) -> None:
        """Start SM + Metrics Manager + instances for one plan container."""
        ...

    def stop_container(self, container_id: int) -> None:
        """Tear down engine bookkeeping for a plan container going away."""
        ...


class Scheduler:
    """Base Scheduler: plan → containers bookkeeping + the paper's API.

    Subclasses define :attr:`is_stateful` and how container sizes map to
    the framework's capabilities via :meth:`container_spec`.
    """

    #: Stateful schedulers monitor containers and repair failures
    #: themselves; stateless ones rely on the framework.
    is_stateful = False

    def __init__(self) -> None:
        self.config: Config = Config()
        self.framework: Optional[SchedulingFramework] = None
        self.launcher: Optional[TopologyLauncher] = None
        self.topology_name: Optional[str] = None
        self.current_plan: Optional[PackingPlan] = None

    # -- wiring ---------------------------------------------------------------
    def initialize(self, config: Config, framework: SchedulingFramework,
                   launcher: TopologyLauncher, topology_name: str) -> None:
        """Bind the scheduler to a framework, launcher and topology."""
        self.config = config
        self.framework = framework
        self.launcher = launcher
        self.topology_name = topology_name
        framework.register_job(topology_name,
                               client=self if self._is_client() else
                               _StatelessClient(self))

    def _is_client(self) -> bool:
        return self.is_stateful

    # -- the paper's five methods ---------------------------------------------
    def on_schedule(self, initial_plan: PackingPlan) -> None:
        """Allocate all resources for the initial packing plan."""
        framework, launcher = self._require_wiring()
        if self.current_plan is not None:
            raise SchedulerError(
                f"topology {self.topology_name!r} is already scheduled")
        tmaster = framework.allocate(self._job, TMASTER_ROLE,
                                     self.tmaster_spec(initial_plan))
        launcher.launch_tmaster(tmaster)
        for container_plan in initial_plan.containers:
            self._allocate_and_launch(container_plan, initial_plan)
        self.current_plan = initial_plan

    def on_kill(self, request: KillTopologyRequest) -> None:
        """Release every container of the topology."""
        framework, launcher = self._require_wiring()
        self._check_request(request.topology_name)
        if self.current_plan is not None:
            for container_plan in self.current_plan.containers:
                launcher.stop_container(container_plan.id)
        framework.kill_job(self._job)
        self.current_plan = None

    def on_restart(self, request: RestartTopologyRequest) -> None:
        """Restart one container (or all): release + reallocate + relaunch."""
        framework, launcher = self._require_wiring()
        self._check_request(request.topology_name)
        plan = self._require_plan()
        targets = [plan.container(request.container_id)] \
            if request.container_id is not None else list(plan.containers)
        for container_plan in targets:
            role = container_role(container_plan.id)
            launcher.stop_container(container_plan.id)
            framework.release(self._job, role)
            self._allocate_and_launch(container_plan, plan)

    def on_update(self, request: UpdateTopologyRequest) -> None:
        """Apply a new packing plan (topology scaling)."""
        framework, launcher = self._require_wiring()
        self._check_request(request.topology_name)
        old_plan = self._require_plan()
        new_plan = request.new_packing_plan
        delta = old_plan.diff(new_plan)
        for removed in delta.removed:
            launcher.stop_container(removed.id)
            framework.release(self._job, container_role(removed.id))
        for old_container, new_container in delta.changed:
            # Simplest faithful behaviour: bounce the container with its
            # new instance set (Heron restarts affected containers too).
            launcher.stop_container(old_container.id)
            framework.release(self._job, container_role(old_container.id))
            self._allocate_and_launch(new_container, new_plan)
        for added in delta.added:
            self._allocate_and_launch(added, new_plan)
        self.current_plan = new_plan

    def on_restart_tmaster(self) -> None:
        """Relaunch the Topology Master in a fresh container (failover).

        Driven by the runtime's ``tmasterlocation`` watch when the TM's
        ephemeral node vanishes (DESIGN.md §14). The old container — it
        may still be running with a fenced master, e.g. after a State
        Manager session expiry — is released first, which kills any
        leftover control-plane processes; after a hard machine failure
        the role is already gone and there is nothing to release.
        """
        framework, launcher = self._require_wiring()
        plan = self._require_plan()
        if framework.has_container(self._job, TMASTER_ROLE):
            framework.release(self._job, TMASTER_ROLE)
        container = framework.allocate(self._job, TMASTER_ROLE,
                                       self.tmaster_spec(plan))
        launcher.launch_tmaster(container)

    def close(self) -> None:
        """Release framework/launcher references."""
        self.framework = None
        self.launcher = None

    # -- framework-shape adaptation ----------------------------------------------
    def container_spec(self, container_plan: ContainerPlan,
                       plan: PackingPlan) -> Resource:
        """The size actually requested from the framework for a container.

        "Depending on the framework used, the Heron Scheduler determines
        whether homogeneous or heterogeneous containers should be
        allocated" — overridden per scheduler.
        """
        raise NotImplementedError

    def tmaster_spec(self, plan: PackingPlan) -> Resource:
        """Size of the Topology Master's container (container 0).

        Homogeneous frameworks must size it like every other container;
        heterogeneous ones can keep it small.
        """
        return TMASTER_RESOURCE

    # -- FrameworkClient (stateful schedulers) -------------------------------------
    def relaunch_container(self, role: str, container: Container) -> None:
        """FrameworkClient hook: restart processes in a fresh container."""
        launcher = self._require_wiring()[1]
        if role == TMASTER_ROLE:
            launcher.launch_tmaster(container)
            return
        plan = self._require_plan()
        cid = role_container_id(role)
        if cid is None:
            raise SchedulerError(f"unknown role {role!r}")
        launcher.launch_container(container, plan.container(cid))

    def container_lost(self, role: str, spec: Resource) -> None:
        """Stateful recovery: request a replacement and relaunch.

        The replacement re-requests the plan's placement preference for
        that role, so a recovered container lands near its traffic
        partners again whenever there is room.
        """
        if not self.is_stateful:
            return
        framework = self._require_wiring()[0]
        if framework.has_container(self._job, role):
            # Another recovery path (the engine's TM-failover watch, or
            # an explicit restart) re-filled the role while this
            # notification was in flight; allocating again would raise.
            return
        preferred_machine = preferred_rack = None
        cid = role_container_id(role)
        if cid is not None and self.current_plan is not None:
            try:
                container_plan = self.current_plan.container(cid)
            except PackingError:
                container_plan = None
            if container_plan is not None:
                preferred_machine = container_plan.preferred_machine
                preferred_rack = container_plan.preferred_rack
        replacement = framework.allocate(
            self._job, role, spec, preferred_machine=preferred_machine,
            preferred_rack=preferred_rack)
        self.relaunch_container(role, replacement)

    # -- internals ------------------------------------------------------------
    @property
    def _job(self) -> str:
        assert self.topology_name is not None
        return self.topology_name

    def _allocate_and_launch(self, container_plan: ContainerPlan,
                             plan: PackingPlan) -> None:
        framework, launcher = self._require_wiring()
        spec = self.container_spec(container_plan, plan)
        container = framework.allocate(
            self._job, container_role(container_plan.id), spec,
            preferred_machine=container_plan.preferred_machine,
            preferred_rack=container_plan.preferred_rack)
        launcher.launch_container(container, container_plan)

    def _require_wiring(self):
        if self.framework is None or self.launcher is None:
            raise SchedulerError(
                f"{type(self).__name__} used before initialize()")
        return self.framework, self.launcher

    def _require_plan(self) -> PackingPlan:
        if self.current_plan is None:
            raise SchedulerError(
                f"topology {self.topology_name!r} is not scheduled")
        return self.current_plan

    def _check_request(self, topology_name: str) -> None:
        if topology_name != self.topology_name:
            raise SchedulerError(
                f"request for {topology_name!r} sent to the scheduler of "
                f"{self.topology_name!r}")


class _StatelessClient:
    """Framework client for stateless schedulers: relaunches on demand
    (the framework drives recovery) but ignores failure notifications."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler

    def relaunch_container(self, role: str, container: Container) -> None:
        self._scheduler.relaunch_container(role, container)

    def container_lost(self, role: str, spec: Resource) -> None:
        pass  # stateless: the framework owns recovery
