"""Concrete Scheduler implementations: Aurora, YARN, local.

Each one pairs a statefulness policy with a container-shape policy,
mirroring Section IV-B:

* :class:`AuroraScheduler` — **stateless** ("the Heron Scheduler is
  stateless when Aurora is the underlying scheduling framework"), and
  requests **homogeneous** containers sized to the largest container of
  the packing plan;
* :class:`YarnScheduler` — **stateful** ("the Heron Scheduler monitors
  the state of the containers... When a container failure is detected,
  the Scheduler invokes the appropriate commands to restart the
  container and its associated tasks"), and passes the plan's
  **heterogeneous** container sizes straight through;
* :class:`LocalScheduler` — stateful (nobody else would recover) over
  the single-machine local framework.

Topology Master recovery (DESIGN.md §14) works on all three: the
engine's ``tmasterlocation`` watch calls
:meth:`~repro.scheduler.base.Scheduler.on_restart_tmaster` regardless
of framework. On Aurora the framework's own restart may win the race
instead (both paths stand down when the role is already re-filled); on
YARN the ``container_lost`` notification does the same; in local mode
the watch is the only recovery path.
"""

from __future__ import annotations

from repro.common.resources import Resource
from repro.packing.plan import ContainerPlan, PackingPlan
from repro.scheduler.base import Scheduler


class AuroraScheduler(Scheduler):
    """Stateless scheduler over Aurora-like frameworks."""

    is_stateful = False

    def container_spec(self, container_plan: ContainerPlan,
                       plan: PackingPlan) -> Resource:
        # Aurora "can only allocate homogeneous containers for a given
        # packing plan": every container gets the plan's maximum.
        return plan.max_container_resource

    def tmaster_spec(self, plan: PackingPlan) -> Resource:
        return plan.max_container_resource


class YarnScheduler(Scheduler):
    """Stateful scheduler over YARN-like frameworks."""

    is_stateful = True

    def container_spec(self, container_plan: ContainerPlan,
                       plan: PackingPlan) -> Resource:
        # YARN "can allocate heterogeneous containers": request exactly
        # what each container needs.
        return container_plan.required


class LocalScheduler(Scheduler):
    """Stateful scheduler for single-machine local mode."""

    is_stateful = True

    def container_spec(self, container_plan: ContainerPlan,
                       plan: PackingPlan) -> Resource:
        return container_plan.required
