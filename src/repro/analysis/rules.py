"""Shared rule/pragma plumbing for the static analyses.

Both the determinism lint (:mod:`repro.analysis.lint`, rules ``D00x``)
and the race reporter (:mod:`repro.analysis.races`, rules ``R00x``)
produce findings anchored to source locations and honor the same
suppression pragmas::

    risky_line()            # lint: allow[D003]  -- justification
    # lint: allow-file[D005]

This module holds the pieces they share — the rule/violation dataclasses,
the pragma grammar, and small AST helpers — so a pragma means the same
thing to every analysis and new rule families don't re-implement the
suppression logic.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["LintRule", "Violation", "dotted", "filter_pragmas",
           "parse_pragmas"]


@dataclass(frozen=True)
class LintRule:
    """One lint rule: stable code, short title, and the contract it guards."""

    code: str
    title: str
    rationale: str


@dataclass(frozen=True)
class Violation:
    """One finding, formatted ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render as compiler-style ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} " \
               f"{self.message}"


# -- pragmas -----------------------------------------------------------------

_LINE_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9,\s]+)\]")
_FILE_PRAGMA = re.compile(r"#\s*lint:\s*allow-file\[([A-Z0-9,\s]+)\]")


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and file-level allowed rule codes."""
    per_line: Dict[int, Set[str]] = {}
    file_level: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _FILE_PRAGMA.search(text)
        if match:
            file_level.update(c.strip() for c in match.group(1).split(","))
            continue
        match = _LINE_PRAGMA.search(text)
        if match:
            per_line[lineno] = {c.strip() for c in match.group(1).split(",")}
    return per_line, file_level


def filter_pragmas(violations: Sequence[Violation],
                   source: str) -> List[Violation]:
    """Drop violations suppressed by ``source``'s pragmas."""
    per_line, file_level = parse_pragmas(source)
    survivors = []
    for violation in violations:
        if violation.code in file_level:
            continue
        if violation.code in per_line.get(violation.line, ()):
            continue
        survivors.append(violation)
    return survivors


# -- AST helpers -------------------------------------------------------------

def dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
