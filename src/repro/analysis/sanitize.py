"""The simulation sanitizer: dynamic enforcement of kernel correctness.

Opt-in instrumentation for the discrete-event kernel — the race-detector
analogue for simulated time. Enable it with ``REPRO_SANITIZE=1`` in the
environment or ``Simulator(sanitize=True)``; the default (off) path pays
one ``is None`` check per event and nothing else.

What it checks, while the simulation runs:

* **kernel invariants** after every pop — the simulated clock never goes
  backwards, the O(1) live-event counter stays within the physical queue
  bounds, and (every ``scan_interval`` pops, plus after every
  compaction) a full scan confirms the counter equals the number of
  genuinely live entries and that compaction left no tombstone behind.
  The scan dispatches on the selected kernel: for the binary heap it
  walks ``sim._heap``; for the calendar queue
  (:mod:`repro.simulation.calqueue`) it additionally validates bucket
  placement (every bucketed entry's timestamp falls inside its bucket's
  window, nothing lingers at or before the open bucket), incursion
  confinement (live incursion entries precede the open bucket's end),
  and ladder spill accounting (live overflow entries lie at or past the
  day's end, and the physical-size counter matches the structures);
* **actor-model invariants** — no handler re-enters its own message
  loop and no service completion fires on an idle actor (see
  :mod:`repro.simulation.actors`);
* **per-channel FIFO** — Stream Managers stamp every
  :class:`~repro.core.messages.DataBatch` with a per-channel sequence
  number at its origin container and the receiving instance asserts
  arrival order, pinning the transport guarantee that barrier alignment
  (and the paper's at-least-once story) is built on;
* **barrier alignment** — a data batch from an already-barriered channel
  must never be processed between barrier arrival and the snapshot; the
  checkpoint coordinator additionally asserts that snapshots only come
  from expected tasks and that committed checkpoint ids are monotonic;
* **simultaneity hazards** — :func:`run_tie_probe` executes the same
  scenario twice, once with FIFO and once with LIFO ordering *within
  equal-timestamp tie groups only*, and compares observable-state
  digests: a difference means some handler pair relies on tie order the
  kernel never promised.

Violations raise :class:`SanitizerViolation` immediately (fail-fast, like
a sanitizer should) and are also recorded on the
:class:`KernelSanitizer` so post-mortem code can read
:meth:`KernelSanitizer.report`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, Hashable, List,
                    Optional, Tuple)

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.races import CausalTracer
    from repro.simulation.events import EventHandle, Simulator

__all__ = ["ChannelFifoChecker", "KernelSanitizer", "SanitizerViolation",
           "TieProbeResult", "digest_state", "run_tie_probe"]


class SanitizerViolation(SimulationError):
    """An invariant of the simulator's correctness contract was broken."""


#: Bits reserved for the per-channel sequence; the stamping process's
#: incarnation number lives above them, so a relaunched Stream Manager
#: (fresh counters) starts a new generation instead of appearing to
#: rewind the channel.
GENERATION_SHIFT = 40
_SEQ_MASK = (1 << GENERATION_SHIFT) - 1


class ChannelFifoChecker:
    """Per-channel monotonic sequence numbers (transport FIFO).

    A *channel* is any hashable identity — the Stream Manager uses
    ``(source_component, source_task, stream, dest_key)``. :meth:`stamp`
    assigns the next sequence number at the sending side;
    :meth:`observe` asserts strictly increasing arrival at the receiving
    side, within one stamping generation (see :data:`GENERATION_SHIFT`).
    """

    def __init__(self, sanitizer: "KernelSanitizer") -> None:
        self._sanitizer = sanitizer
        self._next: Dict[Hashable, int] = {}
        self._seen: Dict[Hashable, int] = {}
        self.stamped = 0
        self.observed = 0

    def stamp(self, channel: Hashable, *, generation: int = 0) -> int:
        """Assign the next sequence number for ``channel``."""
        seq = self._next.get(channel, 0) + 1
        self._next[channel] = seq
        self.stamped += 1
        return (generation << GENERATION_SHIFT) | seq

    def observe(self, channel: Hashable, stamped: int) -> None:
        """Assert ``stamped`` arrives in order on ``channel``."""
        self.observed += 1
        last = self._seen.get(channel)
        if last is not None and \
                (stamped >> GENERATION_SHIFT) == (last >> GENERATION_SHIFT) \
                and stamped <= last:
            self._sanitizer.fail(
                f"FIFO violation on channel {channel!r}: batch seq "
                f"{stamped & _SEQ_MASK} arrived after seq "
                f"{last & _SEQ_MASK}")
        self._seen[channel] = stamped

    def reset_channels(self) -> None:
        """Forget all sequence state (topology rollback/new epoch)."""
        self._next.clear()
        self._seen.clear()


class KernelSanitizer:
    """Instrumentation attached to one :class:`Simulator` as
    ``sim.sanitizer`` when sanitize mode is on."""

    def __init__(self, *, tie_order: str = "fifo",
                 scan_interval: int = 1000) -> None:
        if tie_order not in ("fifo", "lifo"):
            raise ValueError(f"tie_order must be fifo|lifo: {tie_order!r}")
        if scan_interval < 1:
            raise ValueError(f"scan_interval must be >= 1: {scan_interval}")
        self.tie_order = tie_order
        self.scan_interval = scan_interval
        self.fifo = ChannelFifoChecker(self)

        self.violations: List[str] = []
        self.pops = 0
        self.full_scans = 0
        self.tie_events = 0
        self.tie_groups = 0
        self.max_tie_group = 0
        self.barrier_checks = 0
        self._last_time = float("-inf")
        self._tie_len = 0

        self._trace_limit = 0
        self.trace: List[Tuple[float, int, str]] = []

        #: Causal tracer (repro.analysis.races), attached via
        #: races.attach_tracer(); fed every pop with callback + args so
        #: it can resolve delivery targets and happens-before edges.
        self.tracer: Optional["CausalTracer"] = None

    # -- failure path --------------------------------------------------------
    def fail(self, message: str) -> None:
        """Record a violation and raise (fail-fast)."""
        self.violations.append(message)
        raise SanitizerViolation(f"sanitizer: {message}")

    # -- kernel hooks --------------------------------------------------------
    def on_pop(self, sim: "Simulator", time: float, seq: int,
               fn: Optional[Callable[..., Any]],
               args: Tuple[Any, ...] = (),
               handle: Optional["EventHandle"] = None) -> None:
        """Invariant checks after the kernel pops a live event."""
        self.pops += 1
        if time < self._last_time:
            self.fail(f"clock went backwards: popped t={time} after "
                      f"t={self._last_time}")
        # Bitwise-equal timestamps ARE the definition of a tie group, so
        # exact float equality is intended here.
        if time == self._last_time:  # lint: allow[D005]
            self.tie_events += 1
            if self._tie_len == 1:
                self.tie_groups += 1
                self._tie_len = 2
            else:
                self._tie_len += 1
            if self._tie_len > self.max_tie_group:
                self.max_tie_group = self._tie_len
        else:
            self._tie_len = 1
            self._last_time = time
        live = sim._live
        phys = sim.heap_size
        if live < 0:
            self.fail(f"live-event counter went negative: {live}")
        if live > phys:
            self.fail(f"live-event counter {live} exceeds physical queue "
                      f"size {phys} (tombstone accounting broken)")
        if self.pops % self.scan_interval == 0:
            self.verify_queue(sim)
        if self._trace_limit and len(self.trace) < self._trace_limit:
            qualname = getattr(fn, "__qualname__", repr(fn))
            self.trace.append((time, abs(seq), qualname))
        if self.tracer is not None:
            self.tracer.on_event(time, seq, fn, args, handle)

    def verify_queue(self, sim: "Simulator") -> int:
        """Full O(n) scan of whichever kernel backs ``sim``."""
        if sim.kernel == "calendar":
            return self.verify_calendar(sim)
        return self.verify_heap(sim)

    def _scan_entries(self, sim: "Simulator", entries: Any,
                      where: str) -> int:
        """Count live entries in one store, checking handle consistency."""
        live = 0
        for entry_time, entry_seq, handle in entries:
            if handle.in_heap and handle.seq == entry_seq:
                live += 1
                if handle.cancelled:
                    self.fail(f"cancelled handle still marked in_heap at "
                              f"t={entry_time} ({where})")
        return live

    def verify_heap(self, sim: "Simulator") -> int:
        """Full O(n) scan: counter == live entries; returns live count."""
        self.full_scans += 1
        live = self._scan_entries(sim, sim._heap, "heap")
        if live != sim._live:
            self.fail(f"live-event counter {sim._live} != {live} live "
                      f"heap entries (of {len(sim._heap)} physical)")
        return live

    def verify_calendar(self, sim: Any) -> int:
        """Full scan of the calendar queue's structures + its invariants:
        bucket placement, incursion confinement, ladder spill accounting,
        and the live/physical counters."""
        self.full_scans += 1
        day_start = sim._day_start
        width = sim._width
        open_idx = sim._open_idx
        live = self._scan_entries(sim, sim._sorted[sim._cursor:],
                                  "open bucket")
        live += self._scan_entries(sim, sim._incursion, "incursion heap")
        for entry_time, entry_seq, handle in sim._incursion:
            if handle.in_heap and handle.seq == entry_seq \
                    and entry_time >= sim._open_end:
                self.fail(f"incursion entry at t={entry_time} is not "
                          f"before the open bucket end {sim._open_end}")
        for idx, bucket in enumerate(sim._buckets):
            if not bucket:
                continue
            if idx <= open_idx:
                self.fail(f"bucket {idx} at or before the open bucket "
                          f"{open_idx} still holds {len(bucket)} entries")
            live += self._scan_entries(sim, bucket, f"bucket {idx}")
            low = day_start + idx * width
            high = day_start + (idx + 1) * width
            for entry_time, _entry_seq, _handle in bucket:
                if not low <= entry_time < high:
                    self.fail(
                        f"bucket {idx} [{low}, {high}) holds an entry at "
                        f"t={entry_time} (bucket placement broken)")
        live += self._scan_entries(sim, sim._overflow, "overflow ladder")
        day_end = sim._day_end
        for entry_time, entry_seq, handle in sim._overflow:
            if handle.in_heap and handle.seq == entry_seq \
                    and entry_time < day_end:
                self.fail(f"overflow ladder holds an entry at "
                          f"t={entry_time} before day end {day_end} "
                          f"(spill accounting broken)")
        phys = (len(sim._sorted) - sim._cursor) + len(sim._incursion) \
            + len(sim._overflow) + sum(len(b) for b in sim._buckets)
        if phys != sim._size:
            self.fail(f"physical-size counter {sim._size} != {phys} "
                      f"entries across the calendar structures")
        if live != sim._live:
            self.fail(f"live-event counter {sim._live} != {live} live "
                      f"calendar entries (of {phys} physical)")
        return live

    def on_compact(self, sim: "Simulator") -> None:
        """After compaction only live events (plus, for the calendar, the
        open sorted run's lazily-skipped tombstones) may remain."""
        live = self.verify_queue(sim)
        if sim.kernel == "calendar":
            # Everything outside the open sorted run was filtered.
            allowed = len(sim._sorted) - sim._cursor
            if sim._size - live > allowed:
                self.fail(f"compaction left {sim._size - live} tombstones "
                          f"(> {allowed} allowed in the open run) of "
                          f"{sim._size} physical entries")
            return
        if live != len(sim._heap):
            self.fail(f"compaction left {len(sim._heap) - live} tombstones "
                      f"in a heap of {len(sim._heap)}")

    # -- checkpoint hooks ----------------------------------------------------
    def on_aligned_channel_data(self, instance_name: str,
                                channel: Hashable,
                                checkpoint_id: int) -> None:
        """A batch from an aligned channel reached user code: forbidden."""
        self.fail(f"{instance_name}: data batch from channel {channel!r} "
                  f"processed during alignment of checkpoint "
                  f"{checkpoint_id} (aligned-snapshot invariant)")

    def check_alignment(self, *, instance_name: str, aligning: bool,
                        channel: Hashable, barriered: bool,
                        checkpoint_id: int) -> None:
        """Called by the instance on every batch that reaches user code."""
        self.barrier_checks += 1
        if aligning and barriered:
            self.on_aligned_channel_data(instance_name, channel,
                                         checkpoint_id)

    # -- trace (seeded-RNG audit support) -----------------------------------
    def enable_trace(self, limit: int) -> None:
        """Record the first ``limit`` pops as (time, seq, callback) rows."""
        self._trace_limit = limit

    # -- reporting -----------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """Counters summarizing what the sanitizer saw."""
        return {
            "pops": self.pops,
            "full_scans": self.full_scans,
            "tie_events": self.tie_events,
            "tie_groups": self.tie_groups,
            "max_tie_group": self.max_tie_group,
            "fifo_stamped": self.fifo.stamped,
            "fifo_observed": self.fifo.observed,
            "barrier_checks": self.barrier_checks,
            "violations": list(self.violations),
        }


# -- state digests and the tie-order probe -----------------------------------

def _canonical(value: Any) -> Any:
    """A hash-stable canonical form: dicts/sets ordered, floats exact."""
    if isinstance(value, dict):
        return tuple(sorted((repr(_canonical(k)), _canonical(v))
                            for k, v in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(_canonical(v)) for v in value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, float):
        return value.hex()
    return value


def digest_state(value: Any) -> str:
    """A stable SHA-256 digest of (nested) observable state."""
    return hashlib.sha256(repr(_canonical(value)).encode()).hexdigest()


@dataclass
class TieProbeResult:
    """Outcome of a FIFO-vs-LIFO tie-order probe."""

    fifo_digest: str
    lifo_digest: str
    fifo_report: Dict[str, Any] = field(default_factory=dict)
    lifo_report: Dict[str, Any] = field(default_factory=dict)

    @property
    def hazard(self) -> bool:
        """True when tie order changed observable state."""
        return self.fifo_digest != self.lifo_digest


def run_tie_probe(factory: Callable[["Simulator"], Callable[[], Any]], *,
                  duration: float) -> TieProbeResult:
    """Detect simultaneity hazards by permuting tie-group execution order.

    ``factory(sim)`` builds the scenario on the provided simulator and
    returns a zero-argument callable producing the observable state to
    digest. The scenario runs twice — identical except that events with
    *equal timestamps* execute in scheduling order (fifo) vs reverse
    scheduling order (lifo). Any digest difference is order-dependence
    the kernel never guaranteed, i.e. a simultaneity hazard.
    """
    from repro.simulation.events import Simulator

    digests: Dict[str, str] = {}
    reports: Dict[str, Dict[str, Any]] = {}
    for order in ("fifo", "lifo"):
        sim = Simulator(sanitize=True, tie_order=order)
        observe = factory(sim)
        sim.run_until(duration)
        digests[order] = digest_state(observe())
        reports[order] = sim.sanitizer.report() \
            if sim.sanitizer is not None else {}
    return TieProbeResult(digests["fifo"], digests["lifo"],
                          reports["fifo"], reports["lifo"])
