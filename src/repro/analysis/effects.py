"""Static state-footprint analysis of component handlers.

The race detector (:mod:`repro.analysis.races`) needs to know, for every
user handler a delivery can invoke, *which instance fields it touches and
how*. This module extracts that footprint from source with an AST pass in
the :mod:`repro.analysis.lint` style — no execution, no instrumentation
of user code.

Each ``self.<field>`` access in a handler is classified into one of three
effect kinds, ordered by strength:

``'r'`` (read)
    The field's value is observed but not changed.
``'c'`` (commutative write)
    An order-insensitive accumulation: ``self.f += x``,
    ``self.f[k] += x``, ``Counter.update``, ``set.add`` — any
    interleaving of two such updates yields the same state.
``'w'`` (order-sensitive write)
    Plain assignment, keyed assignment, or a mutating method whose
    result depends on call order (``append``, ``pop``, ...).

Two footprints **conflict** on a field when at least one side is an
order-sensitive ``'w'`` — ``(r, r)``, ``(r, c)`` and ``(c, c)`` pairs
commute and are pruned, which is what keeps the stock WordCount bolts
race-clean (their ``counts[word] += n`` updates commute).

Accesses through a subscript (``self.counts[word]``) are additionally
flagged *keyed*: the footprint touches one key group rather than the
whole value. Keyed accesses still conflict when one side writes (we
cannot prove the keys differ statically), but the flag is surfaced in
findings so a reader can judge.

Resolution follows Python semantics: a handler name is looked up along
the class MRO to its defining class, and ``self._helper(...)`` calls are
folded in by fixpoint (resolved against the *concrete* class, so an
overridden helper contributes the override's footprint). Classes whose
source is unavailable (C builtins) yield ``None`` — callers treat that
as "unknown, don't flag".
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple, Type

__all__ = [
    "EFFECT_READ",
    "EFFECT_COMMUTE",
    "EFFECT_WRITE",
    "Conflict",
    "EffectIndex",
    "FieldEffect",
    "Footprint",
    "conflicts",
    "merge_footprints",
]

EFFECT_READ = "r"
EFFECT_COMMUTE = "c"
EFFECT_WRITE = "w"

#: Strength order for merging: a later, stronger access dominates.
_STRENGTH = {EFFECT_READ: 0, EFFECT_COMMUTE: 1, EFFECT_WRITE: 2}

#: AugAssign operators whose repeated application commutes (the updates
#: ``f op= a; f op= b`` reach the same value in either order).
_COMMUTATIVE_OPS = (ast.Add, ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor,
                    ast.Mult)

#: Mutating methods that commute across calls (Counter/set/dict union
#: semantics): ``c.update(a); c.update(b)`` is order-insensitive.
_COMMUTATIVE_METHODS = frozenset({"update", "add"})

#: Mutating methods whose effect is order-sensitive.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popitem",
    "popleft", "remove", "discard", "clear", "setdefault", "sort",
    "reverse", "subtract",
})


@dataclass(frozen=True)
class FieldEffect:
    """How one handler touches one ``self.<field>``."""

    field: str
    kind: str          #: 'r' | 'c' | 'w'
    keyed: bool        #: True when every access goes through a subscript
    path: str          #: source file of the strongest access
    line: int          #: 1-based line of the strongest access

    def merge(self, other: "FieldEffect") -> "FieldEffect":
        """Combine two accesses to the same field: strongest kind wins,
        keyed only if *all* accesses are keyed."""
        keyed = self.keyed and other.keyed
        strongest = self if _STRENGTH[self.kind] >= _STRENGTH[other.kind] \
            else other
        return replace(strongest, keyed=keyed)


#: A handler's full footprint: field name -> strongest effect.
Footprint = Dict[str, FieldEffect]


def merge_footprints(*prints: Footprint) -> Footprint:
    """Union footprints (e.g. of every handler one delivery invokes)."""
    merged: Footprint = {}
    for fp in prints:
        for field, effect in fp.items():
            prior = merged.get(field)
            merged[field] = effect if prior is None else prior.merge(effect)
    return merged


@dataclass(frozen=True)
class Conflict:
    """A field two footprints race on (at least one order-sensitive)."""

    field: str
    a: FieldEffect
    b: FieldEffect

    @property
    def keyed(self) -> bool:
        return self.a.keyed and self.b.keyed


def conflicts(a: Optional[Footprint], b: Optional[Footprint]) \
        -> List[Conflict]:
    """Fields where the two footprints fail to commute.

    ``None`` means "footprint unknown" (unavailable source) and is
    treated as non-conflicting — the detector prunes rather than
    spamming unverifiable findings.
    """
    if a is None or b is None:
        return []
    found: List[Conflict] = []
    for field in sorted(set(a) & set(b)):
        ea, eb = a[field], b[field]
        if EFFECT_WRITE in (ea.kind, eb.kind):
            found.append(Conflict(field, ea, eb))
    return found


class _MethodVisitor(ast.NodeVisitor):
    """Collect one method body's direct field effects and helper calls."""

    def __init__(self, path: str, line_offset: int) -> None:
        self.path = path
        self.line_offset = line_offset
        self.effects: Footprint = {}
        self.helper_calls: Set[str] = set()
        # Attribute nodes already consumed by a stronger classification
        # (assignment target, mutator receiver): skip on the Load pass.
        self._consumed: Set[int] = set()

    # -- helpers -----------------------------------------------------------
    def _self_field(self, node: ast.AST) -> Optional[Tuple[str, bool]]:
        """``(field, keyed)`` when ``node`` is ``self.f`` or ``self.f[k]``."""
        keyed = False
        if isinstance(node, ast.Subscript):
            node = node.value
            keyed = True
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr, keyed
        return None

    def _record(self, node: ast.AST, field: str, kind: str,
                keyed: bool) -> None:
        line = getattr(node, "lineno", 1) + self.line_offset
        effect = FieldEffect(field, kind, keyed, self.path, line)
        prior = self.effects.get(field)
        self.effects[field] = effect if prior is None \
            else prior.merge(effect)

    def _consume(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                self._consumed.add(id(sub))
                break

    # -- assignments -------------------------------------------------------
    def _visit_store_target(self, target: ast.AST, node: ast.AST) -> None:
        hit = self._self_field(target)
        if hit is not None:
            field, keyed = hit
            self._record(node, field, EFFECT_WRITE, keyed)
            self._consume(target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._visit_store_target(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._visit_store_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._visit_store_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        hit = self._self_field(node.target)
        if hit is not None:
            field, keyed = hit
            kind = EFFECT_COMMUTE \
                if isinstance(node.op, _COMMUTATIVE_OPS) else EFFECT_WRITE
            self._record(node, field, kind, keyed)
            self._consume(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            hit = self._self_field(target)
            if hit is not None:
                self._record(node, hit[0], EFFECT_WRITE, hit[1])
                self._consume(target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._visit_store_target(node.target, node)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                # self.helper(...) -- folded in by the fixpoint; the
                # method-name attribute itself is not a state read.
                self.helper_calls.add(func.attr)
                self._consumed.add(id(func))
            else:
                hit = self._self_field(receiver)
                if hit is not None:
                    field, keyed = hit
                    if func.attr in _COMMUTATIVE_METHODS:
                        self._record(node, field, EFFECT_COMMUTE, keyed)
                        self._consume(receiver)
                    elif func.attr in _MUTATOR_METHODS:
                        self._record(node, field, EFFECT_WRITE, keyed)
                        self._consume(receiver)
                    # Any other method is treated as an accessor (read);
                    # the Load pass below records it.
        self.generic_visit(node)

    # -- reads -------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) not in self._consumed \
                and isinstance(node.ctx, ast.Load) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            self._record(node, node.attr, EFFECT_READ, False)
        self.generic_visit(node)


class EffectIndex:
    """Memoized per-class handler footprints.

    One index is shared by a whole race-analysis run; both the AST of
    each class and the fixpoint-resolved per-handler footprints are
    cached, so tracing thousands of deliveries costs one parse per
    component class.
    """

    def __init__(self) -> None:
        self._methods: Dict[type, Optional[
            Dict[str, Tuple[Footprint, Set[str]]]]] = {}
        self._resolved: Dict[Tuple[type, str], Optional[Footprint]] = {}

    # -- per-class AST pass ------------------------------------------------
    def _class_methods(self, cls: type) \
            -> Optional[Dict[str, Tuple[Footprint, Set[str]]]]:
        """``{method: (direct_footprint, helper_calls)}`` for one class
        body (no inheritance), or None when source is unavailable."""
        if cls in self._methods:
            return self._methods[cls]
        result: Optional[Dict[str, Tuple[Footprint, Set[str]]]]
        try:
            source = inspect.getsource(cls)
            path = inspect.getsourcefile(cls) or "<unknown>"
            _lines, start = inspect.getsourcelines(cls)
            tree = ast.parse(source)
        except (OSError, TypeError, SyntaxError):
            self._methods[cls] = None
            return None
        result = {}
        class_node = tree.body[0]
        if isinstance(class_node, ast.ClassDef):
            for item in class_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visitor = _MethodVisitor(path, start - 1)
                    for stmt in item.body:
                        visitor.visit(stmt)
                    result[item.name] = (visitor.effects,
                                         visitor.helper_calls)
        self._methods[cls] = result
        return result

    # -- MRO + fixpoint resolution -----------------------------------------
    def footprint(self, cls: Type[object], method: str) \
            -> Optional[Footprint]:
        """Full footprint of ``cls().method`` including helpers, or None
        when any contributing body's source is unavailable."""
        return self._resolve(cls, method, frozenset())

    def _resolve(self, cls: type, method: str,
                 visiting: frozenset) -> Optional[Footprint]:
        key = (cls, method)
        if key in self._resolved:
            return self._resolved[key]
        if (cls, method) in visiting:
            return {}  # recursion: contributes nothing new to the fixpoint
        defining = self._defining_class(cls, method)
        if defining is None:
            self._resolved[key] = None
            return None
        table = self._class_methods(defining)
        if table is None or method not in table:
            self._resolved[key] = None
            return None
        direct, helpers = table[method]
        total = dict(direct)
        for helper in sorted(helpers):
            sub = self._resolve(cls, helper,
                                visiting | {(cls, method)})
            if sub is None:
                # A helper we cannot see: the footprint is incomplete,
                # but keep what we did resolve rather than discarding —
                # partial information still prunes commuting pairs.
                continue
            total = merge_footprints(total, sub)
        self._resolved[key] = total
        return total

    @staticmethod
    def _defining_class(cls: type, method: str) -> Optional[type]:
        for base in cls.__mro__:
            if base is object:
                continue
            if method in base.__dict__:
                return base
        return None
