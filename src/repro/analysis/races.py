"""Happens-before race detection over kernel tie groups.

Both kernels guarantee a *total* pop order — ``(time, seq)`` — so every
run is deterministic. But determinism is not order-independence: two
events with bitwise-equal timestamps (a **tie group**) execute in
scheduling order only because the kernel says so, and user state that
depends on that order is a simultaneity hazard — the class of bug the
sanitizer's FIFO/LIFO probe (:func:`repro.analysis.sanitize.run_tie_probe`)
detects only wholesale. This module finds the *specific* racing pairs,
with source locations, and can replay the minimal reordering that
exposes each one.

The pipeline:

1. :class:`CausalTracer` hooks both kernels (via
   :func:`attach_tracer`) and records, per tie group, the
   happens-before edges the engine actually guarantees:

   * **spawn** — an event armed while another event was executing is
     ordered after it (``EventHandle.cause``, stamped by the kernel);
   * **transport FIFO** — two deliveries on the same Stream-Manager
     channel are ordered by the channel's sanitizer stamp
     (``DataBatch.sani_seq``).

   Per-actor *receive* order is deliberately **not** an edge: which of
   two same-time arrivals a busy actor dequeues first is exactly the
   nondeterminism under test.

   Because no happens-before path moves backward in simulated time,
   causality between equal-time events flows only through equal-time
   events — so reachability is computed per tie group with integer
   bitmasks instead of global vector clocks.

2. Causally-unordered pairs of *arrival events* at the same Heron
   Instance are resolved to the user handlers they invoke
   (:meth:`HeronInstance.user_handlers_for`) and their static state
   footprints (:mod:`repro.analysis.effects`). Pairs whose footprints
   commute — the WordCount bolts' ``counts[word] += n`` — are pruned;
   pairs that conflict on a field become :class:`RaceFinding`\\ s
   (rule **R001**, suppressible with ``# lint: allow[R001]`` on the
   conflicting access).

3. The DPOR-lite **explorer** (:func:`explore`, ``heron-sim races
   --explore``) replays the scenario demoting one side of a finding
   within its tie groups (``TIE_CLASS_SHIFT`` seq bias — ties only,
   everything else byte-identical) and diffs observable-state digests,
   upgrading "potential race" to **confirmed divergence**.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.analysis.effects import (Conflict, EffectIndex, Footprint,
                                    conflicts, merge_footprints)
from repro.analysis.rules import LintRule, Violation, parse_pragmas
from repro.analysis.sanitize import digest_state
from repro.core.instance import HeronInstance
from repro.core.messages import DataBatch
from repro.simulation.events import EventHandle, Simulator

__all__ = [
    "RACE_RULES",
    "CausalTracer",
    "ExplorationResult",
    "RaceFinding",
    "RaceReport",
    "SCENARIOS",
    "Scenario",
    "attach_tracer",
    "explore",
    "main",
    "run_races",
]

#: Race rules share the lint pragma grammar: ``# lint: allow[R001]`` on
#: either conflicting access suppresses the finding.
RACE_RULES: Dict[str, LintRule] = {
    "R001": LintRule(
        "R001", "order-sensitive handler race on tied events",
        "Two causally-unordered events with bitwise-equal timestamps "
        "invoke handlers whose state footprints do not commute; which "
        "runs first is a kernel tie-break, not an engine guarantee."),
}

_ARRIVAL_METHODS = frozenset({"deliver", "deliver_many"})

#: Trace-row cap for the cross-kernel parity digest.
_TRACE_ROW_LIMIT = 50_000


# ---------------------------------------------------------------------------
# findings
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SideInfo:
    """One side of a racing pair: a single arrival event."""

    eid: int                            #: kernel sequence number (abs)
    actor: str                          #: e.g. ``count[0]``
    instance_key: Tuple[str, int]
    messages: Tuple[str, ...]           #: message type names
    #: ``(source_component, source_task, stream)`` per DataBatch carried.
    channels: Tuple[Tuple[str, int, str], ...]
    handlers: Tuple[str, ...]           #: user methods the delivery invokes

    def describe(self) -> str:
        """One-line human rendering: event, payload, channel, handler."""
        what = "+".join(self.messages) or "message"
        via = ""
        if self.channels:
            src = sorted({f"{c}[{t}]/{s}" for c, t, s in self.channels})
            via = f" from {', '.join(src)}"
        handlers = "/".join(self.handlers) or "?"
        return f"event #{self.eid}: {what}{via} -> {self.actor}.{handlers}"

    @property
    def signature(self) -> Tuple[Any, ...]:
        """Run-stable identity (no eid): what the explorer demotes."""
        return (self.instance_key, tuple(sorted(self.messages)),
                tuple(sorted(self.channels)))


@dataclass
class RaceFinding:
    """A causally-unordered, non-commuting pair of tied arrivals."""

    time: float
    actor: str
    conflict: Conflict
    a: SideInfo
    b: SideInfo
    count: int = 1                      #: occurrences of this signature
    confirmed: Optional[bool] = None    #: explorer verdict (None = not run)
    digests: Dict[str, str] = field(default_factory=dict)

    @property
    def signature(self) -> Tuple[Any, ...]:
        """Dedup key across tie groups of the same run."""
        return (self.conflict.field, self.conflict.a.kind,
                self.conflict.b.kind,
                tuple(sorted((self.a.signature, self.b.signature))))

    def violation(self) -> Violation:
        """Render as a lint-style ``Violation`` at the conflicting access."""
        c = self.conflict
        status = {True: " [CONFIRMED divergence]",
                  False: " [not reproduced by explorer]",
                  None: ""}[self.confirmed]
        return Violation(
            c.a.path, c.a.line, 0, "R001",
            f"field {c.field!r} raced by tied events at t={self.time:g} "
            f"({c.a.kind}/{c.b.kind}, x{self.count}){status}")

    def format(self) -> str:
        """Multi-line report: both sides, locations, minimal reordering."""
        c = self.conflict
        lines = [
            f"R001 potential race on {self.actor} field {c.field!r} "
            f"at t={self.time:g} (seen x{self.count})",
            f"  A: {self.a.describe()}",
            f"     {c.a.kind}-access at {c.a.path}:{c.a.line}"
            f"{' (keyed)' if c.a.keyed else ''}",
            f"  B: {self.b.describe()}",
            f"     {c.b.kind}-access at {c.b.path}:{c.b.line}"
            f"{' (keyed)' if c.b.keyed else ''}",
            f"  minimal reordering: run event #{self.b.eid} before "
            f"#{self.a.eid} (same tie group; no HB path orders them)",
        ]
        if self.confirmed is True:
            lines.append("  explorer: CONFIRMED — reordering diverges "
                         "observable state")
            for name, digest in sorted(self.digests.items()):
                lines.append(f"    {name}: {digest[:16]}")
        elif self.confirmed is False:
            lines.append("  explorer: not reproduced (digests identical "
                         "under both demotions)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------

@dataclass
class _Event:
    """One popped kernel event, as buffered within its tie group."""

    eid: int
    cause: Optional[int]
    qualname: str
    arrival: Optional[Tuple[HeronInstance, Tuple[Any, ...]]]
    channels: Tuple[Tuple[Any, int], ...]   #: (channel key, sani_seq)


class CausalTracer:
    """Streaming happens-before analysis, one tie group at a time.

    Attach with :func:`attach_tracer`; the kernel then stamps
    ``EventHandle.cause`` at arm time and the sanitizer forwards every
    pop to :meth:`on_event`. Call :meth:`finalize` after the run to
    flush the last group.
    """

    def __init__(self, effects: Optional[EffectIndex] = None, *,
                 max_findings: int = 100,
                 trace_rows: bool = False) -> None:
        self.effects = effects or EffectIndex()
        self.max_findings = max_findings
        #: eid of the event currently executing (kernel reads this to
        #: stamp ``EventHandle.cause`` on everything armed inside it).
        self.current: Optional[int] = None
        #: Optional seq classifier consulted at arm time (explorer).
        self.tie_class: Optional[
            Callable[[Any, Tuple[Any, ...]], int]] = None
        self._group_time: Optional[float] = None
        self._group: List[_Event] = []
        self._findings: Dict[Tuple[Any, ...], RaceFinding] = {}
        self._footprints: Dict[Tuple[type, Tuple[str, ...]],
                               Optional[Footprint]] = {}
        self.stats: Counter = Counter()
        #: Tie-group hot spots: time -> arrival events inside multi-event
        #: tie groups. Where the schedule actually has slack — the
        #: seeding signal for ``heron-sim chaos-search``.
        self.hotspots: Counter = Counter()
        self._trace_rows: Optional[List[Tuple[str, int, str]]] = \
            [] if trace_rows else None

    # -- kernel hook -------------------------------------------------------
    def on_event(self, time: float, seq: int, fn: Any,
                 args: Tuple[Any, ...],
                 handle: Optional[EventHandle]) -> None:
        """Called by the sanitizer for every pop, in execution order."""
        # Bitwise time equality IS the tie-group definition here.
        if time != self._group_time:  # lint: allow[D005]
            self._flush()
            self._group_time = time
        eid = abs(seq)
        self.current = eid
        self.stats["events"] += 1
        cause = handle.cause if handle is not None else None
        qualname = getattr(fn, "__qualname__", repr(fn))
        arrival: Optional[Tuple[HeronInstance, Tuple[Any, ...]]] = None
        channels: Tuple[Tuple[Any, int], ...] = ()
        target = getattr(fn, "__self__", None)
        if isinstance(target, HeronInstance) \
                and getattr(fn, "__name__", "") in _ARRIVAL_METHODS:
            messages = _delivery_messages(fn, args)
            arrival = (target, messages)
            channels = tuple(
                ((m.source_component, m.source_task, m.stream,
                  target.key), m.sani_seq)
                for m in messages
                if isinstance(m, DataBatch) and m.sani_seq != -1)
            self.stats["arrival_events"] += 1
        self._group.append(_Event(eid, cause, qualname, arrival, channels))
        rows = self._trace_rows
        if rows is not None and len(rows) < _TRACE_ROW_LIMIT:
            rows.append((float.hex(time), eid, qualname))

    # -- group analysis ----------------------------------------------------
    def _flush(self) -> None:
        group, self._group = self._group, []
        n = len(group)
        if n < 2:
            return
        self.stats["tie_groups"] += 1
        self.stats["tie_group_events"] += n
        index = {e.eid: i for i, e in enumerate(group)}
        preds: List[List[int]] = [[] for _ in range(n)]
        last_on_channel: Dict[Any, Tuple[int, int]] = {}
        for i, event in enumerate(group):
            if event.cause is not None:
                j = index.get(event.cause)
                if j is not None and j < i:
                    preds[i].append(j)
            for channel, stamp in event.channels:
                prior = last_on_channel.get(channel)
                if prior is not None and prior[1] <= stamp:
                    preds[i].append(prior[0])
                last_on_channel[channel] = (i, stamp)
        reach = [0] * n
        for i in range(n):
            r = 1 << i
            for p in preds[i]:
                r |= reach[p]
            reach[i] = r
        arrivals = [i for i, e in enumerate(group) if e.arrival is not None]
        if arrivals:
            self.hotspots[self._group_time or 0.0] += len(arrivals)
        for ai in range(len(arrivals)):
            i = arrivals[ai]
            for bj in range(ai + 1, len(arrivals)):
                j = arrivals[bj]
                ea, eb = group[i], group[j]
                assert ea.arrival is not None and eb.arrival is not None
                if ea.arrival[0] is not eb.arrival[0]:
                    continue  # different actors: no shared state
                if (reach[j] >> i) & 1:
                    continue  # HB-ordered: spawn or FIFO path exists
                self._unordered_pair(ea, eb)

    def _unordered_pair(self, ea: _Event, eb: _Event) -> None:
        assert ea.arrival is not None and eb.arrival is not None
        instance = ea.arrival[0]
        self.stats["unordered_pairs"] += 1
        fa = self._arrival_footprint(instance, ea.arrival[1])
        fb = self._arrival_footprint(instance, eb.arrival[1])
        clashes = conflicts(fa, fb)
        if not clashes:
            self.stats["commuting_pruned"] += 1
            return
        time = self._group_time or 0.0
        for clash in clashes:
            side_a = _side_info(ea, instance)
            side_b = _side_info(eb, instance)
            finding = RaceFinding(time, instance.name, clash,
                                  side_a, side_b)
            prior = self._findings.get(finding.signature)
            if prior is not None:
                prior.count += 1
            elif len(self._findings) < self.max_findings:
                self._findings[finding.signature] = finding
            else:
                self.stats["findings_dropped"] += 1

    def _arrival_footprint(self, instance: HeronInstance,
                           messages: Tuple[Any, ...]) \
            -> Optional[Footprint]:
        """Union footprint of every user handler this delivery invokes.

        ``None`` (unknown) only when a message maps to a handler whose
        source is unavailable; an empty delivery footprint is ``{}``.
        """
        handlers = tuple(sorted({
            name for message in messages
            for name in instance.user_handlers_for(message)}))
        cls = type(instance.user)
        key = (cls, handlers)
        if key not in self._footprints:
            prints: List[Footprint] = []
            unknown = False
            for name in handlers:
                fp = self.effects.footprint(cls, name)
                if fp is None:
                    unknown = True
                    break
                prints.append(fp)
            self._footprints[key] = None if unknown \
                else merge_footprints(*prints)
        return self._footprints[key]

    # -- results -----------------------------------------------------------
    def finalize(self) -> None:
        """Flush the trailing tie group (call once, after the run)."""
        self._flush()
        self._group_time = None
        self.current = None

    def findings(self, *, with_suppressed: bool = False) \
            -> List[RaceFinding]:
        """Findings in first-seen order, pragma-suppressed ones dropped."""
        found = list(self._findings.values())
        if with_suppressed:
            return found
        kept = [f for f in found if not _suppressed(f)]
        self.stats["suppressed"] = len(found) - len(kept)
        return kept

    def trace_digest(self) -> str:
        """Digest of the causal trace rows (cross-kernel parity)."""
        if self._trace_rows is None:
            raise ValueError("tracer built without trace_rows=True")
        return digest_state(self._trace_rows)

    def hot_times(self, limit: int = 8) -> List[float]:
        """Times with the most tied arrivals, busiest first."""
        return [t for t, _n in self.hotspots.most_common(limit)]


def _delivery_messages(fn: Any, args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    if not args:
        return ()
    if fn.__name__ == "deliver_many":
        return tuple(args[0])
    return (args[0],)


def _side_info(event: _Event, instance: HeronInstance) -> SideInfo:
    assert event.arrival is not None
    messages = event.arrival[1]
    return SideInfo(
        eid=event.eid,
        actor=instance.name,
        instance_key=instance.key,
        messages=tuple(type(m).__name__ for m in messages),
        channels=tuple((m.source_component, m.source_task, m.stream)
                       for m in messages
                       if isinstance(m, DataBatch)),
        handlers=tuple(sorted({
            name for m in messages
            for name in instance.user_handlers_for(m)})))


_PRAGMA_CACHE: Dict[str, Tuple[Dict[int, Any], Any]] = {}


def _suppressed(finding: RaceFinding) -> bool:
    """True when either conflicting access carries ``allow[R001]``."""
    for effect in (finding.conflict.a, finding.conflict.b):
        try:
            if effect.path not in _PRAGMA_CACHE:
                with open(effect.path, encoding="utf-8") as handle:
                    _PRAGMA_CACHE[effect.path] = parse_pragmas(handle.read())
            line_pragmas, file_pragmas = _PRAGMA_CACHE[effect.path]
        except OSError:
            continue
        if "R001" in file_pragmas \
                or "R001" in line_pragmas.get(effect.line, ()):
            return True
    return False


# ---------------------------------------------------------------------------
# kernel attachment
# ---------------------------------------------------------------------------

def attach_tracer(sim: Simulator, tracer: CausalTracer, *,
                  classify: Optional[
                      Callable[[Any, Tuple[Any, ...]], int]] = None) -> None:
    """Wire a tracer into a sanitizing simulator.

    The sanitizer forwards every pop to the tracer and the kernel stamps
    ``EventHandle.cause`` from ``tracer.current``. ``classify`` (the
    explorer's tie-class demotion) requires FIFO tie order: under LIFO
    the seq sign flips and a demoted class would collide with undemoted
    seqs, so the combination is rejected.
    """
    sanitizer = getattr(sim, "sanitizer", None)
    if sanitizer is None:
        raise ValueError(
            "causal tracing needs a sanitizing kernel — construct the "
            "Simulator with sanitize=True (or REPRO_SANITIZE=1)")
    if classify is not None:
        if getattr(sim, "_seq_sign", 1) < 0:
            raise ValueError(
                "tie-class exploration requires FIFO tie order "
                "(tie_order='fifo')")
        tracer.tie_class = classify
    sanitizer.tracer = tracer
    sim._trace = tracer


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

#: ``build(sim, fast)`` constructs the workload on the given simulator
#: and returns a zero-argument observable-state callable (the
#: :func:`repro.analysis.sanitize.run_tie_probe` contract).
BuildFn = Callable[[Simulator, bool], Callable[[], Any]]

_OBSERVABLE_TYPES = (int, float, str, bool, bytes, tuple, list, dict,
                     set, frozenset)


@dataclass(frozen=True)
class Scenario:
    """A named, self-contained workload for ``heron-sim races``."""

    name: str
    description: str
    build: BuildFn
    duration: float
    fast_duration: float


def observable_user_state(instance: HeronInstance) -> Any:
    """One instance's order-observable state.

    Stateful components expose exactly their managed snapshot; others
    expose public fields of canonical value types (objects with
    address-bearing reprs — RNGs, callables — would make the digest
    unstable across identical runs and are excluded).
    """
    user = instance.user
    if getattr(user, "stateful", False):
        return user.snapshot_state()
    return {name: value for name, value in user.__dict__.items()
            if not name.startswith("_")
            and isinstance(value, _OBSERVABLE_TYPES)}


def _cluster_observer(cluster: Any) -> Callable[[], Any]:
    def observe() -> Any:
        return {
            f"{topo_name}/{instance.name}":
                observable_user_state(instance)
            for topo_name, runtime in sorted(cluster.topologies.items())
            for _key, instance in sorted(runtime.instances.items())}
    return observe


def _build_wordcount(sim: Simulator, fast: bool) -> Callable[[], Any]:
    from repro.core.heron import HeronCluster
    from repro.scheduler.frameworks import LocalFramework
    from repro.workloads.wordcount import wordcount_topology

    cluster = HeronCluster(framework=LocalFramework(sim))
    cluster.submit_topology(wordcount_topology(
        2, corpus_size=200 if fast else 2_000))
    return _cluster_observer(cluster)


def _inject_tied_arrivals(sim: Simulator, cluster: Any, topo_name: str,
                          *, times: Sequence[float]) -> None:
    """Arm simultaneous cross-source deliveries into the ``sink`` task.

    The engine's Stream Managers serialize forwarding, so two sources'
    batches reach an instance at *different* times on the happy path —
    the fixture manufactures the tie the detector is for: at each time
    in ``times``, two deliveries (one per source task) are armed with
    the same timestamp from the same driver event, so they share a
    spawn cause but have no happens-before path between each other.
    """
    def inject() -> None:
        runtime = cluster.topologies[topo_name]
        sink = next(instance
                    for key, instance in sorted(runtime.instances.items())
                    if key[0] == "sink")
        for task in (0, 1):
            batch = DataBatch(
                dest=sink.key, source_component="src", stream="default",
                values=[[f"tied-t{task}@{sim.now:g}"]], count=1,
                origin=("src", task), emit_time_sum=0.0,
                source_task=task, epoch=sink.epoch)
            sim.schedule(1e-6, sink.deliver, batch)

    for time in times:
        sim.schedule(time, inject)


#: Injection instants for the fixture scenarios; all later than the
#: capped spouts' drain point, so the tied pair is the last state write.
_INJECT_TIMES = (0.35, 0.45, 0.55)


def _build_fixture(sim: Simulator, *, commuting: bool) \
        -> Callable[[], Any]:
    from repro.core.heron import HeronCluster
    from repro.scheduler.frameworks import LocalFramework
    from repro.workloads.racy import racy_topology

    cluster = HeronCluster(framework=LocalFramework(sim))
    topology = racy_topology(commuting=commuting)
    cluster.submit_topology(topology)
    _inject_tied_arrivals(sim, cluster, topology.name,
                          times=_INJECT_TIMES)
    return _cluster_observer(cluster)


def _build_racy(sim: Simulator, fast: bool) -> Callable[[], Any]:
    return _build_fixture(sim, commuting=False)


def _build_commuting(sim: Simulator, fast: bool) -> Callable[[], Any]:
    return _build_fixture(sim, commuting=True)


SCENARIOS: Dict[str, Scenario] = {
    "wordcount": Scenario(
        "wordcount", "the paper's benchmark: 2 spouts -> 2 count bolts "
        "(expected race-clean: counting commutes)",
        _build_wordcount, 3.0, 1.0),
    "racy": Scenario(
        "racy", "two-source topology with an order-sensitive bolt "
        "(expected: R001, explorer-confirmable)",
        _build_racy, 2.0, 0.6),
    "commuting": Scenario(
        "commuting", "same shape as 'racy' with a commuting bolt "
        "(expected race-clean)",
        _build_commuting, 2.0, 0.6),
}


# ---------------------------------------------------------------------------
# driver + explorer
# ---------------------------------------------------------------------------

@dataclass
class RaceReport:
    """Everything one ``run_races`` invocation learned."""

    scenario: str
    kernel: str
    duration: float
    findings: List[RaceFinding]
    digest: str                       #: observable-state digest
    trace_digest: str                 #: causal-trace digest (parity)
    stats: Dict[str, int]
    hot_times: List[float]

    @property
    def clean(self) -> bool:
        return not self.findings


def _run_once(scenario: Scenario, *, kernel: Optional[str],
              duration: float, fast: bool,
              classify: Optional[Callable[[Any, Tuple[Any, ...]], int]],
              effects: Optional[EffectIndex] = None,
              trace_rows: bool = False) -> Tuple[CausalTracer, str]:
    kwargs: Dict[str, Any] = {"sanitize": True, "tie_order": "fifo"}
    if kernel is not None:
        kwargs["kernel"] = kernel
    sim = Simulator(**kwargs)
    tracer = CausalTracer(effects, trace_rows=trace_rows)
    observe = scenario.build(sim, fast)
    attach_tracer(sim, tracer, classify=classify)
    sim.run_until(duration)
    tracer.finalize()
    return tracer, digest_state(observe())


def run_races(scenario_name: str, *, kernel: Optional[str] = None,
              duration: Optional[float] = None,
              fast: bool = False) -> RaceReport:
    """Trace one scenario and report potential tie races."""
    scenario = SCENARIOS[scenario_name]
    run_for = duration if duration is not None \
        else (scenario.fast_duration if fast else scenario.duration)
    tracer, digest = _run_once(scenario, kernel=kernel, duration=run_for,
                               fast=fast, classify=None, trace_rows=True)
    return RaceReport(
        scenario=scenario_name,
        kernel=kernel or Simulator().kernel,
        duration=run_for,
        findings=tracer.findings(),
        digest=digest,
        trace_digest=tracer.trace_digest(),
        stats=dict(tracer.stats),
        hot_times=tracer.hot_times())


@dataclass
class ExplorationResult:
    """Digest diff of demoting each side of one finding."""

    baseline: str
    demoted_a: str
    demoted_b: str

    @property
    def confirmed(self) -> bool:
        return self.demoted_a != self.baseline \
            or self.demoted_b != self.baseline


def _side_classifier(side: SideInfo) \
        -> Callable[[Any, Tuple[Any, ...]], int]:
    """Arm-time matcher: demote (class 1) deliveries matching ``side``."""
    want_key = side.instance_key
    want_channels = set(side.channels)
    want_types = set(side.messages)

    def classify(fn: Any, args: Tuple[Any, ...]) -> int:
        if getattr(fn, "__name__", "") not in _ARRIVAL_METHODS:
            return 0
        target = getattr(fn, "__self__", None)
        if not isinstance(target, HeronInstance) or target.key != want_key:
            return 0
        for message in _delivery_messages(fn, args):
            if isinstance(message, DataBatch):
                channel = (message.source_component, message.source_task,
                           message.stream)
                if channel in want_channels:
                    return 1
            elif type(message).__name__ in want_types:
                return 1
        return 0

    return classify


def explore(scenario_name: str, finding: RaceFinding, *,
            kernel: Optional[str] = None,
            duration: Optional[float] = None,
            fast: bool = False,
            baseline: Optional[str] = None) -> ExplorationResult:
    """Replay the scenario demoting each side of ``finding`` in turn.

    A demotion biases only intra-tie-group order (seq gains
    ``1 << TIE_CLASS_SHIFT``), so any digest change against the
    baseline is order-dependence of *this* pair's schedule — the
    finding's verdict is written back (``confirmed``/``digests``).
    """
    scenario = SCENARIOS[scenario_name]
    run_for = duration if duration is not None \
        else (scenario.fast_duration if fast else scenario.duration)
    if baseline is None:
        _t, baseline = _run_once(scenario, kernel=kernel, duration=run_for,
                                 fast=fast, classify=None)
    digests: Dict[str, str] = {"baseline": baseline}
    for label, side in (("demote-A", finding.a), ("demote-B", finding.b)):
        _t, digest = _run_once(scenario, kernel=kernel, duration=run_for,
                               fast=fast,
                               classify=_side_classifier(side))
        digests[label] = digest
    result = ExplorationResult(baseline, digests["demote-A"],
                               digests["demote-B"])
    finding.confirmed = result.confirmed
    finding.digests = digests
    return result


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _kernels(choice: str) -> Sequence[Optional[str]]:
    if choice == "both":
        return ("calendar", "heap")
    if choice == "default":
        return (None,)
    return (choice,)


def main(argv: Optional[Iterable[str]] = None) -> int:
    """``heron-sim races`` — trace, detect, optionally explore.

    Exit status: 0 clean, 1 findings (or cross-kernel trace mismatch),
    2 usage error.
    """
    parser = argparse.ArgumentParser(
        prog="heron-sim races",
        description="Happens-before race detection over kernel tie "
                    "groups, with DPOR-lite schedule exploration.")
    parser.add_argument("scenario", nargs="?", default="wordcount",
                        choices=sorted(SCENARIOS),
                        help="workload to trace (default: wordcount)")
    parser.add_argument("--explore", action="store_true",
                        help="replay each finding with one side demoted "
                             "and diff observable-state digests")
    parser.add_argument("--kernel", default="default",
                        choices=["default", "calendar", "heap", "both"],
                        help="kernel(s) to run under; 'both' also checks "
                             "causal-trace parity")
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default: per scenario)")
    parser.add_argument("--fast", action="store_true",
                        help="short smoke run (CI)")
    parser.add_argument("--max-explore", type=int, default=4,
                        help="explore at most this many findings")
    args = parser.parse_args(list(argv) if argv is not None else None)

    reports: List[RaceReport] = []
    for kernel in _kernels(args.kernel):
        report = run_races(args.scenario, kernel=kernel,
                           duration=args.duration, fast=args.fast)
        reports.append(report)
        print(f"== scenario {report.scenario!r} on kernel "
              f"{report.kernel} ({report.duration:g}s simulated) ==")
        stats = report.stats
        print(f"   {stats.get('events', 0)} events, "
              f"{stats.get('tie_groups', 0)} tie groups, "
              f"{stats.get('unordered_pairs', 0)} unordered arrival "
              f"pairs, {stats.get('commuting_pruned', 0)} pruned as "
              f"commuting, {stats.get('suppressed', 0)} suppressed")
        if args.explore and report.findings:
            for finding in report.findings[:args.max_explore]:
                explore(args.scenario, finding, kernel=kernel,
                        duration=args.duration, fast=args.fast,
                        baseline=report.digest)
        for finding in report.findings:
            print(finding.format())
        if not report.findings:
            print("   race-clean: every tied arrival pair is "
                  "HB-ordered or commutes")
    failed = any(r.findings for r in reports)
    if len(reports) == 2:
        if reports[0].trace_digest != reports[1].trace_digest:
            print("FAIL: causal traces differ across kernels "
                  f"({reports[0].trace_digest[:16]} vs "
                  f"{reports[1].trace_digest[:16]})")
            failed = True
        else:
            print(f"cross-kernel parity: causal traces identical "
                  f"({reports[0].trace_digest[:16]})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
