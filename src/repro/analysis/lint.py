"""The determinism lint: repo-specific static rules D001–D007.

The simulator's correctness contract (see :mod:`repro.analysis`) can be
broken by a one-line edit — a stray ``time.time()`` in a cost handler, a
``random.choice`` in a workload, a ``for task in set(...)`` feeding
``schedule()``. Each rule here targets one such class of regression:

========  ==============================================================
D001      wall-clock reads (``time.time``/``datetime.now``/
          ``perf_counter`` …) — simulation code must use
          ``Simulator.now``
D002      global or unseeded randomness (module-level ``random.*``,
          ``os.urandom``, ``random.Random()`` with no seed) — must use
          ``repro.simulation.rng.RngStream``
D003      iteration over bare ``set``s / ``dict.keys()`` that feeds
          ``schedule()``/``send()``/``emit()`` — hash order is not
          deterministic across processes (``PYTHONHASHSEED``), so tie
          order must come from ``sorted(...)`` or insertion order
D004      mutable default arguments on ``Component``/``Actor``
          subclasses — shared across deep-copied task instances
D005      float equality (``==``/``!=``) on simulated time — timestamps
          are derived floats; compare with tolerances or orderings
D006      stateful components that snapshot without declaring
          ``key_groups`` — rescale re-partitioning silently degrades to
          monolithic state; declare ``key_groups = 0`` to make that
          deliberate
D007      unsorted ``dict.items()``/``.keys()``/``.values()`` iteration
          inside ``snapshot_state`` — snapshot bytes (and any digest of
          them) inherit schedule-dependent insertion order; wrap in
          ``sorted(...)``
========  ==============================================================

Any finding can be suppressed on its line with ``# lint: allow[D00x]``
(plus a justifying comment), or for a whole file with
``# lint: allow-file[D00x]`` — used by measurement-harness modules whose
*job* is reading the wall clock. The pragma grammar (and the
rule/violation dataclasses) live in :mod:`repro.analysis.rules`, shared
with the race reporter's ``R00x`` family.

Run as ``heron-sim lint [paths…]``, ``python scripts/lint.py`` or
``python -m repro.analysis.lint``. Exit status is 0 when clean, 1 when
violations were found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.analysis.rules import (LintRule, Violation, dotted,
                                  filter_pragmas)

__all__ = ["LintRule", "RULES", "Violation", "lint_paths", "lint_source",
           "main", "rules_table"]


RULES: Dict[str, LintRule] = {rule.code: rule for rule in (
    LintRule(
        "D001", "no wall-clock reads in simulation code",
        "simulated components must derive time from Simulator.now; a "
        "wall-clock read makes results machine- and load-dependent"),
    LintRule(
        "D002", "no global or unseeded randomness",
        "all randomness must flow through seeded RngStream objects (or an "
        "explicitly seeded random.Random); the global random module is "
        "shared mutable state that breaks run-to-run reproducibility"),
    LintRule(
        "D003", "no set/dict.keys() iteration feeding the scheduler",
        "set iteration order depends on PYTHONHASHSEED, which differs "
        "between the serial runner and pooled sweep workers; events "
        "scheduled from such a loop tie at equal timestamps in "
        "process-dependent order"),
    LintRule(
        "D004", "no mutable default arguments on components/actors",
        "component objects are deep-copied per task; a mutable default "
        "evaluated once at def time is silently shared across every "
        "instance created before the copy"),
    LintRule(
        "D005", "no float equality on simulated time",
        "timestamps are sums of float intervals; == / != on them is "
        "representation-dependent — compare with tolerances or orderings"),
    LintRule(
        "D006", "stateful snapshots must declare key_groups",
        "a stateful component that snapshots without declaring key_groups "
        "silently opts out of rescale re-partitioning; key_groups = 0 "
        "documents deliberately monolithic state"),
    LintRule(
        "D007", "no unsorted dict iteration inside snapshot_state",
        "dict insertion order inside user state is schedule-dependent; a "
        "snapshot (or digest) built by iterating .items()/.keys()/"
        ".values() bakes that order into checkpoint bytes — wrap the "
        "iteration in sorted(...)"),
)}


# -- rule implementation -----------------------------------------------------

#: Canonical dotted names whose *call* reads the wall clock (D001).
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "os.times",
})

#: Module-level functions of ``random`` that use the shared global RNG
#: (D002). ``random.Random`` is handled separately (seeded vs unseeded).
_GLOBAL_RANDOM_PREFIXES = ("random.", "numpy.random.")
_OTHER_ENTROPY_CALLS = frozenset({"os.urandom", "secrets.token_bytes",
                                  "secrets.randbelow", "uuid.uuid4",
                                  "uuid.uuid1"})

#: Calls that hand events/messages to the kernel or the data plane (D003).
_SCHEDULING_CALLS = frozenset({
    "schedule", "schedule_at", "every", "send", "deliver", "deliver_many",
    "emit", "emit_batch", "broadcast",
})

#: Base classes whose subclasses the mutable-default rule covers (D004).
_COMPONENT_BASES = frozenset({
    "Component", "Spout", "Bolt", "Actor", "FunctionActor",
    "HeronInstance", "StreamManager",
})

#: Constructors whose call produces a fresh mutable object (D004).
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray",
                                "Counter", "defaultdict", "deque",
                                "OrderedDict"})

#: Terminal names treated as simulated-time expressions (D005).
_TIME_NAME = re.compile(r"^(now|time|etime|timestamp)$|_time$|_at$")

#: Dict views whose iteration order is insertion order (D007).
_DICT_VIEWS = frozenset({"items", "keys", "values"})

#: Call sinks whose result does not depend on iteration order (D007):
#: feeding a view into these is fine without sorted().
_ORDER_INSENSITIVE_SINKS = frozenset({
    "sorted", "sum", "len", "min", "max", "any", "all", "set", "frozenset",
    "Counter",
})


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor implementing every rule."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[Violation] = []
        #: local alias -> canonical dotted name (from imports).
        self.aliases: Dict[str, str] = {}
        self._class_stack: List[bool] = []  # is-component-subclass flags

    # -- helpers -------------------------------------------------------------
    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0) + 1, code, message))

    def _canonical(self, dotted_name: str) -> str:
        """Resolve the leading alias of a dotted chain through imports."""
        head, _, rest = dotted_name.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted_name
        return f"{target}.{rest}" if rest else target

    # -- imports (feed the alias map; flag global-random imports) -----------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.partition(".")[0]] = \
                alias.name if alias.asname else alias.name.partition(".")[0]
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                if module == "random":
                    self._flag(node, "D002",
                               "star-import of the global random module; "
                               "use repro.simulation.rng.RngStream")
                continue
            self.aliases[alias.asname or alias.name] = \
                f"{module}.{alias.name}" if module else alias.name
            if module == "random" and alias.name not in ("Random",):
                self._flag(
                    node, "D002",
                    f"'from random import {alias.name}' binds the shared "
                    f"global RNG; use repro.simulation.rng.RngStream")
        self.generic_visit(node)

    # -- calls: D001, D002 ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted_name = dotted(node.func)
        if dotted_name is not None:
            canonical = self._canonical(dotted_name)
            if canonical in _WALL_CLOCK_CALLS:
                self._flag(node, "D001",
                           f"wall-clock read '{canonical}()'; simulation "
                           f"code must use Simulator.now")
            elif canonical == "random.Random":
                if not node.args and not node.keywords:
                    self._flag(node, "D002",
                               "unseeded random.Random() (seeds from the "
                               "OS); derive a seed or use RngStream")
            elif canonical in ("random.SystemRandom",) \
                    or canonical in _OTHER_ENTROPY_CALLS:
                self._flag(node, "D002",
                           f"'{canonical}()' draws OS entropy; use "
                           f"repro.simulation.rng.RngStream")
            elif canonical.startswith(_GLOBAL_RANDOM_PREFIXES):
                self._flag(node, "D002",
                           f"global-RNG call '{canonical}()'; use "
                           f"repro.simulation.rng.RngStream")
        self.generic_visit(node)

    # -- loops: D003 ---------------------------------------------------------
    def _unordered_iterable(self, node: ast.expr) -> Optional[str]:
        """Describe ``node`` if its iteration order is hash-dependent."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr == "keys" \
                    and not node.args:
                return ".keys()"
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            # Set algebra (a | b, a - b, …) yields a new unordered set.
            left = self._unordered_iterable(node.left)
            right = self._unordered_iterable(node.right)
            if left or right:
                return "a set expression"
        return None

    def visit_For(self, node: ast.For) -> None:
        described = self._unordered_iterable(node.iter)
        if described is not None:
            for child in ast.walk(ast.Module(body=node.body,
                                             type_ignores=[])):
                if not isinstance(child, ast.Call):
                    continue
                func = child.func
                name = func.attr if isinstance(func, ast.Attribute) else \
                    func.id if isinstance(func, ast.Name) else None
                if name in _SCHEDULING_CALLS:
                    self._flag(
                        node, "D003",
                        f"iterating {described} while calling '{name}()': "
                        f"hash order decides event tie order; wrap the "
                        f"iterable in sorted(...)")
                    break
        self.generic_visit(node)

    # -- classes/functions: D004, D006 ---------------------------------------
    @staticmethod
    def _assigned_names(stmt: ast.stmt) -> List[str]:
        """Plain names bound by a class-body Assign/AnnAssign statement."""
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        return [t.id for t in targets if isinstance(t, ast.Name)]

    def _check_key_groups(self, node: ast.ClassDef) -> None:
        """D006: stateful + snapshot_state without a key_groups declaration.

        AST-local on purpose: only classes that *textually* declare
        ``stateful = True`` and define ``snapshot_state`` in the same
        body are covered (inheritance is invisible to a file-level
        pass). ``key_groups`` counts whether declared as a class
        attribute or assigned as ``self.key_groups = ...`` in a method.
        """
        declares_stateful = False
        defines_snapshot = False
        declares_key_groups = False
        for stmt in node.body:
            names = self._assigned_names(stmt)
            if "key_groups" in names:
                declares_key_groups = True
            if "stateful" in names:
                value = stmt.value if isinstance(
                    stmt, (ast.Assign, ast.AnnAssign)) else None
                if isinstance(value, ast.Constant) and value.value is True:
                    declares_stateful = True
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "snapshot_state":
                    defines_snapshot = True
                for child in ast.walk(stmt):
                    if isinstance(child, (ast.Assign, ast.AnnAssign,
                                          ast.AugAssign)):
                        target_list = child.targets if isinstance(
                            child, ast.Assign) else [child.target]
                        for target in target_list:
                            if isinstance(target, ast.Attribute) \
                                    and target.attr == "key_groups" \
                                    and isinstance(target.value, ast.Name) \
                                    and target.value.id == "self":
                                declares_key_groups = True
        if declares_stateful and defines_snapshot and not declares_key_groups:
            self._flag(
                node, "D006",
                f"stateful component '{node.name}' snapshots state but "
                f"never declares key_groups; rescale re-partitioning will "
                f"silently treat its state as monolithic — declare "
                f"'key_groups = 0' (deliberate) or a group count")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_component = False
        for base in node.bases:
            dotted_name = dotted(base)
            if dotted_name is not None and \
                    dotted_name.rpartition(".")[2] in _COMPONENT_BASES:
                is_component = True
        self._check_key_groups(node)
        self._class_stack.append(is_component)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    def _check_defaults(self, node: Union[ast.FunctionDef,
                                          ast.AsyncFunctionDef]) -> None:
        if not (self._class_stack and self._class_stack[-1]):
            return
        defaults: List[Optional[ast.expr]] = [*node.args.defaults,
                                              *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp,
                                           ast.SetComp))
            if not mutable and isinstance(default, ast.Call):
                dotted_name = dotted(default.func)
                mutable = dotted_name is not None and \
                    dotted_name.rpartition(".")[2] in _MUTABLE_FACTORIES
            if mutable:
                self._flag(default, "D004",
                           f"mutable default argument on component method "
                           f"'{node.name}'; default to None and create "
                           f"the object inside the body")

    # -- snapshot bodies: D007 -----------------------------------------------
    def _check_snapshot_iteration(self, node: Union[
            ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        """D007: unsorted dict-view iteration inside ``snapshot_state``."""
        if node.name != "snapshot_state":
            return
        # Dict-view calls appearing directly inside an order-insensitive
        # sink (sorted, sum, len, …) are fine; collect them first.
        sunk: set = set()
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in _ORDER_INSENSITIVE_SINKS:
                for arg in child.args:
                    sunk.add(id(arg))
        for child in ast.walk(node):
            if not isinstance(child, ast.Call) or id(child) in sunk:
                continue
            func = child.func
            if isinstance(func, ast.Attribute) and not child.args \
                    and func.attr in _DICT_VIEWS:
                self._flag(
                    child, "D007",
                    f"snapshot_state iterates '.{func.attr}()' unsorted; "
                    f"dict insertion order is schedule-dependent, so the "
                    f"snapshot bytes inherit the event schedule — wrap "
                    f"the iteration in sorted(...)")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_snapshot_iteration(node)
        # Nested defs are not component methods; hide the class context.
        self._class_stack.append(False)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_snapshot_iteration(node)
        self._class_stack.append(False)
        try:
            self.generic_visit(node)
        finally:
            self._class_stack.pop()

    # -- comparisons: D005 ---------------------------------------------------
    def _time_like(self, node: ast.expr) -> Optional[str]:
        """The terminal name of ``node`` if it reads as simulated time."""
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return None
        return name if _TIME_NAME.search(name) else None

    def visit_Compare(self, node: ast.Compare) -> None:
        comparands = [node.left, *node.comparators]
        ops_eq = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
        if ops_eq:
            skip = any(isinstance(c, ast.Constant)
                       and (c.value is None or isinstance(c.value, str))
                       for c in comparands)
            if not skip:
                for comparand in comparands:
                    name = self._time_like(comparand)
                    if name is not None:
                        self._flag(
                            node, "D005",
                            f"float equality on simulated time "
                            f"('{name}'); use ordering comparisons or an "
                            f"explicit tolerance")
                        break
        self.generic_visit(node)


# -- driver ------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one source text; returns surviving (un-pragma'd) violations."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, (exc.offset or 0),
                          "E999", f"syntax error: {exc.msg}")]
    visitor = _RuleVisitor(path)
    visitor.visit(tree)
    return filter_pragmas(visitor.violations, source)


def _iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        else:
            yield path


def lint_paths(paths: Sequence[Union[str, Path]]) -> List[Violation]:
    """Lint files and directory trees; directories are walked for *.py."""
    violations: List[Violation] = []
    for file_path in _iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, str(file_path)))
    return violations


def rules_table() -> str:
    """The D001–D007 rule table as rendered by ``--list-rules``."""
    lines = []
    for rule in RULES.values():
        lines.append(f"{rule.code}  {rule.title}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also reachable as ``heron-sim lint``)."""
    parser = argparse.ArgumentParser(
        prog="heron-sim lint",
        description="Determinism lint for the simulator's correctness "
                    "contract (rules D001-D007).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        print(rules_table())
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
