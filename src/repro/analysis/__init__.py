"""Correctness tooling: lint, sanitizer, and the tie-race detector.

Every figure this reproduction regenerates rests on one contract: the
discrete-event simulator is *bit-for-bit deterministic*. The parallel
sweep runner pins "serial == pooled" and the checkpoint tests pin
"failure run == clean run" — both only hold while three rules do:

1. all randomness flows through seeded
   :class:`~repro.simulation.rng.RngStream` objects (never the global
   ``random`` module, never ``os.urandom``);
2. all time is simulated time (:attr:`Simulator.now`), never the wall
   clock;
3. no observable behaviour depends on hash/tie order (set iteration,
   equal-timestamp event races).

This package enforces that contract several ways:

* :mod:`repro.analysis.lint` — a static AST pass (``heron-sim lint``,
  ``scripts/lint.py``) with repo-specific rules D001–D007 that catches
  wall-clock leaks, unseeded randomness, nondeterministic iteration
  feeding the scheduler, mutable default arguments on components,
  float equality on simulated time, stateful components without a
  ``key_groups`` declaration, and unsorted dict iteration inside
  checkpoint snapshots (shared rule/pragma plumbing lives in
  :mod:`repro.analysis.rules`);
* :mod:`repro.analysis.sanitize` — an opt-in instrumented kernel mode
  (``REPRO_SANITIZE=1`` or ``Simulator(sanitize=True)``): it verifies
  heap/clock invariants after every pop, stamps and checks per-channel
  FIFO sequence numbers through the Stream Manager, asserts checkpoint
  barrier alignment, and probes simultaneity hazards by state-digest
  comparison across tie-order permutations;
* :mod:`repro.analysis.races` — the precise follow-up to that
  wholesale probe (``heron-sim races``): a causal tracer records the
  happens-before edges the engine actually guarantees, a static effect
  analysis (:mod:`repro.analysis.effects`) classifies every handler's
  state footprint, and causally-unordered tied arrivals whose
  footprints fail to commute are reported with source locations (rule
  R001) — optionally *confirmed* by the DPOR-lite schedule explorer,
  which replays the minimal reordering and diffs state digests.
"""

from repro.analysis.effects import (Conflict, EffectIndex, FieldEffect,
                                    conflicts, merge_footprints)
from repro.analysis.lint import lint_paths, lint_source, rules_table
from repro.analysis.races import (CausalTracer, ExplorationResult,
                                  RaceFinding, RaceReport, attach_tracer,
                                  explore, run_races)
from repro.analysis.rules import LintRule, Violation
from repro.analysis.sanitize import (ChannelFifoChecker, KernelSanitizer,
                                     SanitizerViolation, TieProbeResult,
                                     run_tie_probe)

__all__ = [
    "CausalTracer",
    "ChannelFifoChecker",
    "Conflict",
    "EffectIndex",
    "ExplorationResult",
    "FieldEffect",
    "KernelSanitizer",
    "LintRule",
    "RaceFinding",
    "RaceReport",
    "SanitizerViolation",
    "TieProbeResult",
    "Violation",
    "attach_tracer",
    "conflicts",
    "explore",
    "lint_paths",
    "lint_source",
    "merge_footprints",
    "rules_table",
    "run_races",
    "run_tie_probe",
]
