"""Correctness tooling: the determinism lint and the simulation sanitizer.

Every figure this reproduction regenerates rests on one contract: the
discrete-event simulator is *bit-for-bit deterministic*. The parallel
sweep runner pins "serial == pooled" and the checkpoint tests pin
"failure run == clean run" — both only hold while three rules do:

1. all randomness flows through seeded
   :class:`~repro.simulation.rng.RngStream` objects (never the global
   ``random`` module, never ``os.urandom``);
2. all time is simulated time (:attr:`Simulator.now`), never the wall
   clock;
3. no observable behaviour depends on hash/tie order (set iteration,
   equal-timestamp event races).

This package enforces that contract twice over:

* :mod:`repro.analysis.lint` — a static AST pass (``heron-sim lint``,
  ``scripts/lint.py``) with repo-specific rules D001–D005 that catches
  wall-clock leaks, unseeded randomness, nondeterministic iteration
  feeding the scheduler, mutable default arguments on components, and
  float equality on simulated time;
* :mod:`repro.analysis.sanitize` — an opt-in instrumented kernel mode
  (``REPRO_SANITIZE=1`` or ``Simulator(sanitize=True)``), the race
  detector analogue for the event kernel: it verifies heap/clock
  invariants after every pop, stamps and checks per-channel FIFO
  sequence numbers through the Stream Manager, asserts checkpoint
  barrier alignment, and probes simultaneity hazards by state-digest
  comparison across tie-order permutations.
"""

from repro.analysis.lint import (LintRule, Violation, lint_paths,
                                 lint_source, rules_table)
from repro.analysis.sanitize import (ChannelFifoChecker, KernelSanitizer,
                                     SanitizerViolation, TieProbeResult,
                                     run_tie_probe)

__all__ = [
    "ChannelFifoChecker",
    "KernelSanitizer",
    "LintRule",
    "SanitizerViolation",
    "TieProbeResult",
    "Violation",
    "lint_paths",
    "lint_source",
    "rules_table",
    "run_tie_probe",
]
