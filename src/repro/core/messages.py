"""Runtime messages exchanged between Heron processes (actors).

These are the in-simulation representations of the wire messages in
:mod:`repro.serialization.messages`: tuple payloads ride as Python lists
for simulation speed, while (de)serialization CPU cost is charged by the
Stream Manager according to the cost model (see DESIGN.md §5).

``InstanceKey`` identifies a task as ``(component, task_id)`` — the hot
routing maps key on these tuples rather than on instance-id strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

InstanceKey = Tuple[str, int]

#: Exact-mode anchor: (root tuple id, origin spout instance key).
Anchor = Tuple[int, InstanceKey]


@dataclass
class DataBatch:
    """A batch of data tuples between an instance and a Stream Manager.

    ``count`` is the number of simulated tuples represented; ``values``
    carries up to ``count`` concrete value-lists (all of them in
    full-fidelity runs, a sample in performance runs).

    ``emit_time_sum`` is the sum of spout-emit timestamps over all
    ``count`` tuples; ack latency is measured against its mean, which is
    exact for an unmerged batch and a weighted average after the tuple
    cache merges batches.
    """

    dest: Optional[InstanceKey]
    source_component: str
    stream: str
    values: List[Any]
    count: int
    origin: InstanceKey
    emit_time_sum: float
    tuple_ids: List[int] = field(default_factory=list)
    anchors: List[List[Anchor]] = field(default_factory=list)
    #: Emitting task id — with ``source_component`` it names the channel a
    #: batch arrived on, which barrier alignment needs (checkpointing).
    source_task: int = -1
    #: Restore epoch the batch belongs to (see ``repro.checkpoint``).
    epoch: int = 0
    #: Per-channel FIFO sequence number, stamped by the origin Stream
    #: Manager in sanitize mode only (see ``repro.analysis.sanitize``);
    #: -1 means unstamped.
    sani_seq: int = -1

    def reset(self) -> None:
        """Scrub for memory-pool reuse."""
        self.dest = None
        self.source_component = ""
        self.stream = ""
        self.values = []
        self.count = 0
        self.origin = ("", -1)
        self.emit_time_sum = 0.0
        self.tuple_ids = []
        self.anchors = []
        self.source_task = -1
        self.epoch = 0
        self.sani_seq = -1


@dataclass
class InstanceBatches:
    """What one instance hands its local SM after a next_batch/execute
    call: every per-stream batch it produced, plus ack bookkeeping."""

    source: InstanceKey
    batches: List[DataBatch]
    acks: List["AckCounted"] = field(default_factory=list)
    xor_updates: List["XorUpdate"] = field(default_factory=list)
    epoch: int = 0


@dataclass
class RemoteDelivery:
    """SM → SM transfer: all cached batches bound for one remote
    container, shipped as a single framed message per drain."""

    from_container: int
    batches: List[DataBatch]
    acks: List["AckCounted"] = field(default_factory=list)
    xor_updates: List["XorUpdate"] = field(default_factory=list)
    epoch: int = 0


@dataclass
class AckCounted:
    """Counted-mode ack: ``count`` tuples of ``origin`` finished their
    first hop; ``emit_time_sum`` supports latency accounting."""

    origin: InstanceKey
    count: int
    emit_time_sum: float
    failed: bool = False


@dataclass
class XorUpdate:
    """Exact-mode ack-tree update: XOR ``value`` into ``root``'s entry
    at the origin spout's Stream Manager. ``fail=True`` instead fails the
    whole tree immediately (a bolt called ``collector.fail``)."""

    root: int
    origin: InstanceKey
    value: int
    fail: bool = False


@dataclass
class AckComplete:
    """SM → spout instance: one root tuple finished (or failed)."""

    tuple_ids: List[int]
    count: int
    emit_time_sum: float
    failed: bool = False


@dataclass
class EmitTick:
    """Self-message driving a spout's emit loop."""


@dataclass
class PauseSpouts:
    """Backpressure start: pause local spouts (SM → instances, TM-wide).

    ``master_epoch`` fences topology-wide pauses from the TM
    (``initiator_container == 0``): a Stream Manager drops the message
    when the epoch is older than the newest master it has heard from.
    Peer-initiated pauses and SM → instance forwards leave it 0.
    """

    initiator_container: int
    master_epoch: int = 0


@dataclass
class ResumeSpouts:
    """Backpressure end. ``master_epoch`` as in :class:`PauseSpouts`."""

    initiator_container: int
    master_epoch: int = 0


@dataclass
class ReliableData:
    """SM → SM: one sequenced payload on a reliable channel.

    ``payload`` is a regular inter-container message (RemoteDelivery,
    RemoteBarriers, Pause/ResumeSpouts). ``link`` is the sender's channel
    incarnation, ``(sm incarnation, reset count)`` compared
    lexicographically: receivers restart their expected sequence when a
    newer link appears (peer relaunch or plan change) and ignore
    stragglers from older ones, so a relaunch is never mistaken for a
    sequence rewind.
    """

    from_container: int
    link: Tuple[int, int]
    seq: int
    payload: Any


@dataclass
class ReliableAck:
    """SM → SM: cumulative ack — everything up to ``seq`` arrived."""

    from_container: int
    link: Tuple[int, int]
    seq: int


@dataclass
class RegisterStmgr:
    """SM → TM: container registration (carries the SM actor ref)."""

    container_id: int
    stmgr: Any


@dataclass
class NewPhysicalPlan:
    """TM → SMs: the physical plan plus the SM directory.

    ``master_epoch`` is the sending TM's fencing token; Stream Managers
    reject plans from a master older than the newest one seen.
    """

    pplan: Any  # PhysicalPlan
    stmgr_directory: dict  # container_id -> SM actor
    master_epoch: int = 0


@dataclass
class ActivateTopology:
    """Resume spout emission topology-wide (``heron activate``)."""


@dataclass
class DeactivateTopology:
    """Pause spout emission topology-wide (``heron deactivate``)."""


@dataclass
class MetricSample:
    """Instance/SM → Metrics Manager: one periodic metrics report."""

    source: str
    metrics: dict


@dataclass
class MetricsSummary:
    """Metrics Manager → TM: per-container aggregate.

    ``components`` breaks the same counters down per component (summed
    over the container's local instances of each one, plus an
    ``instances`` reporting count) — the signal feed of the autoscaler
    (``repro.autoscale``) and of measured-traffic repacking.
    """

    container_id: int
    metrics: dict
    components: dict = field(default_factory=dict)
