"""The Metrics Manager: per-container metrics collection.

"The Metrics Manager collects several metrics about the status of the
processes in a container" (Section II). Every local process sends it
periodic :class:`~repro.core.messages.MetricSample` reports; it keeps the
latest value per source, aggregates container-wide sums, and forwards a
:class:`~repro.core.messages.MetricsSummary` to the Topology Master at a
fixed cadence.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.messages import MetricSample, MetricsSummary
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel
from repro.simulation.events import Simulator


class _ForwardTick:
    """Self-timer: push the container summary to the TM."""


class MetricsManager(Actor):
    """One per container; receives samples, forwards summaries."""

    def __init__(self, sim: Simulator, container_id: int, *,
                 location: Location, network, ledger: Optional[CostLedger],
                 costs: CostModel,
                 resolve_tmaster: Callable[[], Optional[Actor]],
                 forward_interval: float = 5.0) -> None:
        super().__init__(sim, f"metricsmgr-{container_id}", location,
                         network=network, ledger=ledger,
                         group="metrics-manager")
        self.container_id = container_id
        self.costs = costs
        self.resolve_tmaster = resolve_tmaster
        self.latest: Dict[str, dict] = {}
        self.samples_received = 0
        self.summaries_sent = 0
        self.every(forward_interval, lambda: self.deliver(_ForwardTick()))

    def on_message(self, message: Any) -> None:
        if isinstance(message, MetricSample):
            self.charge(self.costs.metrics_per_sample)
            self.latest[message.source] = message.metrics
            self.samples_received += 1
        elif isinstance(message, _ForwardTick):
            self._forward()

    def _forward(self) -> None:
        if not self.latest:
            return
        tmaster = self.resolve_tmaster()
        if tmaster is None or not tmaster.alive:
            return
        self.charge(self.costs.metrics_per_sample * len(self.latest))
        self.send(tmaster, MetricsSummary(self.container_id,
                                          self.container_totals(),
                                          self.component_metrics()))
        self.summaries_sent += 1

    def container_totals(self) -> Dict[str, float]:
        """Sum each metric over every reporting process."""
        totals: Dict[str, float] = {}
        for metrics in self.latest.values():
            for key, value in metrics.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0.0) + value
        return totals

    def component_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-component sums over this container's local instances.

        Instance sources report as ``component[task]``; non-instance
        sources (no bracket) are left out. Each row carries an extra
        ``instances`` count so consumers can compute per-instance means
        (e.g. mean queue depth, the autoscaler's primary signal).
        """
        per_component: Dict[str, Dict[str, float]] = {}
        for source, metrics in self.latest.items():
            bracket = source.find("[")
            if bracket <= 0 or not source.endswith("]"):
                continue
            component = source[:bracket]
            row = per_component.setdefault(component, {"instances": 0.0})
            row["instances"] += 1.0
            for key, value in metrics.items():
                if isinstance(value, (int, float)):
                    row[key] = row.get(key, 0.0) + value
        return per_component
