"""The Topology Master: per-topology lifecycle coordinator.

"The first container runs the Topology Master which is the process
responsible for managing the topology throughout its existence"
(Section II). Concretely it:

* advertises its location through the State Manager as an **ephemeral**
  node (so every Stream Manager learns immediately if it dies —
  Section IV-C);
* collects Stream Manager registrations and, once every container of the
  physical plan has registered, broadcasts the plan plus the SM
  directory to all SMs (and rebroadcasts whenever a container
  re-registers after recovery);
* receives per-container metrics summaries from the Metrics Managers;
* fans out activate/deactivate commands.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.messages import (ActivateTopology, DeactivateTopology,
                                 MetricsSummary, NewPhysicalPlan,
                                 PauseSpouts, RegisterStmgr, ResumeSpouts)
from repro.serialization.messages import Heartbeat
from repro.core.pplan import PhysicalPlan
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel
from repro.simulation.events import Simulator
from repro.statemgr.base import StateManager, StateSession


class TopologyMaster(Actor):
    """The topology's control-plane brain (container 0)."""

    def __init__(self, sim: Simulator, *, location: Location, network,
                 ledger: Optional[CostLedger], costs: CostModel,
                 pplan: PhysicalPlan, statemgr: StateManager,
                 tmaster_path: str) -> None:
        super().__init__(sim, f"tmaster-{pplan.topology.name}", location,
                         network=network, ledger=ledger,
                         group="topology-master")
        self.costs = costs
        self.pplan = pplan
        self.statemgr = statemgr
        self.tmaster_path = tmaster_path
        self.registrations: Dict[int, Actor] = {}
        self.container_metrics: Dict[int, dict] = {}
        self.last_heartbeat: Dict[str, float] = {}
        self.plan_broadcasts = 0
        self.activated = True
        self.session: Optional[StateSession] = None

    def start(self) -> None:
        """Advertise our location via an ephemeral node (dies with us).

        Called by the runtime *after* it has recorded this TM as current,
        so that watch callbacks triggered by the node creation resolve to
        this instance.
        """
        statemgr, tmaster_path = self.statemgr, self.tmaster_path
        self.session = statemgr.session()
        if statemgr.exists(tmaster_path):
            # A previous TM's node lingering would be a split-brain bug.
            statemgr.delete(tmaster_path)
        self.session.create_ephemeral(tmaster_path,
                                      self.name.encode("utf-8"))

    # -- message handling ----------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, RegisterStmgr):
            self._handle_register(message)
        elif isinstance(message, MetricsSummary):
            self.charge(self.costs.tmaster_per_event)
            self.container_metrics[message.container_id] = message.metrics
        elif isinstance(message, Heartbeat):
            self.charge(self.costs.tmaster_per_event)
            self.last_heartbeat[message.sender] = message.time
        elif isinstance(message, (ActivateTopology, DeactivateTopology)):
            self._handle_activation(
                isinstance(message, ActivateTopology))

    def _handle_register(self, message: RegisterStmgr) -> None:
        self.charge(self.costs.tmaster_per_event)
        self.registrations[message.container_id] = message.stmgr
        expected = set(self.pplan.container_ids)
        registered = {cid for cid, sm in self.registrations.items()
                      if sm.alive}
        if expected <= registered:
            self._broadcast_plan()

    def _broadcast_plan(self) -> None:
        self.plan_broadcasts += 1
        directory = {cid: sm for cid, sm in self.registrations.items()
                     if sm.alive}
        self.charge(self.costs.tmaster_per_event * len(directory))
        for sm in directory.values():
            self.send(sm, NewPhysicalPlan(self.pplan, directory))

    def _handle_activation(self, activate: bool) -> None:
        self.charge(self.costs.tmaster_per_event)
        self.activated = activate
        message_cls = ResumeSpouts if activate else PauseSpouts
        for sm in self.registrations.values():
            if sm.alive:
                self.send(sm, message_cls(0))

    def stale_stmgrs(self, max_age: float = 10.0) -> list:
        """SM names whose last heartbeat is older than ``max_age``
        (liveness monitoring; the scheduler owns the actual recovery)."""
        cutoff = self.sim.now - max_age
        return sorted(name for name, seen in self.last_heartbeat.items()
                      if seen < cutoff)

    # -- plan updates (topology scaling) ------------------------------------------
    def update_plan(self, pplan: PhysicalPlan) -> None:
        """Install a new physical plan and rebroadcast it.

        Called by the runtime after the Resource Manager's repack and the
        Scheduler's onUpdate have reshaped the containers. Registrations
        from removed containers are dropped; the broadcast reaches the
        surviving SMs, and relaunched containers register on their own.
        """
        self.pplan = pplan
        valid = set(pplan.container_ids)
        self.registrations = {cid: sm for cid, sm in
                              self.registrations.items()
                              if cid in valid and sm.alive}
        if set(self.registrations) >= valid:
            self._broadcast_plan()

    # -- lifecycle ---------------------------------------------------------------
    def on_killed(self) -> None:
        # Session expiry deletes the ephemeral location node and fires the
        # SMs' watches — the failure-notification path of Section IV-C.
        if self.session is not None:
            self.session.expire()
