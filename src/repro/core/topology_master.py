"""The Topology Master: per-topology lifecycle coordinator.

"The first container runs the Topology Master which is the process
responsible for managing the topology throughout its existence"
(Section II). Concretely it:

* advertises its location through the State Manager as an **ephemeral**
  node (so every Stream Manager learns immediately if it dies —
  Section IV-C);
* collects Stream Manager registrations and, once every container of the
  physical plan has registered, broadcasts the plan plus the SM
  directory to all SMs (and rebroadcasts whenever a container
  re-registers after recovery);
* receives per-container metrics summaries from the Metrics Managers;
* fans out activate/deactivate commands.

Failover (DESIGN.md §14): the TM is recoverable. Before advertising, a
starting master claims the topology's **master epoch** — an optimistic-
version ``set`` on the ``masterepoch`` node, the fencing write: a stale
master's claim loses the version race and raises. Every control message
the TM sends (plan broadcasts, topology-wide pause/resume) is stamped
with its epoch so Stream Managers reject leftovers from a fenced
master. Activation state is persisted to the ``executionstate`` node so
a recovered master re-asserts a durable pause that died with its
predecessor.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos.policy import BackoffPolicy
from repro.common.config import Config
from repro.common.errors import StateError
from repro.core.messages import (ActivateTopology, DeactivateTopology,
                                 MetricsSummary, NewPhysicalPlan,
                                 PauseSpouts, RegisterStmgr, ResumeSpouts)
from repro.serialization.messages import Heartbeat
from repro.core.pplan import PhysicalPlan
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel
from repro.simulation.events import Simulator
from repro.simulation.rng import RngStream
from repro.statemgr.base import StateManager, StateSession


class _FailureCheck:
    """Self-timer: scan SM heartbeats for miss-window violations."""


class TopologyMaster(Actor):
    """The topology's control-plane brain (container 0)."""

    def __init__(self, sim: Simulator, *, location: Location, network,
                 ledger: Optional[CostLedger], costs: CostModel,
                 pplan: PhysicalPlan, statemgr: StateManager,
                 tmaster_path: str, epoch_path: Optional[str] = None,
                 execution_state_path: Optional[str] = None,
                 config: Optional[Config] = None,
                 request_relaunch: Optional[Callable[[int], None]] = None,
                 rng: Optional[RngStream] = None) -> None:
        super().__init__(sim, f"tmaster-{pplan.topology.name}", location,
                         network=network, ledger=ledger,
                         group="topology-master")
        self.costs = costs
        self.pplan = pplan
        self.statemgr = statemgr
        self.tmaster_path = tmaster_path
        self.epoch_path = epoch_path
        self.execution_state_path = execution_state_path
        #: Fencing token; claimed in :meth:`start` when an ``epoch_path``
        #: is configured, otherwise fixed at 1 (single-master setups).
        self.master_epoch = 0 if epoch_path is not None else 1
        self._epoch_claimed = epoch_path is None
        self.fenced_writes = 0
        self.first_broadcast_at: Optional[float] = None
        self.registrations: Dict[int, Actor] = {}
        self.container_metrics: Dict[int, dict] = {}
        #: Per-container, per-component metric sums (autoscaler feed).
        self.component_metrics: Dict[int, dict] = {}
        self.last_heartbeat: Dict[str, float] = {}
        self.plan_broadcasts = 0
        self.activated = True
        self.session: Optional[StateSession] = None

        # --- failure detection (repro.chaos) -------------------------------
        self.request_relaunch = request_relaunch
        self.rng = rng
        if config is not None:
            self.heartbeat_interval = \
                float(config.get(Keys.HEARTBEAT_INTERVAL_SECS))
            self.detection_enabled = \
                bool(config.get(Keys.FAILURE_DETECTION_ENABLED))
            self.miss_threshold = int(config.get(Keys.FAILURE_MISS_THRESHOLD))
            self.statemgr_attempts = \
                int(config.get(Keys.STATEMGR_RETRY_ATTEMPTS))
        else:
            self.heartbeat_interval = 3.0
            self.detection_enabled = False
            self.miss_threshold = 3
            self.statemgr_attempts = 5
        self._stmgr_cids: Dict[str, int] = {}
        self._backoff = BackoffPolicy(base=0.1, cap=2.0)
        self.suspected_failures = 0
        self.relaunches_requested = 0
        self.statemgr_retries = 0
        if self.detection_enabled and request_relaunch is not None:
            self.every(self.heartbeat_interval,
                       lambda: self.deliver(_FailureCheck()))

    def start(self) -> None:
        """Claim the master epoch, then advertise our location.

        Called by the runtime *after* it has recorded this TM as current,
        so that watch callbacks triggered by the node creation resolve to
        this instance.
        """
        self.session = self.statemgr.session()
        self._advertise(0)

    def _advertise(self, attempt: int) -> None:
        """Bootstrap through the State Manager, retrying a bounded number
        of times with backoff if it is flaking — a transient statemgr
        outage must not kill the topology. Three steps, each idempotent
        across retries: claim the next master epoch (the fencing write),
        reload durable activation state, and create the ephemeral
        location node. The create fails while a dead predecessor's
        session still holds the node — ZooKeeper semantics — so this
        also waits out session expiry instead of force-deleting, which
        would invite split-brain.
        """
        if not self.alive or self.session is None or not self.session.alive:
            return
        try:
            if not self._epoch_claimed:
                epoch, version = self._read_epoch()
                self._write_epoch(epoch + 1, version)
            self._load_activation()
            self.session.create_ephemeral(self.tmaster_path,
                                          self.name.encode("utf-8"))
        except StateError:
            if attempt >= self.statemgr_attempts:
                raise
            self.statemgr_retries += 1
            delay = self._backoff.delay(attempt, self.rng)
            self.sim.schedule(delay, self._advertise, attempt + 1)

    # -- master epoch (fencing) ----------------------------------------------
    def _read_epoch(self) -> "tuple[int, int]":
        """Current ``(epoch, node version)`` — the read half of the
        read-modify-write claim."""
        assert self.epoch_path is not None
        if not self.statemgr.exists(self.epoch_path):
            self.statemgr.create(self.epoch_path, b"0")
        data, version = self.statemgr.get(self.epoch_path)
        return int(data.decode("utf-8")), version

    def _write_epoch(self, epoch: int, expected_version: int) -> None:
        """Claim ``epoch`` iff nobody claimed since our read.

        This is THE fencing write: ``set`` with ``expected_version``
        loses (raises ``StateError``) when a newer master raced us —
        counted in ``fenced_writes`` for observability.
        """
        assert self.epoch_path is not None
        try:
            self.statemgr.set(self.epoch_path, str(epoch).encode("utf-8"),
                              expected_version=expected_version)
        except StateError:
            self.fenced_writes += 1
            raise
        self.master_epoch = epoch
        self._epoch_claimed = True

    def _load_activation(self) -> None:
        """Adopt the durable RUNNING/PAUSED record (TM rebuild source #1:
        a pause must survive the master that issued it)."""
        path = self.execution_state_path
        if path is None or not self.statemgr.exists(path):
            return
        self.activated = self.statemgr.get_data(path) != b"PAUSED"

    def _persist_activation(self, attempt: int = 0) -> None:
        """Durably record RUNNING/PAUSED, fenced by the master epoch: a
        stale master must not clobber its successor's record."""
        path = self.execution_state_path
        if path is None or not self.alive:
            return
        try:
            if self.epoch_path is not None and self.statemgr.exists(
                    self.epoch_path):
                current = int(self.statemgr.get_data(
                    self.epoch_path).decode("utf-8"))
                if current != self.master_epoch:
                    self.fenced_writes += 1
                    return
            self.statemgr.put(
                path, b"RUNNING" if self.activated else b"PAUSED")
        except StateError:
            if attempt >= self.statemgr_attempts:
                return  # activation is also re-asserted on broadcast
            self.statemgr_retries += 1
            delay = self._backoff.delay(attempt, self.rng)
            self.sim.schedule(delay, self._persist_activation, attempt + 1)

    # -- message handling ----------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, RegisterStmgr):
            self._handle_register(message)
        elif isinstance(message, MetricsSummary):
            self.charge(self.costs.tmaster_per_event)
            self.container_metrics[message.container_id] = message.metrics
            self.component_metrics[message.container_id] = \
                message.components
        elif isinstance(message, Heartbeat):
            self.charge(self.costs.tmaster_per_event)
            self.last_heartbeat[message.sender] = message.time
        elif isinstance(message, (ActivateTopology, DeactivateTopology)):
            self._handle_activation(
                isinstance(message, ActivateTopology))
        elif isinstance(message, _FailureCheck):
            self._check_failures()

    def _handle_register(self, message: RegisterStmgr) -> None:
        self.charge(self.costs.tmaster_per_event)
        self.registrations[message.container_id] = message.stmgr
        name = getattr(message.stmgr, "name", None)
        if name is not None:
            self._stmgr_cids[name] = message.container_id
            # Seed liveness at registration: an SM silenced by a
            # partition before its first heartbeat is still detectable.
            self.last_heartbeat.setdefault(name, self.sim.now)
        expected = set(self.pplan.container_ids)
        registered = {cid for cid, sm in self.registrations.items()
                      if sm.alive}
        if expected <= registered:
            self._broadcast_plan()

    def _broadcast_plan(self) -> None:
        self.plan_broadcasts += 1
        if self.first_broadcast_at is None:
            self.first_broadcast_at = self.sim.now
        directory = {cid: sm for cid, sm in self.registrations.items()
                     if sm.alive}
        self.charge(self.costs.tmaster_per_event * len(directory))
        for sm in directory.values():
            self.send(sm, NewPhysicalPlan(self.pplan, directory,
                                          master_epoch=self.master_epoch))
        if not self.activated:
            # Re-assert a durable pause: SMs expire a dead master's pause
            # when its location node vanishes, so a recovered master must
            # restate it (idempotent for SMs already paused).
            for sm in directory.values():
                self.send(sm, PauseSpouts(0, master_epoch=self.master_epoch))

    def _handle_activation(self, activate: bool) -> None:
        self.charge(self.costs.tmaster_per_event)
        self.activated = activate
        self._persist_activation()
        message_cls = ResumeSpouts if activate else PauseSpouts
        for sm in self.registrations.values():
            if sm.alive:
                self.send(sm, message_cls(0, master_epoch=self.master_epoch))

    def component_totals(self) -> Dict[str, Dict[str, float]]:
        """Topology-wide per-component metric sums across containers —
        what the ScalingController (``repro.autoscale``) reads each
        tick. Also the measured-traffic source for repacking."""
        totals: Dict[str, Dict[str, float]] = {}
        for rows in self.component_metrics.values():
            for component, metrics in rows.items():
                row = totals.setdefault(component, {})
                for key, value in metrics.items():
                    row[key] = row.get(key, 0.0) + value
        return totals

    def stale_stmgrs(self, max_age: float = 10.0) -> list:
        """SM names whose last heartbeat is older than ``max_age``
        (liveness monitoring; the scheduler owns the actual recovery)."""
        cutoff = self.sim.now - max_age
        return sorted(name for name, seen in self.last_heartbeat.items()
                      if seen < cutoff)

    def _check_failures(self) -> None:
        """Active failure detection: an SM silent past the miss window is
        declared dead — drop it from the directory, rebroadcast the plan
        to survivors, and ask the scheduler to relaunch its container.

        This catches *silent* failures (partitions, hung processes) that
        never trip the cluster's hard-kill recovery path; an SM that is
        merely slow re-registers after its relaunch and rejoins.
        """
        if not self.detection_enabled or self.request_relaunch is None:
            return
        window = self.miss_threshold * self.heartbeat_interval
        cutoff = self.sim.now - window
        for name in sorted(self.last_heartbeat):
            if self.last_heartbeat[name] >= cutoff:
                continue
            cid = self._stmgr_cids.get(name)
            stmgr = self.registrations.get(cid) if cid is not None else None
            del self.last_heartbeat[name]
            self._stmgr_cids.pop(name, None)
            if cid is None or stmgr is None:
                continue  # already replaced through another path
            self.charge(self.costs.tmaster_per_event)
            self.suspected_failures += 1
            del self.registrations[cid]
            self._broadcast_plan()
            self.relaunches_requested += 1
            self.request_relaunch(cid)

    # -- plan updates (topology scaling) ------------------------------------------
    def update_plan(self, pplan: PhysicalPlan) -> None:
        """Install a new physical plan and rebroadcast it.

        Called by the runtime after the Resource Manager's repack and the
        Scheduler's onUpdate have reshaped the containers. Registrations
        from removed containers are dropped; the broadcast reaches the
        surviving SMs, and relaunched containers register on their own.
        """
        self.pplan = pplan
        valid = set(pplan.container_ids)
        self.registrations = {cid: sm for cid, sm in
                              self.registrations.items()
                              if cid in valid and sm.alive}
        # Metrics of removed/bounced containers are stale the moment the
        # new plan lands; keeping them would skew autoscaler signals.
        self.container_metrics = {cid: row for cid, row in
                                  self.container_metrics.items()
                                  if cid in valid}
        self.component_metrics = {cid: row for cid, row in
                                  self.component_metrics.items()
                                  if cid in valid}
        if set(self.registrations) >= valid:
            self._broadcast_plan()

    # -- lifecycle ---------------------------------------------------------------
    def on_killed(self) -> None:
        # Session expiry deletes the ephemeral location node and fires the
        # SMs' watches — the failure-notification path of Section IV-C.
        if self.session is not None:
            self.session.expire()
