"""The Heron Instance: one spout or bolt task in its own process.

"The remaining containers each run a Stream Manager, a Metrics Manager
and a set of Heron Instances which are essentially spouts or bolts that
run on their own JVM" (Section II). Process-per-instance is the resource
isolation story of Section III-A; here each instance is its own actor
with its own queue and its own charged CPU.

Spouts run a self-paced emit loop throttled by three gates:

* **activation** — spouts only emit between topology activate/deactivate
  and once the physical plan has arrived;
* **max_spout_pending** — with acking on, emission stops while
  ``pending >= max_spout_pending`` and resumes on acks (Section V-B);
* **backpressure** — Stream Managers pause/resume spouts when queues
  cross the configured watermarks.

Bolts process :class:`~repro.core.messages.DataBatch` deliveries, run
user code, and (with acking) emit ack traffic back toward the spouts.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.api.component import Bolt, ComponentContext, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.tuples import Batch, Tuple
from repro.checkpoint.messages import (CheckpointBarrier, InstanceBarrier,
                                       InstanceSnapshot, RestoreAck,
                                       RestoreInstance)
from repro.checkpoint.snapshot import decode_state, encode_state
from repro.common.config import Config
from repro.core.acking import CountedTracker
from repro.core.messages import (AckComplete, AckCounted, DataBatch,
                                 EmitTick, InstanceBatches, InstanceKey,
                                 MetricSample, PauseSpouts, ResumeSpouts,
                                 XorUpdate)
from repro.metrics.stats import WeightedStats
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostCategory, CostModel
from repro.simulation.events import Simulator


class _StartInstance:
    """SM → instance: the physical plan is live; spouts may emit.

    Carries the instance's upstream task set (every task whose output can
    reach this instance) so bolts know how many barrier markers one
    checkpoint's alignment must collect.
    """

    def __init__(self,
                 upstream_tasks: Optional[FrozenSet[InstanceKey]] = None
                 ) -> None:
        self.upstream_tasks = upstream_tasks


class _StallCheck:
    """Self-timer: counted-mode ack-stall detection."""


class _MetricsTick:
    """Self-timer: report metrics to the Metrics Manager."""


class InstanceCollector:
    """Accumulates emissions/acks during one user-code invocation."""

    def __init__(self, instance: "HeronInstance") -> None:
        self._instance = instance
        self.emitted: Dict[str, List[List[Any]]] = {}
        self.extra_counts: Dict[str, int] = {}
        self.current_anchors: List = []  # exact-mode auto-anchoring
        self.acked_tuples: List[Tuple] = []
        self.failed_tuples: List[Tuple] = []
        self.emitted_ids: Dict[str, List[int]] = {}
        self.emitted_anchors: Dict[str, List[List]] = {}

    def begin(self) -> None:
        """Reset accumulation for one user-code invocation."""
        self.emitted = {}
        self.extra_counts = {}
        self.current_anchors = []
        self.acked_tuples = []
        self.failed_tuples = []
        self.emitted_ids = {}
        self.emitted_anchors = {}

    # -- Collector protocol ------------------------------------------------
    def emit(self, values: List[Any], stream: str = "default",
             anchors: Optional[List[int]] = None) -> None:
        """Record one emitted tuple (assigning ids/anchors in exact mode)."""
        self.emitted.setdefault(stream, []).append(values)
        if self._instance.exact_acking:
            new_id = self._instance.next_tuple_id()
            self.emitted_ids.setdefault(stream, []).append(new_id)
            if self._instance.is_spout:
                anchor_list = [(new_id, self._instance.key)]
            else:
                # Tuples emitted during one execute() share the input's
                # anchor list by reference — nothing downstream mutates
                # anchor lists, so interning avoids a copy per tuple.
                anchor_list = self.current_anchors
            self.emitted_anchors.setdefault(stream, []).append(anchor_list)

    def emit_batch(self, values: List[List[Any]],
                   count: Optional[int] = None,
                   stream: str = "default") -> None:
        """Weighted emission (performance workloads). Under exact ack
        tracking only full-fidelity batches are allowed (each tuple needs
        its own id), and they fall back to per-tuple emits."""
        total = len(values) if count is None else count
        if self._instance.exact_acking:
            if total != len(values):
                raise RuntimeError(
                    "sampled emit_batch is not supported with exact ack "
                    "tracking; use counted tracking for sampled runs")
            for value in values:
                self.emit(value, stream)
            return
        if total < len(values):
            raise ValueError(
                f"count {total} < number of concrete values {len(values)}")
        self.emitted.setdefault(stream, []).extend(values)
        if total > len(values):
            self.extra_counts[stream] = \
                self.extra_counts.get(stream, 0) + (total - len(values))

    def ack(self, tup: Tuple) -> None:
        """Mark an input tuple successfully processed (exact mode)."""
        self.acked_tuples.append(tup)

    def fail(self, tup: Tuple) -> None:
        """Mark an input tuple failed (fails its whole tree in exact mode)."""
        self.failed_tuples.append(tup)

    def stream_count(self, stream: str) -> int:
        """Tuples emitted on one stream during this invocation."""
        return len(self.emitted.get(stream, [])) + \
            self.extra_counts.get(stream, 0)

    @property
    def total_emitted(self) -> int:
        total = sum(len(values) for values in self.emitted.values())
        return total + sum(self.extra_counts.values())


class HeronInstance(Actor):
    """The actor hosting one spout or bolt task."""

    def __init__(self, sim: Simulator, key: InstanceKey, *,
                 location: Location, network, ledger: Optional[CostLedger],
                 user_component, config: Config, costs: CostModel,
                 topology_name: str, parallelism: int,
                 spout_components: frozenset,
                 stream_manager: Optional[Actor] = None,
                 metrics_manager: Optional[Actor] = None,
                 instance_index: int = 0,
                 resolve_coordinator: Optional[
                     Callable[[], Optional[Actor]]] = None) -> None:
        component, task_id = key
        super().__init__(sim, f"{component}[{task_id}]", location,
                         network=network, ledger=ledger, group="instance")
        self.key = key
        self.component = component
        self.task_id = task_id
        self.costs = costs
        self.config = config
        self.topology_name = topology_name
        self.spout_components = spout_components
        self.stream_manager = stream_manager
        self.metrics_manager = metrics_manager

        # Each task runs its own copy of the user object (no shared state
        # between tasks, as with separate JVMs).
        self.user = copy.deepcopy(user_component)
        self.is_spout = isinstance(self.user, Spout)
        if not self.is_spout and not isinstance(self.user, Bolt):
            raise TypeError(f"{user_component!r} is neither Spout nor Bolt")

        # --- config snapshot ---------------------------------------------
        self.acking = bool(config.get(Keys.ACKING_ENABLED))
        self.exact_acking = self.acking and \
            config.get(Keys.ACK_TRACKING) == "exact"
        self.max_pending = int(config.get(Keys.MAX_SPOUT_PENDING))
        self.batch_size = int(config.get(Keys.BATCH_SIZE))
        self.message_timeout = float(config.get(Keys.MESSAGE_TIMEOUT_SECS))

        # --- state ----------------------------------------------------------
        self.collector = InstanceCollector(self)
        self.context = ComponentContext(topology_name, component, task_id,
                                        parallelism, config)
        self.context.now = lambda: self.sim.now  # type: ignore[method-assign]
        self.active = False          # physical plan not yet live
        self.paused_by_backpressure = False
        self.emit_loop_idle = True
        self.opened = False
        self._tuple_seq = 0
        self._id_base = (instance_index + 1) << 40
        self.tracker = CountedTracker(self.message_timeout)

        # --- checkpointing (repro.checkpoint) ------------------------------
        self.checkpointing = bool(config.get(Keys.CHECKPOINT_ENABLED))
        self.resolve_coordinator = resolve_coordinator
        self.epoch = 0
        self.upstream_tasks: FrozenSet[InstanceKey] = frozenset()
        self._aligning_id: Optional[int] = None      # barrier being aligned
        self._barrier_seen: set = set()              # channels already barriered
        self._barrier_buffer: List[DataBatch] = []   # post-barrier tuples
        self._epoch_buffer: List[DataBatch] = []     # next-epoch early arrivals
        self._completed_barrier_id = 0
        self.checkpoints_taken = 0
        self.restores_applied = 0

        # --- sanitize mode (repro.analysis.sanitize) -----------------------
        self._sanitizer = sim.sanitizer

        # --- counters (read by the metrics/harness layer) --------------------
        self.emitted_count = 0
        self.executed_count = 0
        self.acked_count = 0
        self.failed_count = 0
        self.latency = WeightedStats()
        self.backpressure_pauses = 0

        if self.is_spout and self.acking:
            self.every(self.message_timeout / 2,
                       lambda: self.deliver(_StallCheck()))

    # -- identity helpers -----------------------------------------------------
    def next_tuple_id(self) -> int:
        """A globally unique tuple id for exact ack tracking."""
        self._tuple_seq += 1
        return self._id_base | self._tuple_seq

    @property
    def pending(self) -> int:
        return self.tracker.pending

    # -- message handling -----------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, DataBatch):
            self._handle_data(message)
        elif isinstance(message, (AckComplete, AckCounted)):
            self._handle_ack(message)
        elif isinstance(message, EmitTick):
            self._emit_once()
        elif isinstance(message, _StartInstance):
            self._start(message.upstream_tasks)
        elif isinstance(message, CheckpointBarrier):
            self._handle_barrier(message)
        elif isinstance(message, RestoreInstance):
            self._handle_restore(message)
        elif isinstance(message, PauseSpouts):
            self._set_backpressure(True)
        elif isinstance(message, ResumeSpouts):
            self._set_backpressure(False)
        elif isinstance(message, _StallCheck):
            self._check_stall()
        elif isinstance(message, _MetricsTick):
            self._report_metrics()

    def user_handlers_for(self, message: Any) -> List[str]:
        """User-component methods whose state ``message`` can touch.

        The race detector (:mod:`repro.analysis.races`) resolves every
        delivery event through this table, which must mirror
        :meth:`on_message` dispatch: a ``DataBatch`` runs the execute
        path, an ``EmitTick`` the emit loop, acks the ack callbacks, and
        checkpoint traffic the snapshot/restore hooks. Engine-internal
        control messages (start, stall checks, metrics ticks,
        backpressure) touch no user state and resolve to ``[]``.
        """
        if isinstance(message, DataBatch):
            if self.is_spout:
                return []
            if self.exact_acking or type(self.user).execute_batch \
                    is Bolt.execute_batch:
                return ["execute"]
            return ["execute_batch"]
        if isinstance(message, (AckComplete, AckCounted)):
            if not self.is_spout:
                return []
            return ["fail"] if getattr(message, "failed", False) \
                else ["ack"]
        if isinstance(message, EmitTick):
            if not self.is_spout:
                return []
            if type(self.user).next_batch is Spout.next_batch:
                return ["next_tuple"]
            return ["next_batch"]
        if isinstance(message, CheckpointBarrier):
            return ["snapshot_state"] \
                if getattr(self.user, "stateful", False) else []
        if isinstance(message, RestoreInstance):
            return ["init_state"] \
                if getattr(self.user, "stateful", False) else []
        return []

    # -- lifecycle --------------------------------------------------------------
    def _start(self, upstream_tasks: Optional[
            FrozenSet[InstanceKey]] = None) -> None:
        if upstream_tasks is not None:
            self.upstream_tasks = upstream_tasks
        if not self.opened:
            self.opened = True
            if getattr(self.user, "stateful", False):
                self.user.init_state(None)
            if self.is_spout:
                self.user.open(self.context, self.collector)
            else:
                self.user.prepare(self.context, self.collector)
                tick = getattr(self.user, "tick_frequency", None)
                if tick:
                    self.every(tick, self._deliver_tick)
            self.every(float(self.config.get(
                Keys.METRICS_REPORT_INTERVAL_SECS)),
                lambda: self.deliver(_MetricsTick()))
        if self.is_spout and not self.active:
            self.active = True
            self._wake_emit_loop()

    def deactivate(self) -> None:
        """Stop the spout emit loop (topology deactivate)."""
        self.active = False

    def activate(self) -> None:
        """Resume the spout emit loop (topology activate)."""
        if self.opened and self.is_spout and not self.active:
            self.active = True
            self._wake_emit_loop()

    def on_killed(self) -> None:
        if self.opened:
            self.user.close()

    # -- spout emit loop ----------------------------------------------------------
    def _gate_open(self) -> bool:
        if not (self.active and not self.paused_by_backpressure):
            return False
        if self.acking and self.tracker.pending >= self.max_pending:
            return False
        return True

    def _emit_once(self) -> None:
        if not self._gate_open():
            self.emit_loop_idle = True
            return
        self.emit_loop_idle = False
        budget = self.batch_size
        if self.acking:
            budget = min(budget, self.max_pending - self.tracker.pending)
        self.collector.begin()
        self.user.next_batch(self.collector, budget)
        emitted = self.collector.total_emitted
        if emitted:
            self._flush_emissions(charge_spout=True)
            self.send(self, EmitTick())
        else:
            # Source idle (e.g., a rate-limited broker has no events yet):
            # back off instead of spinning, as a real spout's wait-strategy
            # does. 1ms keeps idle CPU negligible and batches healthy.
            self.charge(self.costs.instance_emit_per_tuple)
            self.send(self, EmitTick(), extra_delay=1e-3)

    def _wake_emit_loop(self) -> None:
        if self.emit_loop_idle and self._gate_open():
            self.emit_loop_idle = False
            self.send(self, EmitTick())

    def _set_backpressure(self, paused: bool) -> None:
        if paused and not self.paused_by_backpressure:
            self.backpressure_pauses += 1
        self.paused_by_backpressure = paused
        if not paused:
            self._wake_emit_loop()

    def _check_stall(self) -> None:
        failed = self.tracker.check_stalled(self.sim.now)
        if failed:
            self.failed_count += failed
            if self.is_spout:
                self.user.fail(0)
            self._wake_emit_loop()

    def _deliver_tick(self) -> None:
        """Engine-generated tick tuple (Bolt.tick_frequency)."""
        from repro.api.component import TICK_STREAM
        self.deliver(DataBatch(
            dest=self.key, source_component="__system", stream=TICK_STREAM,
            values=[[]], count=1, origin=self.key,
            emit_time_sum=self.sim.now, tuple_ids=[0], anchors=[[]],
            epoch=self.epoch))

    # -- bolt execution -------------------------------------------------------------
    def _handle_data(self, batch: DataBatch) -> None:
        if self.is_spout:
            return  # spouts have no data inputs
        if self._sanitizer is not None and batch.sani_seq != -1:
            # Transport FIFO: arrival order per (task, stream) channel
            # must match the origin SM's stamping order.
            self._sanitizer.fifo.observe(
                (batch.source_component, batch.source_task, batch.stream,
                 self.key), batch.sani_seq)
        if not self.opened:
            self._start()
        if self.checkpointing:
            if batch.epoch != self.epoch:
                if batch.epoch > self.epoch:
                    # Restore raced ahead of us; replay after RestoreInstance.
                    self._epoch_buffer.append(batch)
                return  # pre-rollback data: drop it
            if (self._aligning_id is not None
                    and (batch.source_component, batch.source_task)
                    in self._barrier_seen):
                # Post-barrier tuples on an already-barriered channel wait
                # until alignment completes (aligned-snapshot semantics).
                self._barrier_buffer.append(batch)
                return
        self._process_batch(batch)

    def _process_batch(self, batch: DataBatch) -> None:
        if self._sanitizer is not None and self.checkpointing:
            # Aligned-snapshot invariant: no batch from an
            # already-barriered channel may reach user code while the
            # alignment for that checkpoint is still in progress.
            channel = (batch.source_component, batch.source_task)
            self._sanitizer.check_alignment(
                instance_name=self.name,
                aligning=self._aligning_id is not None,
                channel=channel,
                barriered=channel in self._barrier_seen,
                checkpoint_id=self._aligning_id or 0)
        if batch.stream == "__tick":
            self.charge(self.costs.instance_execute_per_tuple)
            self.collector.begin()
            if self.exact_acking:
                self._execute_exact(batch)
            else:
                self.user.execute_batch(
                    Batch(values=batch.values, count=batch.count,
                          stream=batch.stream,
                          source_component=batch.source_component),
                    self.collector)
            # Ticks are engine-internal: not counted as executed tuples,
            # never acked; emissions they trigger flow normally.
            self.collector.acked_tuples = []
            self.collector.failed_tuples = []
            self._flush_emissions(charge_spout=False, input_batch=None)
            return
        count = batch.count
        fetch_like = getattr(self.user, "charges_category", None)
        category = fetch_like if fetch_like else CostCategory.USER
        self.charge(self.costs.instance_batch_overhead)
        self.charge(count * self.costs.instance_execute_per_tuple,
                    CostCategory.ENGINE)
        if self.user.user_cost_per_tuple:
            self.charge(count * self.user.user_cost_per_tuple, category)
        self.collector.begin()
        if self.exact_acking:
            self._execute_exact(batch)
        else:
            api_batch = Batch(values=batch.values, count=count,
                              stream=batch.stream,
                              source_component=batch.source_component)
            self.user.execute_batch(api_batch, self.collector)
        self.executed_count += count
        self._flush_emissions(charge_spout=False, input_batch=batch)

    def _execute_exact(self, batch: DataBatch) -> None:
        """Per-tuple execution with correct anchoring and auto-ack."""
        for index, values in enumerate(batch.values):
            tup = Tuple(values=values, stream=batch.stream,
                        source_component=batch.source_component,
                        tuple_id=batch.tuple_ids[index])
            self.collector.current_anchors = batch.anchors[index]
            self.user.execute(tup, self.collector)
            # BasicBolt semantics: auto-ack unless the user failed it.
            if not any(f.tuple_id == tup.tuple_id
                       for f in self.collector.failed_tuples):
                self.collector.acked_tuples.append(tup)
        self.collector.current_anchors = []

    # -- checkpoint barriers (repro.checkpoint) -----------------------------------
    def _handle_barrier(self, marker: CheckpointBarrier) -> None:
        if not self.checkpointing or marker.epoch != self.epoch:
            return
        if marker.checkpoint_id <= self._completed_barrier_id:
            return  # duplicate of a checkpoint we already passed
        if self.is_spout:
            # Coordinator-injected: snapshot right away and start the
            # barrier's journey through the data channels.
            self._complete_checkpoint(marker.checkpoint_id)
            return
        if not self.opened:
            self._start()
        if self._aligning_id is None \
                or marker.checkpoint_id > self._aligning_id:
            # A newer barrier supersedes a half-aligned older checkpoint
            # (the coordinator aborted it): release its buffered tuples
            # back into normal processing, then align on the new one.
            self._abort_alignment()
            self._aligning_id = marker.checkpoint_id
        elif marker.checkpoint_id < self._aligning_id:
            return  # straggler marker of an aborted checkpoint
        if marker.from_task is not None:
            self._barrier_seen.add(marker.from_task)
        if self._barrier_seen >= self.upstream_tasks:
            self._finish_alignment()

    def _abort_alignment(self) -> None:
        buffered, self._barrier_buffer = self._barrier_buffer, []
        self._barrier_seen = set()
        self._aligning_id = None
        for batch in buffered:
            self._process_batch(batch)

    def _finish_alignment(self) -> None:
        checkpoint_id = self._aligning_id
        self._aligning_id = None
        self._barrier_seen = set()
        assert checkpoint_id is not None
        self._complete_checkpoint(checkpoint_id)
        # Tuples held during alignment resume only now, so everything they
        # cause downstream follows the forwarded marker.
        buffered, self._barrier_buffer = self._barrier_buffer, []
        for batch in buffered:
            self._process_batch(batch)

    def _complete_checkpoint(self, checkpoint_id: int) -> None:
        self._completed_barrier_id = checkpoint_id
        blob: Optional[bytes] = None
        cost = self.costs.instance_snapshot_fixed
        if getattr(self.user, "stateful", False):
            blob = encode_state(self.user.snapshot_state())
            cost += len(blob) * self.costs.instance_snapshot_per_byte
        self.charge(cost)
        self.checkpoints_taken += 1
        coordinator = self.resolve_coordinator() \
            if self.resolve_coordinator else None
        if coordinator is not None:
            self.send(coordinator, InstanceSnapshot(
                checkpoint_id, self.epoch, self.key, blob))
        if self.stream_manager is not None:
            self.send(self.stream_manager, InstanceBarrier(
                checkpoint_id, self.epoch, self.key))

    def _handle_restore(self, message: RestoreInstance) -> None:
        if not self.opened:
            self._start()
        if message.epoch <= self.epoch:
            return  # duplicate restore
        self.epoch = message.epoch
        self.restores_applied += 1
        self._aligning_id = None
        self._barrier_seen = set()
        self._barrier_buffer = []
        self.tracker = CountedTracker(self.message_timeout)
        self.charge(self.costs.instance_restore_fixed)
        if getattr(self.user, "stateful", False):
            state = decode_state(message.state) \
                if message.state is not None else None
            self.user.init_state(state)
        coordinator = self.resolve_coordinator() \
            if self.resolve_coordinator else None
        if coordinator is not None:
            self.send(coordinator, RestoreAck(self.epoch, self.key))
        buffered, self._epoch_buffer = self._epoch_buffer, []
        for batch in buffered:
            if batch.epoch == self.epoch:
                self._process_batch(batch)
        if self.is_spout:
            self._wake_emit_loop()

    # -- emission flush ----------------------------------------------------------
    def _flush_emissions(self, charge_spout: bool,
                         input_batch: Optional[DataBatch] = None) -> None:
        collector = self.collector
        now = self.sim.now
        batches: List[DataBatch] = []
        total = 0
        if collector.extra_counts:
            streams = set(collector.emitted)
            streams.update(collector.extra_counts)
        else:
            streams = collector.emitted
        for stream in streams:
            values = collector.emitted.get(stream, [])
            count = len(values) + collector.extra_counts.get(stream, 0)
            if count == 0:
                continue
            total += count
            if self.is_spout:
                origin = self.key
                emit_time_sum = now * count
            else:
                origin = input_batch.origin if input_batch else self.key
                emit_time_sum = (input_batch.emit_time_sum if input_batch
                                 else now * count)
            batches.append(DataBatch(
                dest=None, source_component=self.component, stream=stream,
                values=values, count=count, origin=origin,
                emit_time_sum=emit_time_sum,
                tuple_ids=collector.emitted_ids.get(stream, []),
                anchors=collector.emitted_anchors.get(stream, []),
                source_task=self.task_id, epoch=self.epoch))
        acks: List[AckCounted] = []
        xor_updates: List[XorUpdate] = []
        if self.exact_acking:
            # Emissions extend the tuple trees; acks retire tree nodes.
            for stream, ids in collector.emitted_ids.items():
                anchor_lists = collector.emitted_anchors[stream]
                if self.is_spout:
                    continue  # spout roots are registered by the SM
                for new_id, anchor_list in zip(ids, anchor_lists):
                    for root, origin in anchor_list:
                        xor_updates.append(XorUpdate(root, origin, new_id))
            if input_batch is not None:
                for tup in collector.acked_tuples:
                    idx = batch_index(input_batch, tup.tuple_id)
                    for root, origin in input_batch.anchors[idx]:
                        xor_updates.append(
                            XorUpdate(root, origin, tup.tuple_id))
                for tup in collector.failed_tuples:
                    idx = batch_index(input_batch, tup.tuple_id)
                    for root, origin in input_batch.anchors[idx]:
                        xor_updates.append(
                            XorUpdate(root, origin, 0, fail=True))
        elif self.acking and input_batch is not None \
                and input_batch.source_component in self.spout_components:
            # Counted mode: first-hop completion acks the origin spout.
            acks.append(AckCounted(input_batch.origin, input_batch.count,
                                   input_batch.emit_time_sum))

        if total:
            self.emitted_count += total
            per_tuple = (self.costs.instance_serialize_per_tuple +
                         (self.costs.instance_emit_per_tuple
                          if self.is_spout else 0.0))
            self.charge(total * per_tuple)
            if charge_spout and self.user.user_cost_per_tuple:
                fetch_like = getattr(self.user, "charges_category", None)
                category = fetch_like if fetch_like else CostCategory.USER
                self.charge(total * self.user.user_cost_per_tuple, category)
            if self.is_spout:
                if self.acking:
                    self.tracker.emitted(total, now)
                self.charge(self.costs.instance_batch_overhead)
        if (batches or acks or xor_updates) and self.stream_manager:
            self.send(self.stream_manager,
                      InstanceBatches(self.key, batches, acks, xor_updates,
                                      epoch=self.epoch))

    # -- ack handling ---------------------------------------------------------------
    def _handle_ack(self, ack) -> None:
        if not self.is_spout:
            return
        count = ack.count
        self.charge(count * self.costs.instance_ack_per_tuple)
        accepted = self.tracker.acked(count, self.sim.now)
        if ack.failed:
            self.failed_count += accepted
            callback = self.user.fail
        else:
            self.acked_count += accepted
            callback = self.user.ack
            if count > 0:
                mean_emit = ack.emit_time_sum / count
                self.latency.add(self.sim.now - mean_emit, weight=count)
        if isinstance(ack, AckComplete):
            for tuple_id in ack.tuple_ids:
                callback(tuple_id)
        elif accepted:
            callback(0)
        self._wake_emit_loop()

    # -- metrics ------------------------------------------------------------------
    def _report_metrics(self) -> None:
        if self.metrics_manager is None:
            return
        self.charge(self.costs.metrics_per_sample)
        self.send(self.metrics_manager, MetricSample(
            source=self.name,
            metrics={
                "emitted": self.emitted_count,
                "executed": self.executed_count,
                "acked": self.acked_count,
                "failed": self.failed_count,
                # Instantaneous pending-queue depth: the load signal the
                # autoscaler (repro.autoscale) scales on.
                "queue_depth": self.inbox_len,
            }))


def batch_index(batch: DataBatch, tuple_id: int) -> int:
    """Locate a tuple id inside a batch (exact mode, small batches)."""
    return batch.tuple_ids.index(tuple_id)
