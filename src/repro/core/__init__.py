"""Heron's core runtime — the paper's primary contribution.

The modules here are the blue boxes of Figure 1:

* :class:`~repro.core.topology_master.TopologyMaster` — topology
  lifecycle, physical-plan distribution, TM-location advertisement;
* :class:`~repro.core.stream_manager.StreamManager` — the optimized
  communication layer (tuple cache, lazy deserialization, memory pools,
  ack routing, backpressure);
* :class:`~repro.core.instance.HeronInstance` — process-per-task
  execution of user spouts/bolts;
* :class:`~repro.core.metrics_manager.MetricsManager` — per-container
  metrics collection;
* :class:`~repro.core.heron.HeronCluster` — the facade wiring the
  pluggable Resource Manager / Scheduler / State Manager modules.
"""

from repro.core.acking import AckTracker, CountedTracker, RotatingMap
from repro.core.heron import HeronCluster, TopologyHandle
from repro.core.instance import HeronInstance
from repro.core.messages import DataBatch, InstanceKey
from repro.core.metrics_manager import MetricsManager
from repro.core.pplan import PhysicalPlan
from repro.core.stream_manager import StreamManager
from repro.core.topology_master import TopologyMaster

__all__ = [
    "AckTracker",
    "CountedTracker",
    "DataBatch",
    "HeronCluster",
    "HeronInstance",
    "InstanceKey",
    "MetricsManager",
    "PhysicalPlan",
    "RotatingMap",
    "StreamManager",
    "TopologyHandle",
    "TopologyMaster",
]
