"""XOR tuple-tree tracking (exact mode) and rotating timeout buckets.

Heron tracks tuple trees the same way Storm does: each *root* tuple gets
a registry entry; the ids of every tuple in its tree are XOR-ed into the
entry (once when the tuple is emitted, once when it is acked). When the
accumulated value returns to zero the tree is complete and the spout gets
its ack. A :class:`RotatingMap` with N buckets implements message
timeouts: entries untouched for a full rotation cycle are expired and the
spout gets a fail.

The tracker lives in the Stream Manager of the *origin* (spout-side)
container; downstream bolts send :class:`~repro.core.messages.XorUpdate`
messages that are routed back to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.messages import InstanceKey


@dataclass
class RootEntry:
    """One pending tuple tree."""

    root: int
    spout: InstanceKey
    emit_time: float
    xor_value: int = 0


class RotatingMap:
    """N-bucket rotating dictionary (the classic Storm timeout structure).

    New/updated entries go to the head bucket; :meth:`rotate` retires the
    tail bucket and returns its entries (these have been idle for at least
    ``buckets - 1`` rotations). With rotation interval ``timeout /
    (buckets - 1)``, an entry expires after at least ``timeout`` idle time.
    """

    def __init__(self, buckets: int = 3) -> None:
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        self._buckets: List[Dict[int, RootEntry]] = [
            {} for _ in range(buckets)]

    def put(self, key: int, entry: RootEntry) -> None:
        """Insert/replace an entry in the head (freshest) bucket."""
        self.remove(key)
        self._buckets[0][key] = entry

    def get(self, key: int) -> Optional[RootEntry]:
        """Look up an entry without touching its idle clock."""
        for bucket in self._buckets:
            entry = bucket.get(key)
            if entry is not None:
                return entry
        return None

    def touch(self, key: int) -> Optional[RootEntry]:
        """Fetch and move to the head bucket (resets the idle clock)."""
        for bucket in self._buckets:
            entry = bucket.pop(key, None)
            if entry is not None:
                self._buckets[0][key] = entry
                return entry
        return None

    def remove(self, key: int) -> Optional[RootEntry]:
        """Remove and return an entry (None if absent)."""
        for bucket in self._buckets:
            entry = bucket.pop(key, None)
            if entry is not None:
                return entry
        return None

    def rotate(self) -> List[RootEntry]:
        """Retire the oldest bucket; returns the expired entries."""
        expired = self._buckets.pop()
        self._buckets.insert(0, {})
        return list(expired.values())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)


class AckTracker:
    """Exact XOR tracking for the roots originated by one container.

    ``on_complete(entry)`` fires when a tree finishes; ``on_expire(entry)``
    when it times out. Updates for unknown roots (already completed or
    expired) are ignored, as in Storm/Heron.
    """

    def __init__(self, on_complete: Callable[[RootEntry], None],
                 on_expire: Callable[[RootEntry], None],
                 buckets: int = 3) -> None:
        self._map = RotatingMap(buckets)
        self._on_complete = on_complete
        self._on_expire = on_expire

    def register(self, root: int, spout: InstanceKey,
                 emit_time: float) -> None:
        """A spout emitted root tuple ``root``; its own id starts the XOR."""
        entry = RootEntry(root, spout, emit_time, xor_value=root)
        self._map.put(root, entry)

    def update(self, root: int, value: int) -> None:
        """XOR ``value`` into the tree (emission or ack of a tree tuple)."""
        entry = self._map.touch(root)
        if entry is None:
            return
        entry.xor_value ^= value
        if entry.xor_value == 0:
            self._map.remove(root)
            self._on_complete(entry)

    def fail(self, root: int) -> None:
        """Explicit failure (a bolt called ``collector.fail``)."""
        entry = self._map.remove(root)
        if entry is not None:
            self._on_expire(entry)

    def rotate(self) -> int:
        """Advance the timeout wheel; expired roots fail. Returns count."""
        expired = self._map.rotate()
        for entry in expired:
            self._on_expire(entry)
        return len(expired)

    @property
    def pending(self) -> int:
        return len(self._map)


class CountedTracker:
    """Counted-mode bookkeeping for one spout instance.

    Tracks only the number of in-flight tuples plus a stall timeout: if
    no ack progress happens within ``timeout``, the outstanding window is
    failed wholesale (crude, but in-flight loss only happens under
    container failure, where exactness is not the point of this mode).
    """

    def __init__(self, timeout: float) -> None:
        self.timeout = timeout
        self.pending = 0
        self.last_progress: float = 0.0

    def emitted(self, count: int, now: float) -> None:
        """Record ``count`` newly in-flight tuples."""
        if self.pending == 0:
            self.last_progress = now
        self.pending += count

    def acked(self, count: int, now: float) -> int:
        """Returns the accepted count (clipped to pending)."""
        accepted = min(count, self.pending)
        self.pending -= accepted
        self.last_progress = now
        return accepted

    def check_stalled(self, now: float) -> int:
        """If acks stalled past the timeout, fail the whole window."""
        if self.pending > 0 and now - self.last_progress > self.timeout:
            failed = self.pending
            self.pending = 0
            self.last_progress = now
            return failed
        return 0
