"""The Stream Manager: the engine's communication layer (Section V).

One SM runs per container and is "responsible for routing tuples among
Heron Instances". This implementation carries all the behaviours the
paper evaluates:

* **tuple cache** — outgoing tuples are accumulated per destination and
  flushed every ``cache_drain_frequency_ms`` (Figs. 12–13). Entries are
  recycled through a real :class:`~repro.serialization.pool.ObjectPool`
  when memory pools are enabled;
* **Section V-A optimizations** — with lazy deserialization on, a routed
  tuple costs only a header parse + routing lookup; off, the SM pays full
  deserialize + re-serialize per tuple. With memory pools off it also
  pays per-tuple/per-batch allocation costs (Figs. 5–9);
* **ack routing** — counted-mode acks and exact-mode XOR updates flow
  back through SMs to the origin container, whose SM runs the
  :class:`~repro.core.acking.AckTracker`;
* **backpressure** — when this SM's queue or any local instance queue
  crosses the high watermark, it broadcasts PauseSpouts to every SM
  (including itself); below the low watermark it broadcasts resume.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.chaos.policy import BackoffPolicy
from repro.checkpoint.messages import (CheckpointBarrier, InjectBarriers,
                                       InstanceBarrier, RemoteBarriers,
                                       RestoreInstance, RestoreTopology)
from repro.common.config import Config
from repro.core.acking import AckTracker, RootEntry
from repro.core.instance import HeronInstance, _StartInstance
from repro.core.messages import (AckComplete, AckCounted, DataBatch,
                                 InstanceBatches, InstanceKey,
                                 NewPhysicalPlan, PauseSpouts, RegisterStmgr,
                                 ReliableAck, ReliableData, RemoteDelivery,
                                 ResumeSpouts, XorUpdate)
from repro.core.pplan import PhysicalPlan
from repro.serialization.messages import Heartbeat
from repro.serialization.pool import ObjectPool
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel
from repro.simulation.events import Simulator
from repro.simulation.rng import RngStream
from repro.statemgr.base import WatchEventType

MILLIS = 1e-3


class _DrainTick:
    """Self-timer: flush the tuple cache."""


class _HeartbeatTick:
    """Self-timer: send a liveness heartbeat to the Topology Master."""


class _RotateTick:
    """Self-timer: advance the exact-mode ack timeout wheel."""


class _RetransTick:
    """Self-timer: check reliable channels for retransmit timeouts."""


class _RegisterRetry:
    """Self-timer: re-register with the TM until a physical plan lands."""


class _LeaseTick:
    """Self-timer: expire stale peer-initiated backpressure leases."""


class _RenewTick:
    """Self-timer: renew our own backpressure lease on peers."""


#: Sanitize mode: each StreamManager incarnation gets a distinct FIFO
#: stamping generation, so counters restarting after a container
#: relaunch are not mistaken for a channel rewind. Creation order is
#: deterministic, so stamps are identical across identical runs.
_SANI_INCARNATIONS = itertools.count(1)

#: Reliable-channel link ids: each SM incarnation gets a fresh id so a
#: relaunched sender is never mistaken for a rewind of its predecessor's
#: sequence space. Creation order is deterministic per run; only the
#: relative order of link ids within one run is ever compared.
_LINK_INCARNATIONS = itertools.count(1)


class _OutChannel:
    """Sender half of one reliable SM→SM link (go-back-N)."""

    __slots__ = ("link", "peer", "next_seq", "unacked", "rto",
                 "oldest_sent_at", "last_progress")

    def __init__(self, link: Tuple[int, int], peer: Actor, rto: float,
                 now: float) -> None:
        self.link = link
        self.peer = peer
        self.next_seq = 0
        #: seq → payload; insertion-ordered, so iteration is seq order.
        self.unacked: Dict[int, Any] = {}
        self.rto = rto
        #: When the current head-of-line payload was last (re)sent — the
        #: retransmit clock. Keyed off the *oldest* unacked send, not the
        #: newest, so a continuously-draining channel still times out.
        self.oldest_sent_at = now
        self.last_progress = now


class _InChannel:
    """Receiver half of one reliable SM→SM link (in-order reassembly)."""

    __slots__ = ("link", "expected", "buffer")

    def __init__(self, link: Tuple[int, int]) -> None:
        self.link = link
        self.expected = 0
        self.buffer: Dict[int, Any] = {}


class _CacheEntry:
    """Accumulated tuples bound for one destination instance."""

    __slots__ = ("values", "tuple_ids", "anchors", "count", "emit_time_sum",
                 "source_component", "source_task", "stream", "origin")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.values: List[Any] = []
        self.tuple_ids: List[int] = []
        self.anchors: List[List] = []
        self.count = 0
        self.emit_time_sum = 0.0
        self.source_component = ""
        self.source_task = -1
        self.stream = ""
        self.origin: InstanceKey = ("", -1)


#: Cache key: destination instance + provenance that must not be merged.
#: ``source_task`` keeps per-upstream-task channels distinct, which the
#: barrier-alignment FIFO guarantee of ``repro.checkpoint`` relies on.
_CacheKey = Tuple[InstanceKey, str, int, str, InstanceKey]


class StreamManager(Actor):
    """The per-container tuple router."""

    def __init__(self, sim: Simulator, container_id: int, *,
                 location: Location, network, ledger: Optional[CostLedger],
                 config: Config, costs: CostModel, topology_name: str,
                 resolve_tmaster: Callable[[], Optional[Actor]],
                 statemgr=None, tmaster_path: Optional[str] = None,
                 resolve_coordinator: Optional[
                     Callable[[], Optional[Actor]]] = None,
                 rng: Optional[RngStream] = None) -> None:
        super().__init__(sim, f"stmgr-{container_id}", location,
                         network=network, ledger=ledger,
                         group="stream-manager")
        self.container_id = container_id
        self.costs = costs
        self.config = config
        self.topology_name = topology_name
        self.resolve_tmaster = resolve_tmaster
        self.resolve_coordinator = resolve_coordinator
        self.statemgr = statemgr
        self.tmaster_path = tmaster_path
        self.rng = rng

        # --- config snapshot ---------------------------------------------
        self.lazy_deser = bool(config.get(Keys.LAZY_DESERIALIZATION))
        self.mempool = bool(config.get(Keys.MEMPOOL_ENABLED))
        self.cache_enabled = bool(config.get(Keys.CACHE_ENABLED))
        self.drain_interval = \
            float(config.get(Keys.CACHE_DRAIN_FREQUENCY_MS)) * MILLIS
        self.acking = bool(config.get(Keys.ACKING_ENABLED))
        self.exact_acking = self.acking and \
            config.get(Keys.ACK_TRACKING) == "exact"
        self.high_watermark = int(config.get(Keys.BACKPRESSURE_HIGH_WATERMARK))
        self.low_watermark = int(config.get(Keys.BACKPRESSURE_LOW_WATERMARK))
        self.message_timeout = float(config.get(Keys.MESSAGE_TIMEOUT_SECS))
        self.reliable = bool(config.get(Keys.RELIABLE_DELIVERY))
        self.rto_base = float(config.get(Keys.RETRANSMIT_TIMEOUT_SECS))
        self.rto_cap = float(config.get(Keys.RETRANSMIT_BACKOFF_CAP_SECS))
        self.rto_jitter = float(config.get(Keys.RETRANSMIT_JITTER))
        self.heartbeat_interval = \
            float(config.get(Keys.HEARTBEAT_INTERVAL_SECS))
        self.backpressure_lease = \
            float(config.get(Keys.BACKPRESSURE_LEASE_SECS))
        #: A channel with unacked data but no ack progress for this long
        #: means our directory (or the peer's) is stale — re-register so
        #: the TM rebroadcasts a fresh plan.
        self.stale_peer_secs = max(4.0 * self.rto_cap, 2.0)

        # --- precomputed per-batch/per-tuple charge constants ---------------
        # The Section V-A penalties depend only on the config snapshot, so
        # the per-message cost arithmetic collapses to one multiply-add.
        local_tuple = costs.sm_route_per_tuple
        remote_tuple = 0.0
        if not self.lazy_deser:
            local_tuple += (costs.sm_full_deserialize_per_tuple +
                            costs.sm_reserialize_per_tuple)
            remote_tuple += costs.sm_full_deserialize_per_tuple
        batch_fixed = costs.sm_batch_overhead
        if not self.mempool:
            local_tuple += costs.sm_alloc_per_tuple
            remote_tuple += costs.sm_alloc_per_tuple
            batch_fixed += costs.sm_alloc_per_batch
        self._local_tuple_cost = local_tuple
        self._remote_tuple_cost = remote_tuple
        self._batch_fixed_cost = batch_fixed
        ack_unit = costs.sm_ack_per_tuple
        if not self.lazy_deser:
            ack_unit += costs.sm_ack_deserialize_penalty
        if not self.mempool:
            ack_unit += costs.sm_ack_alloc_penalty
        self._ack_unit = ack_unit

        # --- routing state ----------------------------------------------------
        self.pplan: Optional[PhysicalPlan] = None
        self.directory: Dict[int, Actor] = {}
        self.local_instances: Dict[InstanceKey, HeronInstance] = {}
        self._routing_tables: Dict[str, Dict] = {}
        self._route_fns: Dict[Tuple[str, str], Callable] = {}

        # --- the tuple cache ---------------------------------------------------
        self._cache: Dict[_CacheKey, _CacheEntry] = {}
        self._entry_pool: ObjectPool[_CacheEntry] = ObjectPool(
            _CacheEntry, capacity=4096)
        self._ack_cache: Dict[InstanceKey, List[float]] = {}  # [count, ets]
        self._fail_cache: Dict[InstanceKey, List[float]] = {}
        self._xor_out: Dict[int, List[XorUpdate]] = {}
        self._completions: Dict[InstanceKey, List[AckComplete]] = {}

        # --- exact-mode tracking of roots originated in this container ---------
        self.tracker = AckTracker(self._on_tree_complete,
                                  self._on_tree_expire)

        # --- checkpointing (repro.checkpoint) ------------------------------
        # The SM's restore epoch: data stamped with an older epoch belongs
        # to a rolled-back run and is dropped at the container boundary.
        self.checkpointing = bool(config.get(Keys.CHECKPOINT_ENABLED))
        self.epoch = 0
        self.barriers_forwarded = 0
        self.restores = 0

        # --- backpressure ---------------------------------------------------------
        self.in_backpressure = False
        #: Peer-initiated pause leases: initiator container → expiry time.
        #: Spouts stay paused while any lease is live; a lost ResumeSpouts
        #: or dead initiator only wedges them until its lease runs out.
        self._pause_leases: Dict[int, float] = {}
        self._peers_paused = False
        self._tm_paused = False
        self._lease_armed = False
        self._renew_armed = False
        #: Newest master epoch heard from a TM (fencing, DESIGN.md §14):
        #: TM-originated control messages carrying an older epoch are
        #: leftovers from a fenced (replaced) master and are dropped.
        self.master_epoch = 0

        # --- reliable inter-container channels (repro.chaos) ---------------
        self.link_id = next(_LINK_INCARNATIONS)
        self._link_resets = 0
        self._out_channels: Dict[int, _OutChannel] = {}
        self._in_channels: Dict[int, _InChannel] = {}
        self._retrans_armed = False
        self._register_attempts = 0
        self._register_policy = BackoffPolicy(base=0.5, cap=4.0,
                                              jitter=self.rto_jitter)
        self._last_reregister = -1.0e9

        # --- sanitize mode (repro.analysis.sanitize) -----------------------
        self._sanitizer = sim.sanitizer
        self._sani_generation = next(_SANI_INCARNATIONS) \
            if self._sanitizer is not None else 0

        # --- counters ----------------------------------------------------------
        self.tuples_routed = 0
        self.acks_routed = 0
        self.batches_in = 0
        self.batches_out = 0
        self.drains = 0
        self.dropped_batches = 0
        self.backpressure_starts = 0
        self.retransmits = 0
        self.reliable_dups = 0
        self.stale_reregisters = 0
        self.lease_expiries = 0
        self.fenced_drops = 0
        self.tm_pause_expiries = 0

        self._drain_timer = self.every(self.drain_interval,
                                       lambda: self.deliver(_DrainTick()))
        self._heartbeat_seq = 0
        self.every(self.heartbeat_interval,
                   lambda: self.deliver(_HeartbeatTick()))
        if self.exact_acking:
            self.every(self.message_timeout / 2,
                       lambda: self.deliver(_RotateTick()))
        self._register_with_tmaster()
        self._arm_register_retry()
        if statemgr is not None and tmaster_path is not None:
            self._arm_tmaster_watch()

    # -- wiring --------------------------------------------------------------
    def register_local(self, key: InstanceKey,
                       instance: HeronInstance) -> None:
        """Register an instance actor living in this SM's container."""
        self.local_instances[key] = instance

    def _register_with_tmaster(self) -> None:
        tmaster = self.resolve_tmaster()
        if tmaster is not None:
            self.send(tmaster, RegisterStmgr(self.container_id, self))

    def _arm_register_retry(self) -> None:
        """Schedule a registration re-check with capped exponential
        backoff. Retries are unbounded while no plan has landed — a
        relaunched SM may come up mid-partition and must keep trying
        until the network heals."""
        delay = self._register_policy.delay(self._register_attempts,
                                            self.rng)
        self.send(self, _RegisterRetry(), extra_delay=delay)

    def _handle_register_retry(self) -> None:
        if self.pplan is not None:
            self._register_attempts = 0
            return
        self._register_attempts += 1
        self.charge(self.costs.tmaster_per_event)
        self._register_with_tmaster()
        self._arm_register_retry()

    def _arm_tmaster_watch(self) -> None:
        """Re-register whenever the TM location (re)appears — the State
        Manager watch mechanics of Section IV-C. A DELETED event means
        the master died (its ephemeral node went with its session): any
        topology-wide pause it held is expired here, because a dead
        master can never send the matching resume — its successor
        re-asserts a *durable* pause after it rebuilds (DESIGN.md §14).
        """

        def on_event(event) -> None:
            if not self.alive:
                return
            self._arm_tmaster_watch()
            if event.type == WatchEventType.DELETED:
                self._expire_tm_pause()
            self._register_with_tmaster()

        self.statemgr.watch(self.tmaster_path, on_event)

    def _expire_tm_pause(self) -> None:
        if not self._tm_paused:
            return
        self._tm_paused = False
        self.tm_pause_expiries += 1
        if not self._peers_paused:
            self._forward_spout_gate(False)

    # -- message handling --------------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, InstanceBatches):
            self._handle_local(message)
        elif isinstance(message, RemoteDelivery):
            self._handle_remote(message)
        elif isinstance(message, _DrainTick):
            self._drain()
        elif isinstance(message, NewPhysicalPlan):
            self._handle_new_plan(message)
        elif isinstance(message, (PauseSpouts, ResumeSpouts)):
            self._handle_pause_resume(message)
        elif isinstance(message, ReliableData):
            self._handle_reliable_data(message)
        elif isinstance(message, ReliableAck):
            self._handle_reliable_ack(message)
        elif isinstance(message, _RetransTick):
            self._check_retransmits()
        elif isinstance(message, _RegisterRetry):
            self._handle_register_retry()
        elif isinstance(message, _LeaseTick):
            self._check_leases()
        elif isinstance(message, _RenewTick):
            self._renew_lease()
        elif isinstance(message, _RotateTick):
            self.tracker.rotate()
        elif isinstance(message, _HeartbeatTick):
            self._send_heartbeat()
        elif isinstance(message, InjectBarriers):
            self._handle_inject_barriers(message)
        elif isinstance(message, InstanceBarrier):
            self._handle_instance_barrier(message)
        elif isinstance(message, RemoteBarriers):
            self._handle_remote_barriers(message)
        elif isinstance(message, RestoreTopology):
            self._handle_restore(message)
        elif isinstance(message, RegisterStmgr):
            pass  # SMs never receive these; TMs do

    def _send_heartbeat(self) -> None:
        """Periodic liveness signal to the TM (wire-format Heartbeat
        semantics; see ``repro.serialization.messages.Heartbeat``)."""
        tmaster = self.resolve_tmaster()
        if tmaster is None:
            return
        self._heartbeat_seq += 1
        self.charge(self.costs.tmaster_per_event)
        self.send(tmaster, Heartbeat(sender=self.name, time=self.sim.now,
                                     sequence=self._heartbeat_seq))

    # -- physical plan -------------------------------------------------------------
    def _handle_new_plan(self, message: NewPhysicalPlan) -> None:
        self.charge(self.costs.tmaster_per_event)
        if message.master_epoch < self.master_epoch:
            self.fenced_drops += 1  # leftover from a fenced master
            return
        self.master_epoch = message.master_epoch
        self.pplan = message.pplan
        self.directory = dict(message.stmgr_directory)
        self._sync_channels()
        self._install_routes()
        for key, instance in self.local_instances.items():
            self.send(instance,
                      _StartInstance(self.pplan.upstream_tasks(key[0])))

    def _routes_for(self, component: str):
        tables = self._routing_tables.get(component)
        if tables is None:
            assert self.pplan is not None
            tables = self.pplan.build_routing(component)
            self._routing_tables[component] = tables
        return tables

    def _install_routes(self) -> None:
        """Precompute per-(component, stream) routing closures.

        Local traffic only ever originates from this container's
        instances, so every (component, stream) pair this SM will route
        is known the moment the physical plan lands; the per-batch path
        becomes one dict lookup + one call. Unknown pairs (e.g. after a
        plan update) fall back to lazy construction in :meth:`_route`.
        """
        self._routing_tables = {}
        self._route_fns = {}
        for component in {key[0] for key in self.local_instances}:
            for stream, edges in self._routes_for(component).items():
                self._route_fns[(component, stream)] = \
                    self._make_route_fn(edges)

    def _make_route_fn(self, edges) -> Callable:
        """Build the per-batch routing closure for one (component, stream)."""
        cache_insert = self._cache_insert
        if self.exact_acking:
            def route_exact(batch: DataBatch) -> int:
                routed = 0
                indices = list(range(len(batch.values)))
                for dest_component, grouping in edges:
                    for task, values, idxs, count in grouping.split(
                            batch.values, indices, batch.count):
                        cache_insert(
                            (dest_component, task), batch, values, count,
                            tuple_ids=[batch.tuple_ids[i] for i in idxs],
                            anchors=[batch.anchors[i] for i in idxs])
                        routed += count
                return routed
            return route_exact

        def route_counted(batch: DataBatch) -> int:
            routed = 0
            for dest_component, grouping in edges:
                for task, values, _ids, count in grouping.split(
                        batch.values, [], batch.count):
                    cache_insert((dest_component, task), batch, values, count)
                    routed += count
            return routed
        return route_counted

    # -- local instance traffic ------------------------------------------------------
    def _handle_local(self, message: InstanceBatches) -> None:
        if self.pplan is None or message.epoch < self.epoch:
            self.dropped_batches += len(message.batches)
            return
        batch_fixed = self._batch_fixed_cost
        per_tuple = self._local_tuple_cost
        route_fns = self._route_fns
        for batch in message.batches:
            self.batches_in += 1
            self.charge(batch_fixed + batch.count * per_tuple)
            if self.exact_acking and \
                    self.pplan.is_spout(batch.source_component):
                self._register_roots(batch)
            route = route_fns.get((batch.source_component, batch.stream))
            if route is None:
                route = self._lazy_route_fn(batch.source_component,
                                            batch.stream)
            self.tuples_routed += route(batch)
        self._absorb_acks(message.acks, message.xor_updates)

    def _lazy_route_fn(self, component: str, stream: str) -> Callable:
        """Fallback for (component, stream) pairs not precomputed."""
        edges = self._routes_for(component).get(stream, [])
        fn = self._make_route_fn(edges)
        self._route_fns[(component, stream)] = fn
        return fn

    def _register_roots(self, batch: DataBatch) -> None:
        mean_emit = batch.emit_time_sum / batch.count if batch.count else 0.0
        for tuple_id in batch.tuple_ids:
            self.tracker.register(tuple_id, batch.origin, mean_emit)

    def _cache_insert(self, dest: InstanceKey, batch: DataBatch,
                      values: List, count: int,
                      tuple_ids: Optional[List[int]] = None,
                      anchors: Optional[List] = None) -> None:
        if not self.cache_enabled:
            # Batching ablation: forward each routed sub-batch right away
            # (one transfer per sub-batch, no cross-batch coalescing).
            self._forward_now(dest, batch, values, count,
                              tuple_ids or [], anchors or [])
            return
        key: _CacheKey = (dest, batch.source_component, batch.source_task,
                          batch.stream, batch.origin)
        entry = self._cache.get(key)
        if entry is None:
            entry = self._entry_pool.acquire() if self.mempool \
                else _CacheEntry()
            entry.source_component = batch.source_component
            entry.source_task = batch.source_task
            entry.stream = batch.stream
            entry.origin = batch.origin
            self._cache[key] = entry
        entry.values.extend(values)
        entry.count += count
        entry.emit_time_sum += batch.emit_time_sum * (count / batch.count) \
            if batch.count else 0.0
        if tuple_ids:
            entry.tuple_ids.extend(tuple_ids)
        if anchors:
            entry.anchors.extend(anchors)

    def _forward_now(self, dest: InstanceKey, batch: DataBatch,
                     values: List, count: int, tuple_ids: List[int],
                     anchors: List) -> None:
        """Cache-disabled path: ship one sub-batch immediately."""
        assert self.pplan is not None
        out = DataBatch(
            dest=dest, source_component=batch.source_component,
            stream=batch.stream, values=values, count=count,
            origin=batch.origin,
            emit_time_sum=(batch.emit_time_sum * (count / batch.count)
                           if batch.count else 0.0),
            tuple_ids=tuple_ids, anchors=anchors,
            source_task=batch.source_task, epoch=self.epoch)
        if self._sanitizer is not None:
            out.sani_seq = self._sanitizer.fifo.stamp(
                (out.source_component, out.source_task, out.stream, dest),
                generation=self._sani_generation)
        self.batches_out += 1
        self.charge(self.costs.sm_send_per_batch)
        home = self.pplan.container_of.get(dest)
        if home == self.container_id:
            instance = self.local_instances.get(dest)
            if instance is not None and instance.alive:
                self.send(instance, out)
            else:
                self.dropped_batches += 1
        elif home is not None:
            self._send_remote(home, RemoteDelivery(self.container_id, [out],
                                                   epoch=self.epoch))
        else:
            self.dropped_batches += 1

    # -- ack absorption ---------------------------------------------------------------
    def _ack_unit_cost(self) -> float:
        """Per-ack-entry SM cost, including the Section V-A penalties
        when the optimizations are disabled (acks are protobufs too).
        Precomputed at construction from the config snapshot."""
        return self._ack_unit

    def _absorb_acks(self, acks: List[AckCounted],
                     xor_updates: List[XorUpdate]) -> None:
        costs = self.costs
        if acks:
            unit = self._ack_unit
            for ack in acks:
                self.charge(unit * ack.count)
                self.acks_routed += ack.count
                cache = self._fail_cache if ack.failed else self._ack_cache
                slot = cache.setdefault(ack.origin, [0.0, 0.0])
                slot[0] += ack.count
                slot[1] += ack.emit_time_sum
        if xor_updates:
            assert self.pplan is not None
            self.charge(self._ack_unit * len(xor_updates))
            self.acks_routed += len(xor_updates)
            for update in xor_updates:
                home = self.pplan.container_of[update.origin]
                if home == self.container_id:
                    self._apply_xor(update)
                else:
                    self._xor_out.setdefault(home, []).append(update)

    def _apply_xor(self, update: XorUpdate) -> None:
        if update.fail:
            self.tracker.fail(update.root)
        else:
            self.tracker.update(update.root, update.value)

    def _on_tree_complete(self, entry: RootEntry) -> None:
        self._completions.setdefault(entry.spout, []).append(
            AckComplete([entry.root], 1, entry.emit_time))

    def _on_tree_expire(self, entry: RootEntry) -> None:
        self._completions.setdefault(entry.spout, []).append(
            AckComplete([entry.root], 1, entry.emit_time, failed=True))

    # -- remote traffic -------------------------------------------------------------
    def _handle_remote(self, message: RemoteDelivery) -> None:
        if message.epoch < self.epoch:
            self.dropped_batches += len(message.batches)
            return
        costs = self.costs
        batch_fixed = self._batch_fixed_cost
        per_tuple = self._remote_tuple_cost
        for batch in message.batches:
            self.batches_in += 1
            # Lazy path: parse only the destination header and forward the
            # payload as-is; otherwise pay the full decode.
            self.charge(batch_fixed + batch.count * per_tuple)
            instance = self.local_instances.get(batch.dest)
            if instance is None or not instance.alive:
                self.dropped_batches += 1
                continue
            self.charge(costs.sm_send_per_batch)
            self.send(instance, batch)
        if message.acks:
            unit = self._ack_unit
            for ack in message.acks:
                self.charge(unit * ack.count)
                self._deliver_ack_local(ack)
        if message.xor_updates:
            self.charge(self._ack_unit * len(message.xor_updates))
            for update in message.xor_updates:
                self._apply_xor(update)

    def _deliver_ack_local(self, ack: AckCounted) -> None:
        instance = self.local_instances.get(ack.origin)
        if instance is not None and instance.alive:
            self.send(instance, ack)

    # -- reliable inter-container channels (repro.chaos) -----------------------
    def _send_remote(self, home: int, payload: Any) -> None:
        """Ship one SM→SM payload, sequenced through the reliable channel
        when enabled. Payloads bound for dead or unknown peers are
        dropped and counted — recovering *that* data is the checkpoint
        layer's job, not the link layer's."""
        peer = self.directory.get(home)
        if peer is None or not peer.alive:
            self._count_lost(payload)
            return
        if not self.reliable:
            self.send(peer, payload)
            return
        channel = self._out_channels.get(home)
        if channel is None or channel.peer is not peer:
            channel = self._reset_out_channel(home, peer)
        seq = channel.next_seq
        channel.next_seq = seq + 1
        if not channel.unacked:
            channel.oldest_sent_at = self.sim.now
        channel.unacked[seq] = payload
        self.send(peer, ReliableData(self.container_id, channel.link, seq,
                                     payload))
        self._arm_retransmit()

    def _count_lost(self, payload: Any) -> None:
        if isinstance(payload, RemoteDelivery):
            self.dropped_batches += len(payload.batches)

    def _reset_out_channel(self, home: int, peer: Actor) -> _OutChannel:
        old = self._out_channels.get(home)
        if old is not None:
            for payload in old.unacked.values():
                self._count_lost(payload)
        self._link_resets += 1
        channel = _OutChannel((self.link_id, self._link_resets), peer,
                              self.rto_base, self.sim.now)
        self._out_channels[home] = channel
        return channel

    def _sync_channels(self) -> None:
        """A new plan landed: reset channels whose peer changed and drop
        channels to containers that left the directory."""
        for home in sorted(self._out_channels):
            channel = self._out_channels[home]
            peer = self.directory.get(home)
            if peer is None:
                for payload in channel.unacked.values():
                    self._count_lost(payload)
                del self._out_channels[home]
            elif peer is not channel.peer:
                self._reset_out_channel(home, peer)

    def _arm_retransmit(self) -> None:
        if self._retrans_armed:
            return
        self._retrans_armed = True
        self.send(self, _RetransTick(), extra_delay=self.rto_base / 2)

    def _check_retransmits(self) -> None:
        self._retrans_armed = False
        now = self.sim.now
        pending = False
        for home in sorted(self._out_channels):
            channel = self._out_channels[home]
            if not channel.unacked:
                continue
            pending = True
            if now - channel.oldest_sent_at < channel.rto:
                continue
            peer = self.directory.get(home)
            if peer is not None and peer.alive and peer is channel.peer:
                # Go-back-N: resend every unacked payload, in seq order.
                for seq, payload in channel.unacked.items():
                    self.retransmits += 1
                    self.charge(self.costs.sm_send_per_batch)
                    self.send(peer, ReliableData(self.container_id,
                                                 channel.link, seq, payload))
            channel.oldest_sent_at = now
            backoff = min(self.rto_cap, channel.rto * 2.0)
            if self.rng is not None and self.rto_jitter > 0.0:
                backoff = self.rng.jitter(backoff, self.rto_jitter)
            channel.rto = backoff
            if now - channel.last_progress > self.stale_peer_secs:
                channel.last_progress = now  # rate-limit per channel
                self._maybe_reregister_stale(now)
        if pending:
            self._arm_retransmit()

    def _maybe_reregister_stale(self, now: float) -> None:
        if now - self._last_reregister < 1.0:
            return
        self._last_reregister = now
        self.stale_reregisters += 1
        self.charge(self.costs.tmaster_per_event)
        self._register_with_tmaster()

    def _handle_reliable_data(self, message: ReliableData) -> None:
        self.charge(self.costs.sm_batch_overhead)
        channel = self._in_channels.get(message.from_container)
        if channel is None or message.link > channel.link:
            channel = _InChannel(message.link)
            self._in_channels[message.from_container] = channel
        elif message.link < channel.link:
            return  # straggler from a dead sender incarnation
        if message.seq < channel.expected:
            self.reliable_dups += 1
        elif message.seq == channel.expected:
            channel.expected += 1
            self._apply_reliable(message.payload)
            while channel.expected in channel.buffer:
                payload = channel.buffer.pop(channel.expected)
                channel.expected += 1
                self._apply_reliable(payload)
        elif message.seq in channel.buffer:
            self.reliable_dups += 1
        else:
            channel.buffer[message.seq] = message.payload
        self._send_reliable_ack(message.from_container, channel)

    def _apply_reliable(self, payload: Any) -> None:
        if isinstance(payload, RemoteDelivery):
            self._handle_remote(payload)
        elif isinstance(payload, RemoteBarriers):
            self._handle_remote_barriers(payload)
        elif isinstance(payload, (PauseSpouts, ResumeSpouts)):
            self._handle_pause_resume(payload)

    def _send_reliable_ack(self, home: int, channel: _InChannel) -> None:
        peer = self.directory.get(home)
        if peer is None or not peer.alive:
            return  # sender retransmits until a fresh plan connects us
        self.send(peer, ReliableAck(self.container_id, channel.link,
                                    channel.expected - 1))

    def _handle_reliable_ack(self, message: ReliableAck) -> None:
        channel = self._out_channels.get(message.from_container)
        if channel is None or message.link != channel.link:
            return
        progressed = False
        unacked = channel.unacked
        while unacked:
            head = next(iter(unacked))
            if head > message.seq:
                break
            del unacked[head]
            progressed = True
        if progressed:
            channel.rto = self.rto_base
            channel.last_progress = self.sim.now
            channel.oldest_sent_at = self.sim.now

    # -- drain --------------------------------------------------------------------
    def _drain(self) -> None:
        costs = self.costs
        cache, self._cache = self._cache, {}
        remote: Dict[int, RemoteDelivery] = {}
        anything = bool(cache or self._ack_cache or self._fail_cache
                        or self._xor_out or self._completions)
        if anything:
            self.drains += 1
            self.charge(costs.sm_drain_fixed)
        assert self.pplan is not None or not anything
        for (dest, _src, _task, _stream, _origin), entry in cache.items():
            batch = DataBatch(
                dest=dest, source_component=entry.source_component,
                stream=entry.stream, values=entry.values, count=entry.count,
                origin=entry.origin, emit_time_sum=entry.emit_time_sum,
                tuple_ids=entry.tuple_ids, anchors=entry.anchors,
                source_task=entry.source_task, epoch=self.epoch)
            if self._sanitizer is not None:
                batch.sani_seq = self._sanitizer.fifo.stamp(
                    (batch.source_component, batch.source_task,
                     batch.stream, dest),
                    generation=self._sani_generation)
            self.batches_out += 1
            home = self.pplan.container_of.get(dest)
            if home == self.container_id:
                instance = self.local_instances.get(dest)
                if instance is not None and instance.alive:
                    self.charge(costs.sm_send_per_batch)
                    self.send(instance, batch)
                else:
                    self.dropped_batches += 1
            elif home is not None:
                delivery = remote.get(home)
                if delivery is None:
                    delivery = RemoteDelivery(self.container_id, [],
                                              epoch=self.epoch)
                    remote[home] = delivery
                delivery.batches.append(batch)
                self.charge(costs.sm_send_per_batch)
            else:
                self.dropped_batches += 1
            if self.mempool:
                self._entry_pool.release(entry)

        self._drain_acks(remote)
        for home, delivery in remote.items():
            self._send_remote(home, delivery)
        self._check_backpressure()

    def _drain_acks(self, remote: Dict[int, RemoteDelivery]) -> None:
        assert self.pplan is not None or not (self._ack_cache
                                              or self._xor_out)

        def ship(origin: InstanceKey, ack: AckCounted) -> None:
            home = self.pplan.container_of.get(origin)
            if home == self.container_id:
                self._deliver_ack_local(ack)
            elif home is not None:
                delivery = remote.get(home)
                if delivery is None:
                    delivery = RemoteDelivery(self.container_id, [],
                                              epoch=self.epoch)
                    remote[home] = delivery
                delivery.acks.append(ack)

        for origin, (count, emit_sum) in self._ack_cache.items():
            ship(origin, AckCounted(origin, int(count), emit_sum))
        for origin, (count, emit_sum) in self._fail_cache.items():
            ship(origin, AckCounted(origin, int(count), emit_sum,
                                    failed=True))
        self._ack_cache = {}
        self._fail_cache = {}

        for home, updates in self._xor_out.items():
            delivery = remote.get(home)
            if delivery is None:
                delivery = RemoteDelivery(self.container_id, [],
                                          epoch=self.epoch)
                remote[home] = delivery
            delivery.xor_updates.extend(updates)
        self._xor_out = {}

        # Exact-mode completions for local spouts, batched per spout.
        completions, self._completions = self._completions, {}
        for spout, items in completions.items():
            instance = self.local_instances.get(spout)
            if instance is None or not instance.alive:
                continue
            for failed in (False, True):
                matching = [c for c in items if c.failed is failed]
                if not matching:
                    continue
                merged = AckComplete(
                    tuple_ids=[t for c in matching for t in c.tuple_ids],
                    count=sum(c.count for c in matching),
                    emit_time_sum=sum(c.emit_time_sum for c in matching),
                    failed=failed)
                self.send(instance, merged)

    # -- checkpoint barriers (repro.checkpoint) ------------------------------------
    def _handle_inject_barriers(self, message: InjectBarriers) -> None:
        """Coordinator trigger: hand barrier markers to the local spouts."""
        if message.epoch != self.epoch or self.pplan is None:
            return
        for instance in self.local_instances.values():
            if instance.alive and instance.is_spout:
                self.charge(self.costs.checkpoint_marker_per_hop)
                self.send(instance, CheckpointBarrier(
                    message.checkpoint_id, message.epoch))

    def _handle_instance_barrier(self, message: InstanceBarrier) -> None:
        """A local instance passed the barrier: flush its pre-barrier
        tuples out of the cache, then propagate its marker downstream.

        The drain runs in the same handler turn as the marker sends, so
        ``_flush_pending``'s per-destination ordering guarantees every
        drained batch reaches each peer SM / local instance *before* the
        marker — the FIFO property barrier alignment depends on.
        """
        if message.epoch != self.epoch or self.pplan is None:
            return
        self._drain()
        source = message.source
        remote: Dict[int, List[InstanceKey]] = {}
        for dest in self.pplan.downstream_keys(source[0]):
            home = self.pplan.container_of.get(dest)
            if home == self.container_id:
                instance = self.local_instances.get(dest)
                if instance is not None and instance.alive:
                    self.charge(self.costs.checkpoint_marker_per_hop)
                    self.barriers_forwarded += 1
                    self.send(instance, CheckpointBarrier(
                        message.checkpoint_id, message.epoch,
                        from_task=source))
            elif home is not None:
                remote.setdefault(home, []).append(dest)
        for home, dests in sorted(remote.items()):
            peer = self.directory.get(home)
            if peer is not None and peer.alive:
                self.charge(self.costs.checkpoint_marker_per_hop)
                self.barriers_forwarded += 1
                self._send_remote(home, RemoteBarriers(
                    message.checkpoint_id, message.epoch, source, dests))

    def _handle_remote_barriers(self, message: RemoteBarriers) -> None:
        """Markers arriving from a peer SM, bound for local instances.

        No drain here: remote data batches are forwarded to instances
        directly on arrival, so the channel through this SM is FIFO
        without flushing anything.
        """
        if message.epoch != self.epoch:
            return
        for dest in message.dests:
            instance = self.local_instances.get(dest)
            if instance is not None and instance.alive:
                self.charge(self.costs.checkpoint_marker_per_hop)
                self.barriers_forwarded += 1
                self.send(instance, CheckpointBarrier(
                    message.checkpoint_id, message.epoch,
                    from_task=message.from_task))

    def _handle_restore(self, message: RestoreTopology) -> None:
        """Rollback: enter the new epoch, wipe every piece of in-flight
        state (it all belongs to the rolled-back run) and push each local
        instance its snapshot blob."""
        if message.epoch <= self.epoch:
            return  # duplicate / stale restore
        self.charge(self.costs.tmaster_per_event)
        self.epoch = message.epoch
        self.restores += 1
        if self.mempool:
            for entry in self._cache.values():
                self._entry_pool.release(entry)
        self._cache = {}
        self._ack_cache = {}
        self._fail_cache = {}
        self._xor_out = {}
        self._completions = {}
        self.tracker = AckTracker(self._on_tree_complete,
                                  self._on_tree_expire)
        for key, instance in self.local_instances.items():
            if instance.alive:
                self.send(instance, RestoreInstance(
                    message.epoch, message.checkpoint_id,
                    message.states.get(key)))

    # -- backpressure --------------------------------------------------------------
    def _queue_pressure(self) -> int:
        depth = self.inbox_len
        for instance in self.local_instances.values():
            if instance.alive and instance.inbox_len > depth:
                depth = instance.inbox_len
        return depth

    def _check_backpressure(self) -> None:
        if self.acking:
            # With acking on, flow control is the spouts' max-spout-pending
            # window (Section V-B): in-flight data is already bounded, and
            # the tuning figures attribute throttling entirely to the cap.
            return
        depth = self._queue_pressure()
        if not self.in_backpressure and depth > self.high_watermark:
            self.in_backpressure = True
            self.backpressure_starts += 1
            self._broadcast(PauseSpouts(self.container_id))
            self._arm_lease_renewal()
        elif self.in_backpressure and depth < self.low_watermark:
            self.in_backpressure = False
            self._broadcast(ResumeSpouts(self.container_id))

    def _broadcast(self, message: Any) -> None:
        self._handle_pause_resume(message)
        for cid in sorted(self.directory):
            if cid != self.container_id:
                self._send_remote(cid, message)

    def _handle_pause_resume(self, message: Any) -> None:
        pause = isinstance(message, PauseSpouts)
        initiator = message.initiator_container
        if initiator == 0:
            # TM activation control (deactivate/activate): permanent,
            # lease-less, and independent of peer backpressure. Fenced:
            # a replaced master's leftover pause/resume must not flip
            # the gate its successor owns.
            if message.master_epoch < self.master_epoch:
                self.fenced_drops += 1
                return
            self.master_epoch = max(self.master_epoch, message.master_epoch)
            self._tm_paused = pause
            self._forward_spout_gate(pause)
            return
        if pause:
            self._pause_leases[initiator] = \
                self.sim.now + self.backpressure_lease
            self._arm_lease_check()
            if not self._peers_paused:
                self._peers_paused = True
                self._forward_spout_gate(True)
        else:
            self._pause_leases.pop(initiator, None)
            if self._peers_paused and not self._pause_leases:
                self._peers_paused = False
                if not self._tm_paused:
                    self._forward_spout_gate(False)

    def _forward_spout_gate(self, pause: bool) -> None:
        for key, instance in self.local_instances.items():
            if instance.alive and instance.is_spout:
                self.send(instance,
                          PauseSpouts(0) if pause else ResumeSpouts(0))

    def _arm_lease_check(self) -> None:
        if self._lease_armed:
            return
        self._lease_armed = True
        self.send(self, _LeaseTick(),
                  extra_delay=self.backpressure_lease / 2)

    def _check_leases(self) -> None:
        """Expire stale leases: if the initiator died (or its resume got
        lost) its renewals stop, and spouts resume here instead of
        wedging forever."""
        self._lease_armed = False
        if not self._pause_leases:
            return
        now = self.sim.now
        for cid in [c for c, expiry in self._pause_leases.items()
                    if expiry <= now]:
            del self._pause_leases[cid]
            self.lease_expiries += 1
        if self._pause_leases:
            self._arm_lease_check()
        elif self._peers_paused:
            self._peers_paused = False
            if not self._tm_paused:
                self._forward_spout_gate(False)

    def _arm_lease_renewal(self) -> None:
        if self._renew_armed:
            return
        self._renew_armed = True
        self.send(self, _RenewTick(),
                  extra_delay=self.backpressure_lease / 3)

    def _renew_lease(self) -> None:
        self._renew_armed = False
        if not self.in_backpressure:
            return
        self._broadcast(PauseSpouts(self.container_id))
        self._arm_lease_renewal()

    # -- runtime tuning (the paper's future-work hook) -------------------------------
    def set_drain_interval(self, interval: float) -> None:
        """Adjust the cache drain frequency of a *running* SM — used by
        the auto-tuner (Section V-B future work)."""
        if interval <= 0:
            raise ValueError(f"drain interval must be positive: {interval}")
        self.drain_interval = interval
        self._drain_timer.reschedule(interval)

    # -- introspection --------------------------------------------------------------
    @property
    def pool_stats(self):
        return self._entry_pool.stats
