"""The Heron engine facade: submit/kill/restart/update topologies.

:class:`HeronCluster` wires the modules together exactly along the
paper's seams: a pluggable State Manager, a pluggable Resource Manager
invoked on demand at submit/scale time, a pluggable Scheduler driving a
scheduling framework, and per-container process sets (TM / SM / MM /
instances) launched through the Scheduler's
:class:`~repro.scheduler.base.TopologyLauncher` hooks.

Example::

    cluster = HeronCluster.local()
    handle = cluster.submit_topology(topology)
    cluster.run_for(10.0)
    print(handle.snapshot())
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional

from repro.api.config_keys import SCHEMA as TOPOLOGY_SCHEMA
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import Topology
from repro.autoscale.config_keys import SCHEMA as AUTOSCALE_SCHEMA
from repro.autoscale.config_keys import AutoscaleConfigKeys
from repro.autoscale.controller import ScalingController
from repro.chaos.injector import MasterFaultInjector
from repro.chaos.network import FaultyNetwork
from repro.chaos.plan import FaultPlan, MasterFault, Partition
from repro.chaos.policy import BackoffPolicy
from repro.checkpoint.coordinator import CheckpointCoordinator
from repro.checkpoint.messages import RestoreRequest
from repro.common.config import Config
from repro.common.errors import HeronError, SchedulerError, TopologyError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.instance import HeronInstance
from repro.core.messages import ActivateTopology, DeactivateTopology, \
    InstanceKey
from repro.core.metrics_manager import MetricsManager
from repro.core.pplan import PhysicalPlan
from repro.core.stream_manager import StreamManager
from repro.core.topology_master import TopologyMaster
from repro.metrics.stats import WeightedStats
from repro.packing.base import SCHEMA as PACKING_SCHEMA, ResourceManager
from repro.packing.plan import ContainerPlan, PackingPlan
from repro.packing.round_robin import RoundRobinPacking
from repro.scheduler.base import (KillTopologyRequest,
                                  RestartTopologyRequest, Scheduler,
                                  UpdateTopologyRequest)
from repro.scheduler.frameworks import (AuroraFramework, LocalFramework,
                                        SchedulingFramework, YarnFramework)
from repro.scheduler.impls import (AuroraScheduler, LocalScheduler,
                                   YarnScheduler)
from repro.simulation.actors import CostLedger
from repro.simulation.cluster import Cluster, Container
from repro.simulation.costs import CostModel, DEFAULT_COST_MODEL
from repro.simulation.events import Simulator
from repro.simulation.network import Network
from repro.simulation.rng import RngRegistry
from repro.statemgr.base import StateManager, WatchEventType
from repro.statemgr.inmemory import InMemoryStateManager
from repro.statemgr.paths import TopologyPaths


class HeronCluster:
    """One simulated deployment of Heron: substrate + modules + topologies."""

    def __init__(self, *, framework: SchedulingFramework,
                 statemgr: Optional[StateManager] = None,
                 costs: Optional[CostModel] = None,
                 seed: int = 0,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.framework = framework
        self.sim: Simulator = framework.sim
        self.cluster: Cluster = framework.cluster
        self.costs = costs or DEFAULT_COST_MODEL
        self.rng = RngRegistry(seed)
        self.fault_plan = fault_plan
        base_network = Network(self.costs)
        # Rack-aware latency tiers + memo invalidation on rack moves.
        base_network.bind_cluster(self.cluster)
        self.base_network = base_network
        self.chaos: Optional[FaultyNetwork] = None
        if fault_plan is not None:
            self.chaos = FaultyNetwork(
                base_network, plan=fault_plan,
                now=lambda: self.sim.now,
                rng=self.rng.stream("chaos.network"))
        self.network = self.chaos if self.chaos is not None else base_network
        self.ledger = CostLedger()
        self.statemgr = statemgr or InMemoryStateManager()
        self.topologies: Dict[str, _TopologyRuntime] = {}
        self._instance_indices = itertools.count()

    # -- convenience constructors ---------------------------------------------
    @classmethod
    def local(cls, costs: Optional[CostModel] = None, seed: int = 0,
              fault_plan: Optional[FaultPlan] = None) -> "HeronCluster":
        """Single-machine local mode (LocalFramework + LocalScheduler)."""
        sim = Simulator()
        return cls(framework=LocalFramework(sim), costs=costs, seed=seed,
                   fault_plan=fault_plan)

    @classmethod
    def on_aurora(cls, machines: int = 16,
                  machine_resource: Resource = Resource(
                      cpu=24, ram=72 * GB, disk=1000 * GB),
                  costs: Optional[CostModel] = None,
                  seed: int = 0,
                  fault_plan: Optional[FaultPlan] = None,
                  cluster: Optional[Cluster] = None) -> "HeronCluster":
        """Aurora-style deployment; pass ``cluster`` (e.g.
        :meth:`Cluster.racked`) to override the flat homogeneous default.
        """
        sim = Simulator()
        if cluster is None:
            cluster = Cluster.homogeneous(machines, machine_resource)
        return cls(framework=AuroraFramework(sim, cluster), costs=costs,
                   seed=seed, fault_plan=fault_plan)

    @classmethod
    def on_yarn(cls, machines: int = 16,
                machine_resource: Resource = Resource(
                    cpu=24, ram=72 * GB, disk=1000 * GB),
                costs: Optional[CostModel] = None,
                seed: int = 0,
                fault_plan: Optional[FaultPlan] = None,
                cluster: Optional[Cluster] = None) -> "HeronCluster":
        """YARN-style deployment; pass ``cluster`` (e.g.
        :meth:`Cluster.racked`) to override the flat homogeneous default.
        """
        sim = Simulator()
        if cluster is None:
            cluster = Cluster.homogeneous(machines, machine_resource)
        return cls(framework=YarnFramework(sim, cluster), costs=costs,
                   seed=seed, fault_plan=fault_plan)

    def chaos_stats(self) -> Dict[str, float]:
        """Fault-injection counters (all zero without a FaultPlan)."""
        if self.chaos is None:
            return {"drops": 0.0, "partition_drops": 0.0, "spikes": 0.0,
                    "straggler_hits": 0.0, "partition_seconds": 0.0}
        return self.chaos.stats()

    # -- time ---------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def run_for(self, seconds: float) -> None:
        """Advance simulated time."""
        self.sim.run_for(seconds)

    # -- topology lifecycle ----------------------------------------------------------
    def submit_topology(self, topology: Topology, *,
                        config: Optional[Config] = None,
                        resource_manager: Optional[ResourceManager] = None,
                        scheduler: Optional[Scheduler] = None
                        ) -> "TopologyHandle":
        """Submit a topology: pack, schedule, launch.

        The Resource Manager and Scheduler are per-topology pluggable —
        "different Heron applications can seamlessly operate on the same
        resources using different module implementations" (Section I).
        """
        if topology.name in self.topologies:
            raise TopologyError(
                f"topology {topology.name!r} is already running")
        merged = topology.config.copy()
        if config is not None:
            merged.update(config)
        TOPOLOGY_SCHEMA.validate(merged)
        PACKING_SCHEMA.validate(merged)
        AUTOSCALE_SCHEMA.validate(merged)

        manager = resource_manager or RoundRobinPacking()
        manager.initialize(merged, topology)
        # Placement-aware policies (R-Storm) need the machine/rack map.
        manager.bind_cluster(self.cluster)
        plan = manager.pack()

        paths = TopologyPaths(topology.name)
        self.statemgr.put(paths.topology, topology.describe().encode())
        self.statemgr.put(paths.packing_plan, plan.to_json())
        self.statemgr.put(paths.execution_state, b"RUNNING")
        # Seed the master-epoch fencing node before the first TM starts;
        # every TM (initial or failover) claims the next epoch from it.
        self.statemgr.put(paths.master_epoch, b"0")

        runtime = _TopologyRuntime(self, topology, merged, manager, plan)
        sched = scheduler or self._default_scheduler()
        sched.initialize(merged, self.framework, runtime, topology.name)
        runtime.scheduler = sched
        self.topologies[topology.name] = runtime
        sched.on_schedule(plan)
        self.statemgr.put(paths.scheduler_location,
                          type(sched).__name__.encode())
        if self.fault_plan is not None:
            for fault in self.fault_plan.master_faults:
                runtime.fault_injector.arm(fault)
        return TopologyHandle(self, runtime)

    def _default_scheduler(self) -> Scheduler:
        if isinstance(self.framework, AuroraFramework):
            return AuroraScheduler()
        if isinstance(self.framework, YarnFramework):
            return YarnScheduler()
        return LocalScheduler()

    def kill_topology(self, name: str) -> None:
        """Kill a topology: release containers, purge its state tree."""
        runtime = self._runtime(name)
        runtime.scheduler.on_kill(KillTopologyRequest(name))
        paths = TopologyPaths(name)
        if self.statemgr.exists(paths.base):
            self.statemgr.delete(paths.base, recursive=True)
        del self.topologies[name]

    def restart_topology(self, name: str,
                         container_id: Optional[int] = None) -> None:
        """Restart one container of a topology (or all of them)."""
        runtime = self._runtime(name)
        runtime.scheduler.on_restart(
            RestartTopologyRequest(name, container_id))

    def update_topology(self, name: str,
                        parallelism_changes: Mapping[str, int]) -> None:
        """Topology scaling: repack, then push the delta to the scheduler
        and the new physical plan to the Topology Master."""
        runtime = self._runtime(name)
        runtime.apply_scaling(parallelism_changes)

    def activate(self, name: str) -> None:
        """Resume spout emission (``heron activate``)."""
        self._send_activation(name, True)

    def deactivate(self, name: str) -> None:
        """Pause spout emission (``heron deactivate``)."""
        self._send_activation(name, False)

    def _send_activation(self, name: str, active: bool) -> None:
        runtime = self._runtime(name)
        tmaster = runtime.tmaster
        if tmaster is None or not tmaster.alive:
            raise SchedulerError(f"topology {name!r} has no live TM")
        message = ActivateTopology() if active else DeactivateTopology()
        self.sim.schedule(0.0, tmaster.deliver, message)

    def _runtime(self, name: str) -> "_TopologyRuntime":
        runtime = self.topologies.get(name)
        if runtime is None:
            raise TopologyError(f"unknown topology {name!r}")
        return runtime


class _TopologyRuntime:
    """Per-topology actor bookkeeping; implements TopologyLauncher."""

    def __init__(self, heron: HeronCluster, topology: Topology,
                 config: Config, manager: ResourceManager,
                 plan: PackingPlan) -> None:
        self.heron = heron
        self.topology = topology
        self.config = config
        self.manager = manager
        self.packing_plan = plan
        self.pplan = PhysicalPlan(topology, plan)
        self.scheduler: Scheduler = None  # type: ignore[assignment]
        self.paths = TopologyPaths(topology.name)

        self.tmaster: Optional[TopologyMaster] = None
        self.sms: Dict[int, StreamManager] = {}
        self.mms: Dict[int, MetricsManager] = {}
        self.instances: Dict[InstanceKey, HeronInstance] = {}
        self.container_keys: Dict[int, List[InstanceKey]] = {}
        self.retired_counters: Dict[str, Dict[str, float]] = {}
        self.retired_latency = WeightedStats()
        self.spout_components = frozenset(topology.spouts)

        # --- checkpointing (repro.checkpoint) ------------------------------
        self.checkpointing = bool(config.get(Keys.CHECKPOINT_ENABLED))
        self.coordinator: Optional[CheckpointCoordinator] = None
        # --- elastic scaling (repro.autoscale) -----------------------------
        self.autoscaling = bool(
            config.get(AutoscaleConfigKeys.AUTOSCALE_ENABLED))
        self.controller: Optional[ScalingController] = None
        # Containers this runtime has launched at least once: seeing one
        # again means a relaunch (failure recovery or deliberate restart),
        # which must roll the topology back to its last checkpoint.
        self._launched_cids: set = set()

        # --- TM failover (DESIGN.md §14) -----------------------------------
        #: Bumped on every TM launch; a pending failover whose generation
        #: is stale stands down (another path already recovered).
        self.master_gen = 0
        self.tm_failovers = 0
        self.failover_failures = 0
        self.last_failover_at = -1.0
        self.failover_delay = float(
            config.get(Keys.TMASTER_FAILOVER_DELAY_SECS))
        self._tm_watch_armed = False
        #: Control-plane chaos: resolves TM-targeting faults against
        #: whatever process/machine hosts the master at fire time.
        self.fault_injector = MasterFaultInjector(
            schedule=heron.sim.schedule,
            now=lambda: heron.sim.now,
            hooks={
                "kill-process": self._fault_kill_master,
                "kill-machine": self._fault_kill_master_machine,
                "partition-machine": self._fault_partition_master,
                "expire-session": self._fault_expire_master_session,
            })

    # -- TopologyLauncher ------------------------------------------------------
    def launch_tmaster(self, container: Container) -> None:
        heron = self.heron
        self.master_gen += 1
        old_coordinator = self.coordinator
        old_controller = self.controller
        tmaster = TopologyMaster(
            heron.sim, location=container.location(), network=heron.network,
            ledger=heron.ledger, costs=heron.costs, pplan=self.pplan,
            statemgr=heron.statemgr,
            tmaster_path=self.paths.tmaster_location,
            epoch_path=self.paths.master_epoch,
            execution_state_path=self.paths.execution_state,
            config=self.config, request_relaunch=self.request_relaunch,
            rng=heron.rng.stream("control.backoff"))
        container.attach(tmaster)
        self.tmaster = tmaster
        tmaster.start()
        if self.checkpointing:
            # The coordinator is colocated with the TM (Heron runs its
            # checkpoint manager in the master container too); a TM
            # relaunch brings up a fresh one that resumes from the epoch
            # and checkpoint ids persisted in the State Manager and
            # carries its predecessor's counters forward so
            # ``checkpoint_stats()`` stays cumulative across failover.
            coordinator = CheckpointCoordinator(
                heron.sim, location=container.location(),
                network=heron.network, ledger=heron.ledger,
                costs=heron.costs, statemgr=heron.statemgr,
                pplan=self.pplan,
                interval=float(self.config.get(
                    Keys.CHECKPOINT_INTERVAL_SECS)),
                resolve_stmgrs=self._alive_stmgrs)
            container.attach(coordinator)
            if old_coordinator is not None:
                coordinator.adopt_counters(old_coordinator)
            self.coordinator = coordinator
            coordinator.start()
        if self.autoscaling:
            # The ScalingController is control-plane too: it rides in the
            # master container and reads the TM's metric aggregates. A
            # failover successor inherits cooldown state, rate baselines
            # and history so the rescale cadence survives the master.
            controller = ScalingController(
                heron.sim, location=container.location(),
                network=heron.network, ledger=heron.ledger,
                costs=heron.costs, config=self.config, pplan=self.pplan,
                read_component_metrics=self._component_metrics,
                sample_backpressure=self._any_backpressure,
                request_rescale=self.request_rescale)
            container.attach(controller)
            if old_controller is not None:
                controller.inherit(old_controller)
            self.controller = controller
            controller.start()
        if not self._tm_watch_armed:
            self._tm_watch_armed = True
            self._arm_tmaster_watch()

    # -- TM failover (DESIGN.md §14) -------------------------------------------
    def _arm_tmaster_watch(self) -> None:
        """Perpetual watch on the TM's ephemeral location node: a DELETED
        event means the master's session is gone (process death, machine
        death, or session expiry) and schedules a failover after a grace
        period, giving framework-side recovery a chance to win the race."""

        def on_event(event) -> None:
            if self.heron.topologies.get(self.topology.name) is not self:
                return  # topology killed: stop re-arming
            self._arm_tmaster_watch()
            if event.type == WatchEventType.DELETED:
                self.heron.sim.schedule(self.failover_delay,
                                        self._tm_failover, self.master_gen)

        self.heron.statemgr.watch(self.paths.tmaster_location, on_event)

    def _tm_failover(self, gen: int) -> None:
        """Relaunch the TM unless another recovery path beat us to it."""
        if self.heron.topologies.get(self.topology.name) is not self:
            return  # topology killed while the grace period ran
        if gen != self.master_gen:
            return  # a newer master already launched (framework restart)
        try:
            self.scheduler.on_restart_tmaster()
            self.tm_failovers += 1
            self.last_failover_at = self.heron.sim.now
        except SchedulerError:
            # No capacity right now (e.g. the master's machine died and
            # the survivors are full) — retry after another grace period.
            # Same generation: a successful launch through any path bumps
            # it, which stands this retry down.
            self.failover_failures += 1
            self.heron.sim.schedule(self.failover_delay,
                                    self._tm_failover, gen)

    # -- control-plane chaos hooks (repro.chaos.injector) ----------------------
    def _fault_kill_master(self, fault: MasterFault) -> bool:
        tmaster = self.resolve_tmaster()
        if tmaster is None:
            return False
        tmaster.kill()
        return True

    def _fault_kill_master_machine(self, fault: MasterFault) -> bool:
        tmaster = self.resolve_tmaster()
        if tmaster is None:
            return False
        machine_id = tmaster.location.machine_id
        victims = sorted((c for c in self.heron.cluster.live_containers()
                          if c.machine.id == machine_id),
                         key=lambda c: c.id)
        for container in victims:
            self.heron.cluster.fail_container(container)
        return bool(victims)

    def _fault_partition_master(self, fault: MasterFault) -> bool:
        tmaster = self.resolve_tmaster()
        if tmaster is None or self.heron.chaos is None:
            return False
        self.heron.chaos.add_partition(Partition(
            start=self.heron.sim.now, duration=fault.duration,
            machines=frozenset({tmaster.location.machine_id})))
        return True

    def _fault_expire_master_session(self, fault: MasterFault) -> bool:
        tmaster = self.resolve_tmaster()
        if tmaster is None or tmaster.session is None \
                or not tmaster.session.alive:
            return False
        tmaster.session.expire()
        return True

    def resolve_tmaster(self) -> Optional[TopologyMaster]:
        tmaster = self.tmaster
        if tmaster is not None and tmaster.alive:
            return tmaster
        return None

    def resolve_coordinator(self) -> Optional[CheckpointCoordinator]:
        coordinator = self.coordinator
        if coordinator is not None and coordinator.alive:
            return coordinator
        return None

    def _alive_stmgrs(self) -> Dict[int, StreamManager]:
        return {cid: sm for cid, sm in self.sms.items() if sm.alive}

    def _component_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-component metric sums from the current TM (autoscaler feed)."""
        tmaster = self.resolve_tmaster()
        if tmaster is None:
            return {}
        return tmaster.component_totals()

    def _any_backpressure(self) -> bool:
        """True while any Stream Manager holds the topology in
        backpressure (the autoscaler's saturation signal)."""
        return any(sm.in_backpressure for sm in self.sms.values()
                   if sm.alive)

    def launch_container(self, container: Container,
                         plan: ContainerPlan) -> None:
        heron = self.heron
        cid = plan.id
        relaunch = cid in self._launched_cids
        self._launched_cids.add(cid)
        if cid in self.container_keys:
            # Failure recovery relaunches straight over dead bookkeeping;
            # fold the dead instances' counters before replacing them.
            self.stop_container(cid)
        sm = StreamManager(
            heron.sim, cid, location=container.location(),
            network=heron.network, ledger=heron.ledger, config=self.config,
            costs=heron.costs, topology_name=self.topology.name,
            resolve_tmaster=self.resolve_tmaster, statemgr=heron.statemgr,
            tmaster_path=self.paths.tmaster_location,
            resolve_coordinator=self.resolve_coordinator,
            rng=heron.rng.stream(f"chaos.backoff.{cid}"))
        container.attach(sm)
        self.sms[cid] = sm

        mm = MetricsManager(
            heron.sim, cid, location=container.location(),
            network=heron.network, ledger=heron.ledger, costs=heron.costs,
            resolve_tmaster=self.resolve_tmaster,
            forward_interval=float(self.config.get(
                Keys.METRICS_FORWARD_INTERVAL_SECS)))
        container.attach(mm)
        self.mms[cid] = mm

        keys: List[InstanceKey] = []
        for inst_plan in plan.instances:
            key: InstanceKey = (inst_plan.component, inst_plan.task_id)
            spec = self.topology.component(inst_plan.component)
            user = spec.spout if self.topology.is_spout(
                inst_plan.component) else spec.bolt
            instance = HeronInstance(
                heron.sim, key, location=container.location(),
                network=heron.network, ledger=heron.ledger,
                user_component=user, config=self.config, costs=heron.costs,
                topology_name=self.topology.name,
                parallelism=self.topology.parallelism_of(
                    inst_plan.component),
                spout_components=self.spout_components,
                stream_manager=sm, metrics_manager=mm,
                instance_index=next(heron._instance_indices),
                resolve_coordinator=self.resolve_coordinator)
            container.attach(instance)
            sm.register_local(key, instance)
            self.instances[key] = instance
            keys.append(key)
        self.container_keys[cid] = keys
        if relaunch and self.checkpointing:
            heron.sim.schedule(0.0, self._request_restore)

    def request_relaunch(self, container_id: int) -> None:
        """TM failure detection asked for a container relaunch; run the
        scheduler action outside the TM's handler turn."""
        self.heron.sim.schedule(0.0, self._relaunch, container_id)

    def _relaunch(self, container_id: int) -> None:
        if self.heron.topologies.get(self.topology.name) is not self:
            return  # topology was killed meanwhile
        try:
            self.heron.restart_topology(self.topology.name, container_id)
        except SchedulerError:
            # The framework may already be mid-recovery for this
            # container (hard kill racing slow detection); the relaunch
            # it performs supersedes ours.
            pass

    def _request_restore(self) -> None:
        """Ask the coordinator to roll the topology back to its last
        committed checkpoint. Retries while the coordinator's own
        container is mid-relaunch; gives up if the topology was killed."""
        if self.heron.topologies.get(self.topology.name) is not self:
            return
        coordinator = self.resolve_coordinator()
        if coordinator is None:
            self.heron.sim.schedule(0.05, self._request_restore)
            return
        self.heron.sim.schedule(0.0, coordinator.deliver, RestoreRequest())

    def stop_container(self, container_id: int) -> None:
        """Drop runtime bookkeeping for a container being released.

        Counters of the dying instances are folded into the retired
        totals so topology metrics stay monotonic across restarts and
        scale-downs. (The actors themselves are killed by the framework
        when the container is released.)
        """
        self.sms.pop(container_id, None)
        self.mms.pop(container_id, None)
        for key in self.container_keys.pop(container_id, []):
            instance = self.instances.pop(key, None)
            if instance is None:
                continue
            retired = self.retired_counters.setdefault(
                key[0], {"emitted": 0.0, "executed": 0.0, "acked": 0.0,
                         "failed": 0.0})
            retired["emitted"] += instance.emitted_count
            retired["executed"] += instance.executed_count
            retired["acked"] += instance.acked_count
            retired["failed"] += instance.failed_count
            self.retired_latency.merge(instance.latency)

    # -- scaling ----------------------------------------------------------------
    def _feed_measured_traffic(self) -> None:
        """Hand the packing policy the topology's *measured* per-component
        emit totals so a placement-aware repack (R-Storm) re-optimizes on
        observed traffic instead of the static unit-rate model."""
        tmaster = self.resolve_tmaster()
        if tmaster is None:
            return
        rates = {component: row.get("emitted", 0.0)
                 for component, row in tmaster.component_totals().items()
                 if row.get("emitted", 0.0) > 0.0}
        if rates:
            self.manager.set_measured_traffic(rates)

    def apply_scaling(self, parallelism_changes: Mapping[str, int]) -> None:
        new_topology = self.topology.with_parallelism(parallelism_changes)
        self._feed_measured_traffic()
        new_plan = self.manager.repack(self.packing_plan,
                                       parallelism_changes)
        self.topology = new_topology
        self.packing_plan = new_plan
        self.pplan = PhysicalPlan(new_topology, new_plan)
        self.heron.statemgr.put(self.paths.packing_plan, new_plan.to_json())
        self.scheduler.on_update(
            UpdateTopologyRequest(self.topology.name, new_plan))
        tmaster = self.resolve_tmaster()
        if tmaster is not None:
            tmaster.update_plan(self.pplan)
        coordinator = self.resolve_coordinator()
        if coordinator is not None:
            coordinator.update_plan(self.pplan)
        controller = self.controller
        if controller is not None and controller.alive:
            controller.update_plan(self.pplan)

    def request_rescale(self, parallelism_changes: Mapping[str, int]) -> None:
        """The ScalingController asked for a live rescale; run it outside
        the controller's own handler turn."""
        self.heron.sim.schedule(0.0, self._rescale,
                                dict(parallelism_changes))

    def _rescale(self, parallelism_changes: Dict[str, int]) -> None:
        if self.heron.topologies.get(self.topology.name) is not self:
            return  # topology was killed meanwhile
        self.apply_rescale(parallelism_changes)

    def apply_rescale(self, parallelism_changes: Mapping[str, int]) -> None:
        """One orchestrated live rescale: repack + relaunch, then roll the
        whole topology back to its last committed checkpoint under the new
        shape. ``restore_into`` re-partitions key-grouped state across the
        parallelism change and the spouts rewind to their checkpointed
        offsets, so counts stay effectively-once across the rescale —
        progress since that checkpoint is simply replayed.
        """
        self.apply_scaling(parallelism_changes)
        if self.checkpointing:
            # Changed containers are bounced by the scheduler (each
            # relaunch schedules its own restore request); this explicit
            # request covers the case where only *fresh* containers were
            # added. The coordinator coalesces same-instant duplicates.
            self.heron.sim.schedule(0.0, self._request_restore)


class TopologyHandle:
    """User-facing view of a running topology: metrics + lifecycle."""

    def __init__(self, heron: HeronCluster,
                 runtime: _TopologyRuntime) -> None:
        self._heron = heron
        self._runtime = runtime
        self.name = runtime.topology.name

    # -- lifecycle shortcuts -----------------------------------------------------
    def kill(self) -> None:
        """Kill this topology."""
        self._heron.kill_topology(self.name)

    def restart(self, container_id: Optional[int] = None) -> None:
        """Restart one container (or all)."""
        self._heron.restart_topology(self.name, container_id)

    def scale(self, parallelism_changes: Mapping[str, int]) -> None:
        """Change component parallelism at runtime (repack + onUpdate)."""
        self._heron.update_topology(self.name, parallelism_changes)

    def rescale(self, parallelism_changes: Mapping[str, int]) -> None:
        """Live rescale with state: scale, then restore key-grouped state
        into the new shape (the autoscaler's orchestration, manually)."""
        self._runtime.apply_rescale(dict(parallelism_changes))

    def activate(self) -> None:
        """Resume spout emission."""
        self._heron.activate(self.name)

    def deactivate(self) -> None:
        """Pause spout emission."""
        self._heron.deactivate(self.name)

    #: Poll backoff for :meth:`wait_until_running` — starts fine-grained
    #: for fast startup detection, backs off while waiting out a TM
    #: failover window (a dead master is not an error until the
    #: deadline; its replacement re-broadcasts the plan).
    _RUNNING_POLL = BackoffPolicy(base=0.01, cap=0.25, jitter=0.0)

    def wait_until_running(self, timeout: float = 10.0) -> None:
        """Advance time until the physical plan is live everywhere.

        Survives a TM failover window: the master is re-read every poll
        (picking up a failover replacement), with bounded-backoff waits
        in between, and only the deadline makes a dead master fatal.
        """
        deadline = self._heron.now + timeout
        attempt = 0
        while self._heron.now < deadline:
            tmaster = self._runtime.tmaster
            sms = self._runtime.sms.values()
            if (tmaster is not None and tmaster.alive
                    and tmaster.plan_broadcasts > 0
                    and all(sm.pplan is not None for sm in sms)):
                return
            step = min(self._RUNNING_POLL.delay(attempt),
                       deadline - self._heron.now)
            attempt += 1
            self._heron.run_for(step)
        tmaster = self._runtime.tmaster
        expected = sorted(self._runtime.pplan.container_ids)
        registered = set()
        if tmaster is not None and tmaster.alive:
            registered = {cid for cid, sm in tmaster.registrations.items()
                          if sm.alive}
        unregistered = [cid for cid in expected if cid not in registered]
        planless = sorted(cid for cid, sm in self._runtime.sms.items()
                          if sm.pplan is None)
        detail = (f"unregistered containers {unregistered}; "
                  f"containers without a physical plan {planless}")
        if tmaster is None or not tmaster.alive:
            detail += "; no live Topology Master"
        raise HeronError(
            f"topology {self.name!r} did not reach running within "
            f"{timeout}s: {detail}")

    # -- metrics ---------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-component counters (live + retired)."""
        result: Dict[str, Dict[str, float]] = {}
        for component, retired in self._runtime.retired_counters.items():
            result[component] = dict(retired)
        for (component, _task), inst in self._runtime.instances.items():
            row = result.setdefault(
                component, {"emitted": 0.0, "executed": 0.0,
                            "acked": 0.0, "failed": 0.0})
            row["emitted"] += inst.emitted_count
            row["executed"] += inst.executed_count
            row["acked"] += inst.acked_count
            row["failed"] += inst.failed_count
        return result

    def totals(self) -> Dict[str, float]:
        """Cumulative emitted/executed/acked/failed across all components."""
        totals = {"emitted": 0.0, "executed": 0.0, "acked": 0.0,
                  "failed": 0.0}
        for row in self.snapshot().values():
            for key in totals:
                totals[key] += row[key]
        return totals

    def latency_stats(self) -> WeightedStats:
        """End-to-end (spout emit → ack) latency over all spouts."""
        merged = WeightedStats()
        merged.merge(self._runtime.retired_latency)
        for (component, _task), inst in self._runtime.instances.items():
            if inst.is_spout:
                merged.merge(inst.latency)
        return merged

    def sm_totals(self) -> Dict[str, float]:
        """Aggregated Stream Manager counters across containers."""
        totals = {"tuples_routed": 0.0, "acks_routed": 0.0, "drains": 0.0,
                  "batches_in": 0.0, "batches_out": 0.0,
                  "dropped_batches": 0.0, "backpressure_starts": 0.0,
                  "retransmits": 0.0}
        for sm in self._runtime.sms.values():
            for key in totals:
                totals[key] += getattr(sm, key.replace("-", "_"))
        return totals

    def failure_stats(self) -> Dict[str, float]:
        """Fault-tolerance counters: TM failure detection and failover
        plus the SM reliable-channel link layer (see ``repro.chaos``)."""
        stats = {"suspected_failures": 0.0, "relaunches_requested": 0.0,
                 "retransmits": 0.0, "reliable_dups": 0.0,
                 "stale_reregisters": 0.0, "lease_expiries": 0.0,
                 "tm_failovers": float(self._runtime.tm_failovers),
                 "last_failover_at": self._runtime.last_failover_at,
                 "master_epoch": 0.0, "fenced_drops": 0.0,
                 "fenced_writes": 0.0, "tm_pause_expiries": 0.0}
        tmaster = self._runtime.tmaster
        if tmaster is not None:
            stats["suspected_failures"] = float(tmaster.suspected_failures)
            stats["relaunches_requested"] = \
                float(tmaster.relaunches_requested)
            stats["master_epoch"] = float(tmaster.master_epoch)
            stats["fenced_writes"] = float(tmaster.fenced_writes)
        for sm in self._runtime.sms.values():
            stats["retransmits"] += sm.retransmits
            stats["reliable_dups"] += sm.reliable_dups
            stats["stale_reregisters"] += sm.stale_reregisters
            stats["lease_expiries"] += sm.lease_expiries
            stats["fenced_drops"] += sm.fenced_drops
            stats["tm_pause_expiries"] += sm.tm_pause_expiries
        return stats

    def inject_master_fault(self, fault: "MasterFault") -> None:
        """Arm one TM-targeting chaos fault (fires at ``fault.at``,
        immediately if that instant has passed). The victim process or
        machine is resolved when the fault fires, so callers need not
        know the master's placement in advance."""
        self._runtime.fault_injector.arm(fault)

    def master_fault_stats(self) -> Dict[str, float]:
        """Armed/injected/missed counters of the control-plane injector."""
        return self._runtime.fault_injector.stats()

    @property
    def packing_plan(self) -> PackingPlan:
        return self._runtime.packing_plan

    @property
    def physical_plan(self) -> PhysicalPlan:
        return self._runtime.pplan

    def provisioned_cores(self) -> float:
        """CPU cores currently provisioned for this topology."""
        return self._heron.cluster.provisioned_cores(self.name)

    def pool_stats(self):
        """Aggregated SM cache-entry pool statistics."""
        acquires = hits = 0
        for sm in self._runtime.sms.values():
            acquires += sm.pool_stats.acquires
            hits += sm.pool_stats.hits
        return {"acquires": acquires, "hits": hits}

    def checkpoint_stats(self) -> Dict[str, float]:
        """Coordinator counters (zeros when checkpointing is off)."""
        coordinator = self._runtime.resolve_coordinator()
        if coordinator is None:
            return {"triggered": 0, "committed": 0, "aborted": 0,
                    "restores": 0, "last_committed_id": 0,
                    "last_commit_at": -1.0, "last_restore_at": -1.0}
        return {
            "triggered": coordinator.checkpoints_triggered,
            "committed": coordinator.checkpoints_committed,
            "aborted": coordinator.checkpoints_aborted,
            "restores": coordinator.restores_completed,
            "last_committed_id": coordinator.last_committed_id or 0,
            "last_commit_at": (
                coordinator.last_commit_at
                if coordinator.last_commit_at is not None else -1.0),
            "last_restore_at": (
                coordinator.last_restore_at
                if coordinator.last_restore_at is not None else -1.0),
        }

    @property
    def autoscaler(self) -> Optional[ScalingController]:
        """The live ScalingController (None when autoscaling is off) —
        its ``history``/``rescales`` logs feed the elastic figure."""
        controller = self._runtime.controller
        if controller is not None and controller.alive:
            return controller
        return None

    def autoscaler_stats(self) -> Dict[str, float]:
        """Controller counters (zeros when autoscaling is off)."""
        controller = self.autoscaler
        if controller is None:
            return {"ticks": 0.0, "rescales_up": 0.0, "rescales_down": 0.0,
                    "rescales": 0.0}
        return {"ticks": float(controller.ticks),
                "rescales_up": float(controller.rescales_up),
                "rescales_down": float(controller.rescales_down),
                "rescales": float(len(controller.rescales))}

    def tmaster_metrics(self) -> Dict[int, dict]:
        """Per-container metric summaries as collected by the Topology
        Master via the Metrics Managers (the control-plane metrics path:
        instance → MM → TM)."""
        tmaster = self._runtime.tmaster
        if tmaster is None or not tmaster.alive:
            return {}
        return dict(tmaster.container_metrics)
