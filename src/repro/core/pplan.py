"""The physical plan: where every task runs and how streams route.

Built from the logical :class:`~repro.api.topology.Topology` plus the
Resource Manager's :class:`~repro.packing.plan.PackingPlan`; distributed
by the Topology Master to every Stream Manager, which derives its
per-edge routing tables (grouping instances) from it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.api.grouping import Grouping, GroupingInstance
from repro.api.topology import Topology
from repro.common.errors import TopologyError
from repro.core.messages import InstanceKey
from repro.packing.plan import PackingPlan


class PhysicalPlan:
    """Task placement + stream routing derived from topology × packing."""

    def __init__(self, topology: Topology, packing_plan: PackingPlan) -> None:
        if not packing_plan.matches_topology(
                {name: topology.parallelism_of(name)
                 for name in topology.components()}):
            raise TopologyError(
                f"packing plan does not match topology "
                f"{topology.name!r} parallelism")
        self.topology = topology
        self.packing_plan = packing_plan

        self.container_of: Dict[InstanceKey, int] = {}
        self.instances_by_container: Dict[int, List[InstanceKey]] = {}
        for container in packing_plan.containers:
            keys = []
            for inst in container.instances:
                key: InstanceKey = (inst.component, inst.task_id)
                self.container_of[key] = container.id
                keys.append(key)
            self.instances_by_container[container.id] = keys

        self.task_ids: Dict[str, List[int]] = {
            name: [t for t, _c in packing_plan.tasks_of(name)]
            for name in topology.components()
        }

    # -- queries ---------------------------------------------------------
    @property
    def container_ids(self) -> List[int]:
        return sorted(self.instances_by_container)

    def edges_from(self, component: str,
                   stream: str) -> List[Tuple[str, Grouping]]:
        """Outgoing edges of (component, stream) as (dest, grouping) pairs."""
        return self.topology.downstream(component, stream)

    def build_routing(self, component: str) -> Dict[
            str, List[Tuple[str, GroupingInstance]]]:
        """Per-stream routing table for tuples emitted by ``component``.

        Returns ``{stream: [(dest_component, grouping_instance), ...]}``.
        Each caller (SM) gets fresh grouping instances so per-edge state
        (shuffle rotation) is router-local, exactly as in Heron where
        each SM routes independently.
        """
        tables: Dict[str, List[Tuple[str, GroupingInstance]]] = {}
        user = self.topology._user_component(component)
        for stream in user.outputs:
            edges = []
            source_fields = self.topology.output_fields(component, stream)
            for dest, grouping in self.edges_from(component, stream):
                edges.append((dest, grouping.create(
                    source_fields, self.task_ids[dest])))
            if edges:
                tables[stream] = edges
        return tables

    def is_spout(self, component: str) -> bool:
        """Whether ``component`` is a spout."""
        return self.topology.is_spout(component)

    def upstream_tasks(self, component: str) -> frozenset:
        """Every task key feeding ``component`` (its barrier channels).

        A bolt aligning a checkpoint must collect exactly one marker per
        upstream *task*, regardless of how many streams connect the two
        components. Spouts have no upstream channels.
        """
        if self.topology.is_spout(component):
            return frozenset()
        sources = {inp.component
                   for inp in self.topology.bolts[component].inputs}
        return frozenset((source, task) for source in sorted(sources)
                         for task in self.task_ids[source])

    def downstream_keys(self, component: str) -> List[InstanceKey]:
        """Every task key fed by ``component``, across all its streams.

        Barrier markers are broadcast: a task passing a barrier sends one
        marker to *every* downstream task, whatever the grouping, so each
        receiver can align all of its input channels. Deduplicated (two
        streams to one bolt still mean one channel) and sorted for
        deterministic fan-out order.
        """
        dests = set()
        user = self.topology._user_component(component)
        for stream in user.outputs:
            for dest, _grouping in self.topology.downstream(component,
                                                            stream):
                dests.add(dest)
        return sorted((dest, task) for dest in dests
                      for task in self.task_ids[dest])

    def spout_keys(self) -> List[InstanceKey]:
        """Every spout task key in the plan."""
        return [(name, task) for name in self.topology.spouts
                for task in self.task_ids[name]]

    def describe(self) -> str:
        """Human-readable container-by-container listing."""
        lines = [f"physical plan for {self.topology.name}"]
        for cid in self.container_ids:
            members = ", ".join(f"{c}[{t}]"
                                for c, t in self.instances_by_container[cid])
            lines.append(f"  container {cid}: {members}")
        return "\n".join(lines)
