"""Typed configuration plumbing.

Heron lets the user configure every module either at topology submission
time (command line) or through configuration files. We model that with a
:class:`Config` — a typed, validating key/value map — and :class:`ConfigKey`
declarations that carry a default, a type, and an optional validator.

Modules declare their keys next to their implementation (see
``repro.api.config_keys`` for the topology-level ones) so each module remains
self-contained, per the paper's modularity goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class ConfigKey:
    """Declaration of one configuration knob.

    ``value_type`` is enforced on ``set``; ``validator`` (if given) receives
    the value and must return True for acceptance.
    """

    name: str
    default: Any = None
    value_type: Optional[type] = None
    validator: Optional[Callable[[Any], bool]] = None
    description: str = ""

    def check(self, value: Any) -> Any:
        """Validate (and lightly coerce) ``value`` for this key."""
        if self.value_type is not None and not isinstance(value, self.value_type):
            # Allow ints where floats are declared -- ubiquitous and safe.
            if self.value_type is float and isinstance(value, int) \
                    and not isinstance(value, bool):
                value = float(value)
            else:
                raise ConfigError(
                    f"config key {self.name!r} expects "
                    f"{self.value_type.__name__}, got "
                    f"{type(value).__name__}: {value!r}")
        if self.validator is not None and not self.validator(value):
            raise ConfigError(
                f"config key {self.name!r} rejected value {value!r}")
        return value


class Config:
    """A typed key/value configuration map.

    Keys may be set by :class:`ConfigKey` or by bare string name. Unknown
    string keys are allowed (modules may look for extension-specific keys)
    but typed keys are validated. ``Config`` objects are cheap to copy and
    support layered defaults via :meth:`with_overrides`.
    """

    def __init__(self, values: Optional[Mapping[str, Any]] = None) -> None:
        self._values: Dict[str, Any] = dict(values or {})

    # -- mutation ---------------------------------------------------------
    def set(self, key: "ConfigKey | str", value: Any) -> "Config":
        """Set a value; returns self for chaining."""
        if isinstance(key, ConfigKey):
            self._values[key.name] = key.check(value)
        else:
            self._values[str(key)] = value
        return self

    def update(self, other: "Config | Mapping[str, Any]") -> "Config":
        """Merge another config/mapping on top of this one (in place)."""
        if isinstance(other, Config):
            self._values.update(other._values)
        else:
            self._values.update(other)
        return self

    # -- lookup -----------------------------------------------------------
    def get(self, key: "ConfigKey | str", default: Any = None) -> Any:
        """Fetch a value; for a ConfigKey the declared default wins over
        ``default`` when ``default`` is None."""
        if isinstance(key, ConfigKey):
            if key.name in self._values:
                return self._values[key.name]
            return key.default if default is None else default
        return self._values.get(str(key), default)

    def require(self, key: "ConfigKey | str") -> Any:
        """Fetch a value that must be present (or have a non-None default)."""
        value = self.get(key)
        if value is None:
            name = key.name if isinstance(key, ConfigKey) else key
            raise ConfigError(f"required config key {name!r} is not set")
        return value

    def __contains__(self, key: "ConfigKey | str") -> bool:
        name = key.name if isinstance(key, ConfigKey) else str(key)
        return name in self._values

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(sorted(self._values.items()))

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Config) and self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self)
        return f"Config({inner})"

    # -- derivation ---------------------------------------------------------
    def copy(self) -> "Config":
        """An independent copy of this config."""
        return Config(self._values)

    def with_overrides(self, other: "Config | Mapping[str, Any]") -> "Config":
        """Return a new Config = self overlaid with ``other``."""
        return self.copy().update(other)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view of the stored values."""
        return dict(self._values)


@dataclass
class ConfigSchema:
    """A named collection of :class:`ConfigKey` declarations.

    Modules can publish a schema so tooling (CLI, docs) can enumerate the
    knobs they accept, and ``validate`` can check a whole Config at once.
    """

    name: str
    keys: Dict[str, ConfigKey] = field(default_factory=dict)

    def declare(self, key: ConfigKey) -> ConfigKey:
        """Register a key in this schema (duplicate names rejected)."""
        if key.name in self.keys:
            raise ConfigError(
                f"duplicate config key {key.name!r} in schema {self.name!r}")
        self.keys[key.name] = key
        return key

    def validate(self, config: Config) -> None:
        """Type-check every value in ``config`` that this schema declares."""
        for name, value in config:
            key = self.keys.get(name)
            if key is not None:
                key.check(value)

    def defaults(self) -> Config:
        """A Config holding every declared default (skipping Nones)."""
        cfg = Config()
        for key in self.keys.values():
            if key.default is not None:
                cfg.set(key, key.default)
        return cfg
