"""Exception hierarchy for the repro packages.

Every error raised by this library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure while still being
able to distinguish subsystems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid, missing, or ill-typed configuration value."""


class SimulationError(ReproError):
    """A violation of simulation-kernel invariants (time travel, double
    start, sends from dead actors, ...)."""


class SerializationError(ReproError):
    """Malformed wire data or misuse of the serialization substrate."""


class TopologyError(ReproError):
    """An invalid topology definition (unknown components, bad groupings,
    nonpositive parallelism, cycles where not allowed, ...)."""


class PackingError(ReproError):
    """The resource manager could not produce a valid packing plan."""


class SchedulerError(ReproError):
    """Scheduling-framework interaction failed (no capacity, unknown
    container, double submission, ...)."""


class StateError(ReproError):
    """State-manager failures: missing nodes, session expiry, conflicting
    ephemeral owners, ...."""


class HeronError(SchedulerError):
    """Engine-runtime failures: a topology that never reached running,
    containers that never registered, a control plane that gave up.
    Subclasses :class:`SchedulerError` so callers that already catch
    scheduling failures keep working."""
