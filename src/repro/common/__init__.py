"""Shared plumbing used across every repro subpackage.

This package deliberately contains no streaming-engine logic: only error
types, configuration handling, resource units, and identifier helpers that
the substrate and engine packages build on.
"""

from repro.common.config import Config, ConfigKey
from repro.common.errors import (
    ConfigError,
    PackingError,
    ReproError,
    SchedulerError,
    SerializationError,
    SimulationError,
    StateError,
    TopologyError,
)
from repro.common.resources import Resource
from repro.common.units import (
    GB,
    KB,
    MB,
    MILLIS,
    MINUTES,
    SECONDS,
    format_bytes,
    format_duration,
)

__all__ = [
    "Config",
    "ConfigKey",
    "ConfigError",
    "PackingError",
    "ReproError",
    "Resource",
    "SchedulerError",
    "SerializationError",
    "SimulationError",
    "StateError",
    "TopologyError",
    "GB",
    "KB",
    "MB",
    "MILLIS",
    "MINUTES",
    "SECONDS",
    "format_bytes",
    "format_duration",
]
