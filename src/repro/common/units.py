"""Units used throughout the simulator and engine.

Simulated time is a ``float`` number of **seconds**. Byte quantities are
plain ``int`` bytes. The constants here exist so call sites read naturally
(``5 * MILLIS`` rather than ``0.005``).
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
SECONDS = 1.0
MILLIS = 1e-3
MICROS = 1e-6
MINUTES = 60.0

# --- space -----------------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def format_duration(seconds: float) -> str:
    """Render a simulated duration in a human-friendly unit.

    >>> format_duration(0.0025)
    '2.500ms'
    >>> format_duration(90)
    '1.50min'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds / MICROS:.3f}us"
    if seconds < 1.0:
        return f"{seconds / MILLIS:.3f}ms"
    if seconds < MINUTES:
        return f"{seconds:.3f}s"
    return f"{seconds / MINUTES:.2f}min"


def format_bytes(count: int) -> str:
    """Render a byte count in a human-friendly unit.

    >>> format_bytes(2048)
    '2.0KB'
    """
    if count < 0:
        return "-" + format_bytes(-count)
    if count < KB:
        return f"{count}B"
    if count < MB:
        return f"{count / KB:.1f}KB"
    if count < GB:
        return f"{count / MB:.1f}MB"
    return f"{count / GB:.2f}GB"


def tuples_per_min(tuple_count: float, seconds: float) -> float:
    """Convert a tuple count over a window to tuples/minute (paper units)."""
    if seconds <= 0:
        raise ValueError(f"window must be positive, got {seconds}")
    return tuple_count * MINUTES / seconds


def millions_per_min(tuple_count: float, seconds: float) -> float:
    """Convert a tuple count over a window to million tuples/minute."""
    return tuples_per_min(tuple_count, seconds) / 1e6
