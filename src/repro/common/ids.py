"""Identifier helpers.

The engine names things hierarchically — ``topology/container/instance`` —
and several subsystems need compact, deterministic, process-unique ids.
Everything here is deterministic (no uuid/time) so simulations replay
identically.
"""

from __future__ import annotations

import itertools
import re
from typing import Iterator

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def check_name(name: str, what: str = "name") -> str:
    """Validate a user-supplied component/topology name.

    Names must be non-empty, start alphanumeric, and contain only
    alphanumerics, ``_``, ``.`` and ``-`` (they are embedded in state-manager
    paths and instance ids).
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"invalid {what}: {name!r} (must match {_NAME_RE.pattern})")
    return name


def instance_id(component: str, task_id: int, container_id: int) -> str:
    """The canonical Heron instance id: ``container_<c>_<component>_<task>``."""
    return f"container_{container_id}_{component}_{task_id}"


def parse_instance_id(iid: str) -> tuple[int, str, int]:
    """Inverse of :func:`instance_id`; returns (container, component, task)."""
    match = re.match(r"^container_(\d+)_(.+)_(\d+)$", iid)
    if not match:
        raise ValueError(f"not an instance id: {iid!r}")
    return int(match.group(1)), match.group(2), int(match.group(3))


class IdGenerator:
    """A deterministic counter-based id source.

    >>> gen = IdGenerator("actor")
    >>> gen.next(), gen.next()
    ('actor-0', 'actor-1')
    """

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._counter: Iterator[int] = itertools.count()

    def next(self) -> str:
        """The next id string (prefix-N)."""
        return f"{self._prefix}-{next(self._counter)}"

    def next_int(self) -> int:
        """The next bare integer id."""
        return next(self._counter)
