"""Resource descriptors (CPU / RAM / disk) used by packing and scheduling.

A :class:`Resource` is an immutable triple. CPU is measured in (fractional)
cores, RAM and disk in bytes. The arithmetic here is what the Resource
Manager's packing algorithms and the schedulers' capacity checks use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import format_bytes


@dataclass(frozen=True, order=False)
class Resource:
    """An immutable (cpu cores, ram bytes, disk bytes) requirement/capacity."""

    cpu: float = 0.0
    ram: int = 0
    disk: int = 0

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.ram < 0 or self.disk < 0:
            raise ValueError(f"resource dimensions must be >= 0: {self}")

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.cpu + other.cpu, self.ram + other.ram,
                        self.disk + other.disk)

    def __sub__(self, other: "Resource") -> "Resource":
        """Subtract; raises ValueError if any dimension would go negative."""
        return Resource(self.cpu - other.cpu, self.ram - other.ram,
                        self.disk - other.disk)

    def scale(self, factor: float) -> "Resource":
        """Return this resource multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return Resource(self.cpu * factor, int(self.ram * factor),
                        int(self.disk * factor))

    # -- comparisons ----------------------------------------------------
    def fits_in(self, capacity: "Resource") -> bool:
        """True if this requirement fits within ``capacity`` on every
        dimension (the partial order used by bin packing)."""
        return (self.cpu <= capacity.cpu + 1e-9
                and self.ram <= capacity.ram
                and self.disk <= capacity.disk)

    def dominates(self, other: "Resource") -> bool:
        """True if every dimension of self is >= the same dimension of
        ``other``."""
        return other.fits_in(self)

    def max_with(self, other: "Resource") -> "Resource":
        """Component-wise maximum (used to size homogeneous containers)."""
        return Resource(max(self.cpu, other.cpu), max(self.ram, other.ram),
                        max(self.disk, other.disk))

    @property
    def is_zero(self) -> bool:
        return self.cpu == 0 and self.ram == 0 and self.disk == 0

    @staticmethod
    def zero() -> "Resource":
        return Resource(0.0, 0, 0)

    @staticmethod
    def total(resources) -> "Resource":
        """Sum an iterable of resources."""
        acc = Resource.zero()
        for res in resources:
            acc = acc + res
        return acc

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Resource(cpu={self.cpu:g}, ram={format_bytes(self.ram)}, "
                f"disk={format_bytes(self.disk)})")
