"""Engine message schemas over the wire format.

Each message class knows how to encode itself into a :class:`WireWriter`
and decode itself from a :class:`WireReader`. :func:`encode_message` /
:func:`decode_message` add a one-varint type envelope so a receiver can
dispatch without prior knowledge — this is the "well-specified
communication protocol" layer the paper's modules talk through.

Field numbers are part of the protocol and must not be renumbered.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, List, Type

from repro.common.errors import SerializationError
from repro.serialization.wire import WireReader, WireWriter, WireType


class MessageRegistry:
    """Maps message classes to stable type ids for the envelope."""

    def __init__(self) -> None:
        self._by_id: Dict[int, Type["Message"]] = {}
        self._by_cls: Dict[Type["Message"], int] = {}

    def register(self, type_id: int, cls: Type["Message"]) -> Type["Message"]:
        """Bind a message class to a stable envelope type id."""
        if type_id in self._by_id:
            raise SerializationError(
                f"message type id {type_id} already registered "
                f"({self._by_id[type_id].__name__})")
        self._by_id[type_id] = cls
        self._by_cls[cls] = type_id
        return cls

    def id_of(self, cls: Type["Message"]) -> int:
        """The type id of a registered class."""
        try:
            return self._by_cls[cls]
        except KeyError:
            raise SerializationError(
                f"unregistered message class {cls.__name__}") from None

    def class_of(self, type_id: int) -> Type["Message"]:
        """The class registered under a type id."""
        try:
            return self._by_id[type_id]
        except KeyError:
            raise SerializationError(
                f"unknown message type id {type_id}") from None


DEFAULT_REGISTRY = MessageRegistry()


def _register(type_id: int):
    def decorator(cls):
        return DEFAULT_REGISTRY.register(type_id, cls)
    return decorator


class Message:
    """Base class: encode/decode contract."""

    def encode_into(self, writer: WireWriter) -> None:
        """Write this message's fields into ``writer``."""
        raise NotImplementedError

    @classmethod
    def decode_from(cls, reader: WireReader) -> "Message":
        raise NotImplementedError


def encode_message(message: Message,
                   registry: MessageRegistry = DEFAULT_REGISTRY) -> bytes:
    """Encode with a type-id envelope: ``[type_id varint][payload]``."""
    writer = WireWriter()
    writer.write_varint(registry.id_of(type(message)))
    message.encode_into(writer)
    return writer.getvalue()


def decode_message(data: bytes,
                   registry: MessageRegistry = DEFAULT_REGISTRY) -> Message:
    """Inverse of :func:`encode_message`."""
    reader = WireReader(data)
    type_id = reader.read_varint()
    cls = registry.class_of(type_id)
    return cls.decode_from(reader)


# ---------------------------------------------------------------------------
# Data plane
# ---------------------------------------------------------------------------

@_register(1)
@dataclass
class TupleBatch(Message):
    """A batch of data tuples flowing between instances via SMs.

    ``values`` carries the in-memory tuple payloads on the simulated data
    plane; on the wire they are represented by ``payload`` bytes (or, when
    only cost matters, by ``payload_size``). ``tuple_ids`` are the ack ids
    (0 when acking is disabled); ``anchors`` carry the upstream tuple-tree
    ids for XOR ack tracking.
    """

    FIELD_DEST = 1  # the one field lazy deserialization must locate

    dest_instance: str = ""
    source_instance: str = ""
    stream: str = "default"
    batch_id: int = 0
    tuple_ids: List[int] = dc_field(default_factory=list)
    anchors: List[int] = dc_field(default_factory=list)
    payload: bytes = b""
    payload_size: int = 0
    values: List[Any] = dc_field(default_factory=list)  # not wire-encoded

    @property
    def count(self) -> int:
        return len(self.values) if self.values else len(self.tuple_ids)

    def encode_into(self, writer: WireWriter) -> None:
        writer.field_str(self.FIELD_DEST, self.dest_instance)
        writer.field_str(2, self.source_instance)
        writer.field_str(3, self.stream)
        writer.field_varint(4, self.batch_id)
        writer.field_packed_varints(5, self.tuple_ids)
        writer.field_packed_varints(6, self.anchors)
        writer.field_bytes(7, self.payload)
        writer.field_varint(8, self.payload_size)

    @classmethod
    def decode_from(cls, reader: WireReader) -> "TupleBatch":
        msg = cls()
        for field, wire_type in reader.fields():
            if field == cls.FIELD_DEST:
                msg.dest_instance = reader.read_str()
            elif field == 2:
                msg.source_instance = reader.read_str()
            elif field == 3:
                msg.stream = reader.read_str()
            elif field == 4:
                msg.batch_id = reader.read_varint()
            elif field == 5:
                msg.tuple_ids = reader.read_packed_varints()
            elif field == 6:
                msg.anchors = reader.read_packed_varints()
            elif field == 7:
                msg.payload = reader.read_bytes()
            elif field == 8:
                msg.payload_size = reader.read_varint()
            else:
                reader.skip(wire_type)
        return msg

    def reset(self) -> None:
        """Clear for reuse via an :class:`ObjectPool`."""
        self.dest_instance = ""
        self.source_instance = ""
        self.stream = "default"
        self.batch_id = 0
        self.tuple_ids = []
        self.anchors = []
        self.payload = b""
        self.payload_size = 0
        self.values = []


@_register(2)
@dataclass
class AckBatch(Message):
    """A batch of ack/fail notifications routed back to a spout."""

    dest_instance: str = ""
    source_instance: str = ""
    acked_ids: List[int] = dc_field(default_factory=list)
    failed_ids: List[int] = dc_field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.acked_ids) + len(self.failed_ids)

    def encode_into(self, writer: WireWriter) -> None:
        writer.field_str(1, self.dest_instance)
        writer.field_str(2, self.source_instance)
        writer.field_packed_varints(3, self.acked_ids)
        writer.field_packed_varints(4, self.failed_ids)

    @classmethod
    def decode_from(cls, reader: WireReader) -> "AckBatch":
        msg = cls()
        for field, wire_type in reader.fields():
            if field == 1:
                msg.dest_instance = reader.read_str()
            elif field == 2:
                msg.source_instance = reader.read_str()
            elif field == 3:
                msg.acked_ids = reader.read_packed_varints()
            elif field == 4:
                msg.failed_ids = reader.read_packed_varints()
            else:
                reader.skip(wire_type)
        return msg

    def reset(self) -> None:
        """Clear for reuse via an :class:`ObjectPool`."""
        self.dest_instance = ""
        self.source_instance = ""
        self.acked_ids = []
        self.failed_ids = []


# ---------------------------------------------------------------------------
# Control plane
# ---------------------------------------------------------------------------

@_register(3)
@dataclass
class Register(Message):
    """A process announcing itself (kind + name + container)."""

    kind: str = ""
    name: str = ""
    container_id: int = 0

    def encode_into(self, writer: WireWriter) -> None:
        writer.field_str(1, self.kind)
        writer.field_str(2, self.name)
        writer.field_varint(3, self.container_id)

    @classmethod
    def decode_from(cls, reader: WireReader) -> "Register":
        msg = cls()
        for field, wire_type in reader.fields():
            if field == 1:
                msg.kind = reader.read_str()
            elif field == 2:
                msg.name = reader.read_str()
            elif field == 3:
                msg.container_id = reader.read_varint()
            else:
                reader.skip(wire_type)
        return msg


@_register(4)
@dataclass
class Heartbeat(Message):
    """Periodic liveness signal with a timestamp and a metrics checksum."""

    sender: str = ""
    time: float = 0.0
    sequence: int = 0

    def encode_into(self, writer: WireWriter) -> None:
        writer.field_str(1, self.sender)
        writer.field_double(2, self.time)
        writer.field_varint(3, self.sequence)

    @classmethod
    def decode_from(cls, reader: WireReader) -> "Heartbeat":
        msg = cls()
        for field, wire_type in reader.fields():
            if field == 1:
                msg.sender = reader.read_str()
            elif field == 2:
                msg.time = reader.read_double()
            elif field == 3:
                msg.sequence = reader.read_varint()
            else:
                reader.skip(wire_type)
        return msg


@_register(5)
@dataclass
class StateEntry(Message):
    """One state-manager node, used by the local-filesystem backend."""

    path: str = ""
    data: bytes = b""
    version: int = 0
    ephemeral: bool = False

    def encode_into(self, writer: WireWriter) -> None:
        writer.field_str(1, self.path)
        writer.field_bytes(2, self.data)
        writer.field_varint(3, self.version)
        writer.field_bool(4, self.ephemeral)

    @classmethod
    def decode_from(cls, reader: WireReader) -> "StateEntry":
        msg = cls()
        for field, wire_type in reader.fields():
            if field == 1:
                msg.path = reader.read_str()
            elif field == 2:
                msg.data = reader.read_bytes()
            elif field == 3:
                msg.version = reader.read_varint()
            elif field == 4:
                msg.ephemeral = bool(reader.read_varint())
            else:
                reader.skip(wire_type)
        return msg


def peek_destination(data: bytes) -> str:
    """Lazy-deserialization helper: extract only a TupleBatch's destination.

    Scans the envelope + fields, decoding *just* field 1 and skipping
    everything else — this is exactly what the optimized Stream Manager
    does before forwarding the still-serialized payload (Section V-A).
    """
    reader = WireReader(data)
    type_id = reader.read_varint()
    if DEFAULT_REGISTRY.class_of(type_id) is not TupleBatch:
        raise SerializationError("peek_destination expects a TupleBatch")
    for field, wire_type in reader.fields():
        if field == TupleBatch.FIELD_DEST and wire_type == WireType.LENGTH:
            return reader.read_str()
        reader.skip(wire_type)
    raise SerializationError("TupleBatch has no destination field")
