"""A Protocol-Buffers-family wire format: varints + tag-length-value.

Supports the three wire types the engine needs:

* ``VARINT`` — unsigned LEB128 varints (signed values use zigzag),
* ``FIXED64`` — little-endian IEEE-754 doubles,
* ``LENGTH`` — length-delimited byte strings (strings, nested messages,
  packed repeated fields).

Field numbers 1..2**28 are supported. Unknown fields can be skipped, which
is what makes lazy deserialization (reading one header field and ignoring
the rest) possible.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import SerializationError

_DOUBLE = struct.Struct("<d")


class WireType:
    """Wire-type codes (low 3 bits of a field tag)."""

    VARINT = 0
    FIXED64 = 1
    LENGTH = 2

    ALL = (VARINT, FIXED64, LENGTH)


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one with small absolute values small.

    >>> [zigzag_encode(v) for v in (0, -1, 1, -2, 2)]
    [0, 1, 2, 3, 4]
    """
    return (value << 1) ^ (value >> 63) if value >= -(1 << 63) else \
        _raise_range(value)


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def _raise_range(value: int) -> int:
    raise SerializationError(f"signed value out of 64-bit range: {value}")


class WireWriter:
    """Builds an encoded message into an internal buffer."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    # -- primitives -----------------------------------------------------
    def write_varint(self, value: int) -> None:
        """Append an unsigned LEB128 varint."""
        if value < 0:
            raise SerializationError(
                f"varints are unsigned; use write_signed for {value}")
        buf = self._buf
        while value >= 0x80:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def write_tag(self, field: int, wire_type: int) -> None:
        """Append a field tag (number + wire type)."""
        if field < 1:
            raise SerializationError(f"field numbers start at 1: {field}")
        if wire_type not in WireType.ALL:
            raise SerializationError(f"unknown wire type: {wire_type}")
        self.write_varint((field << 3) | wire_type)

    # -- field writers -----------------------------------------------------
    def field_varint(self, field: int, value: int) -> None:
        """Append an unsigned varint field."""
        self.write_tag(field, WireType.VARINT)
        self.write_varint(value)

    def field_signed(self, field: int, value: int) -> None:
        """Append a zigzag-encoded signed field."""
        self.write_tag(field, WireType.VARINT)
        self.write_varint(zigzag_encode(value))

    def field_bool(self, field: int, value: bool) -> None:
        """Append a boolean field (varint 0/1)."""
        self.field_varint(field, 1 if value else 0)

    def field_double(self, field: int, value: float) -> None:
        """Append an IEEE-754 double field."""
        self.write_tag(field, WireType.FIXED64)
        self._buf += _DOUBLE.pack(value)

    def field_bytes(self, field: int, value: bytes) -> None:
        """Append a length-delimited bytes field."""
        self.write_tag(field, WireType.LENGTH)
        self.write_varint(len(value))
        self._buf += value

    def field_str(self, field: int, value: str) -> None:
        """Append a UTF-8 string field."""
        self.field_bytes(field, value.encode("utf-8"))

    def field_packed_varints(self, field: int, values: List[int]) -> None:
        """Packed repeated varints (one length-delimited blob)."""
        inner = WireWriter()
        for value in values:
            inner.write_varint(value)
        self.field_bytes(field, inner.getvalue())

    def field_message(self, field: int, inner: "WireWriter") -> None:
        """Embed a nested message built in another writer."""
        self.field_bytes(field, inner.getvalue())

    # -- output -------------------------------------------------------------
    def getvalue(self) -> bytes:
        """The encoded message bytes."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def clear(self) -> None:
        """Reset for reuse (the memory-pool path)."""
        self._buf.clear()


class WireReader:
    """Streaming decoder over an encoded message."""

    __slots__ = ("_data", "_pos", "_end")

    def __init__(self, data: bytes, start: int = 0,
                 end: Optional[int] = None) -> None:
        self._data = data
        self._pos = start
        self._end = len(data) if end is None else end
        if not (0 <= start <= self._end <= len(data)):
            raise SerializationError(
                f"bad reader window [{start}, {end}) over {len(data)} bytes")

    # -- primitives --------------------------------------------------------
    def read_varint(self) -> int:
        """Read an unsigned LEB128 varint."""
        data, pos, end = self._data, self._pos, self._end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise SerializationError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise SerializationError("varint too long")
        self._pos = pos
        return result

    def read_signed(self) -> int:
        """Read a zigzag-encoded signed varint."""
        return zigzag_decode(self.read_varint())

    def read_tag(self) -> Tuple[int, int]:
        """Read a field tag; returns (field number, wire type)."""
        tag = self.read_varint()
        field, wire_type = tag >> 3, tag & 0x7
        if field < 1 or wire_type not in WireType.ALL:
            raise SerializationError(f"bad tag: field={field} wt={wire_type}")
        return field, wire_type

    def read_double(self) -> float:
        """Read an IEEE-754 double."""
        if self._pos + 8 > self._end:
            raise SerializationError("truncated double")
        (value,) = _DOUBLE.unpack_from(self._data, self._pos)
        self._pos += 8
        return value

    def read_bytes(self) -> bytes:
        """Read a length-delimited bytes field."""
        length = self.read_varint()
        if self._pos + length > self._end:
            raise SerializationError(
                f"truncated length-delimited field ({length} bytes)")
        value = self._data[self._pos:self._pos + length]
        self._pos += length
        return bytes(value)

    def read_str(self) -> str:
        """Read a UTF-8 string field."""
        return self.read_bytes().decode("utf-8")

    def read_packed_varints(self) -> List[int]:
        """Read a packed repeated-varint field."""
        blob = self.read_bytes()
        inner = WireReader(blob)
        values = []
        while not inner.at_end:
            values.append(inner.read_varint())
        return values

    def read_message_reader(self) -> "WireReader":
        """A sub-reader over a nested message without copying."""
        length = self.read_varint()
        if self._pos + length > self._end:
            raise SerializationError("truncated nested message")
        sub = WireReader(self._data, self._pos, self._pos + length)
        self._pos += length
        return sub

    # -- skipping (the enabler of lazy deserialization) ----------------------
    def skip(self, wire_type: int) -> None:
        """Skip one field's value without decoding it."""
        if wire_type == WireType.VARINT:
            self.read_varint()
        elif wire_type == WireType.FIXED64:
            if self._pos + 8 > self._end:
                raise SerializationError("truncated fixed64 while skipping")
            self._pos += 8
        elif wire_type == WireType.LENGTH:
            length = self.read_varint()
            if self._pos + length > self._end:
                raise SerializationError("truncated field while skipping")
            self._pos += length
        else:  # pragma: no cover - read_tag rejects these already
            raise SerializationError(f"cannot skip wire type {wire_type}")

    # -- iteration helpers -----------------------------------------------------
    def fields(self) -> Iterator[Tuple[int, int]]:
        """Yield (field, wire_type) until the end of the window.

        The caller must consume or :meth:`skip` each field's value before
        advancing the iterator.
        """
        while not self.at_end:
            yield self.read_tag()

    @property
    def at_end(self) -> bool:
        return self._pos >= self._end

    @property
    def remaining(self) -> int:
        return self._end - self._pos
