"""Protocol-Buffers-style serialization substrate.

Heron's Stream Manager exchanges Protocol Buffer messages between
processes; its two headline optimizations (Section V-A) are *memory pools*
(reusing message objects instead of new/delete per tuple) and *lazy
deserialization* (parsing only the destination field of an incoming
message and forwarding the payload as opaque bytes).

This package provides those three pieces from scratch:

* :mod:`repro.serialization.wire` — a varint/tag-length-value wire format
  (the same encoding family as protobuf),
* :mod:`repro.serialization.messages` — the engine's message schemas with
  encode/decode and a type registry,
* :mod:`repro.serialization.pool` — object memory pools with hit/miss
  statistics,
* :mod:`repro.serialization.lazy` — lazy message views that decode only
  the routing header and expose the rest as bytes.

The control plane (state-manager persistence, registration, heartbeats)
round-trips through this wire format for real. On the simulated data
plane, tuple payloads ride as Python lists for simulation speed and the
(de)serialization CPU cost is charged via the cost model — the *code
paths* (pool acquire/release, lazy header-only access) are exercised by
the Stream Manager either way. See DESIGN.md §5.
"""

from repro.serialization.lazy import LazyMessageView
from repro.serialization.messages import (
    AckBatch,
    Heartbeat,
    MessageRegistry,
    Register,
    TupleBatch,
    decode_message,
    encode_message,
)
from repro.serialization.pool import ObjectPool, PoolStats
from repro.serialization.wire import WireReader, WireWriter, WireType

__all__ = [
    "AckBatch",
    "Heartbeat",
    "LazyMessageView",
    "MessageRegistry",
    "ObjectPool",
    "PoolStats",
    "Register",
    "TupleBatch",
    "WireReader",
    "WireType",
    "WireWriter",
    "decode_message",
    "encode_message",
]
