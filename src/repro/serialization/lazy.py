"""Lazy message views.

The optimized Stream Manager "parses only the destination field that
determines the particular Heron Instance that must receive the tuple. The
tuple is not deserialized but is forwarded as a serialized byte array"
(Section V-A). :class:`LazyMessageView` is that object: it wraps the
encoded bytes, decodes the routing header on demand, and only
materializes the full message if someone actually needs it.
"""

from __future__ import annotations

from typing import Optional

from repro.serialization.messages import (Message, TupleBatch,
                                          decode_message, peek_destination)


class LazyMessageView:
    """A view over an encoded :class:`TupleBatch` that defers decoding.

    * :meth:`destination` parses just the destination field (cheap),
    * :attr:`raw` is the still-serialized byte array to forward,
    * :meth:`materialize` performs (and memoizes) the full decode.
    """

    __slots__ = ("_raw", "_destination", "_decoded")

    def __init__(self, raw: bytes) -> None:
        self._raw = raw
        self._destination: Optional[str] = None
        self._decoded: Optional[Message] = None

    @property
    def raw(self) -> bytes:
        return self._raw

    @property
    def size(self) -> int:
        return len(self._raw)

    def destination(self) -> str:
        """Decode only the destination field (memoized)."""
        if self._destination is None:
            if self._decoded is not None:
                self._destination = self._decoded.dest_instance  # type: ignore[attr-defined]
            else:
                self._destination = peek_destination(self._raw)
        return self._destination

    @property
    def is_materialized(self) -> bool:
        return self._decoded is not None

    def materialize(self) -> TupleBatch:
        """Full decode (memoized) — the path lazy deserialization avoids."""
        if self._decoded is None:
            decoded = decode_message(self._raw)
            if not isinstance(decoded, TupleBatch):
                raise TypeError(
                    f"LazyMessageView wraps a {type(decoded).__name__}, "
                    f"not a TupleBatch")
            self._decoded = decoded
            self._destination = decoded.dest_instance
        return self._decoded  # type: ignore[return-value]
