"""Object memory pools.

The optimized Stream Manager "allows reusability of the Protocol Buffer
objects by using memory pools to store dedicated objects and thus avoid
the expensive new/delete operations" (Section V-A). :class:`ObjectPool`
implements that: a bounded free list per object type, with acquire/release
semantics and statistics so tests (and the ablation benchmarks) can verify
reuse actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Optional, TypeVar

from repro.common.errors import SerializationError

T = TypeVar("T")


@dataclass
class PoolStats:
    """Counters describing pool effectiveness."""

    acquires: int = 0
    hits: int = 0        # served from the free list (no allocation)
    allocations: int = 0  # fresh objects created
    releases: int = 0
    discarded: int = 0   # released when the pool was full

    @property
    def hit_rate(self) -> float:
        return self.hits / self.acquires if self.acquires else 0.0


class ObjectPool(Generic[T]):
    """A bounded free-list pool for one object type.

    ``factory`` builds fresh objects; ``reset`` (default: the object's own
    ``reset()`` method) scrubs released objects before reuse so no state
    leaks across tuples — the bug class memory pools are notorious for.
    """

    def __init__(self, factory: Callable[[], T], *, capacity: int = 1024,
                 reset: Optional[Callable[[T], None]] = None) -> None:
        if capacity < 0:
            raise SerializationError(f"pool capacity must be >= 0: {capacity}")
        self._factory = factory
        self._capacity = capacity
        self._reset = reset
        self._free: List[T] = []
        self.stats = PoolStats()

    def acquire(self) -> T:
        """Take an object: reused when available, freshly built otherwise."""
        self.stats.acquires += 1
        if self._free:
            self.stats.hits += 1
            return self._free.pop()
        self.stats.allocations += 1
        return self._factory()

    def release(self, obj: T) -> None:
        """Return an object to the pool (scrubbed first)."""
        self.stats.releases += 1
        if len(self._free) >= self._capacity:
            self.stats.discarded += 1
            return
        if self._reset is not None:
            self._reset(obj)
        else:
            reset = getattr(obj, "reset", None)
            if reset is None:
                raise SerializationError(
                    f"{type(obj).__name__} has no reset(); pass reset= to "
                    f"ObjectPool")
            reset()
        self._free.append(obj)

    def preallocate(self, count: int) -> None:
        """Warm the pool with ``count`` fresh objects (up to capacity)."""
        for _ in range(min(count, self._capacity - len(self._free))):
            self.stats.allocations += 1
            self._free.append(self._factory())

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def capacity(self) -> int:
        return self._capacity
