"""Topology definition and the builder.

A :class:`Topology` is the validated, immutable logical plan: named
spouts and bolts with parallelism hints, edges with groupings, and the
topology config. Engines consume it; the Resource Manager packs it; the
State Manager stores (a description of) it.

Scaling ("adjust the parallelism of the components of a running Heron
topology", Section IV-A) is modeled by :meth:`Topology.with_parallelism`,
which derives a new logical plan; the Resource Manager's ``repack`` then
reconciles the physical placement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.component import Bolt, Spout
from repro.api.grouping import (AllGrouping, CustomGrouping, FieldsGrouping,
                                GlobalGrouping, Grouping, NoneGrouping,
                                PartialKeyGrouping, ShuffleGrouping)
from repro.api.tuples import DEFAULT_STREAM
from repro.common.config import Config
from repro.common.errors import TopologyError
from repro.common.ids import check_name
from repro.common.resources import Resource


@dataclass(frozen=True)
class InputSpec:
    """One incoming edge of a bolt: source component+stream and grouping."""

    component: str
    grouping: Grouping
    stream: str = DEFAULT_STREAM


@dataclass(frozen=True)
class SpoutSpec:
    """A declared spout: user object + parallelism + optional resources."""

    name: str
    spout: Spout
    parallelism: int
    resource: Optional[Resource] = None


@dataclass(frozen=True)
class BoltSpec:
    """A declared bolt: user object + parallelism + inputs + resources."""

    name: str
    bolt: Bolt
    parallelism: int
    inputs: Tuple[InputSpec, ...] = ()
    resource: Optional[Resource] = None


class Topology:
    """The validated logical plan. Construct via :class:`TopologyBuilder`."""

    def __init__(self, name: str, spouts: Mapping[str, SpoutSpec],
                 bolts: Mapping[str, BoltSpec], config: Config) -> None:
        self.name = check_name(name, "topology name")
        self.spouts: Dict[str, SpoutSpec] = dict(spouts)
        self.bolts: Dict[str, BoltSpec] = dict(bolts)
        self.config = config
        self._validate()

    # -- validation -----------------------------------------------------------
    def _validate(self) -> None:
        if not self.spouts:
            raise TopologyError(
                f"topology {self.name!r} has no spouts (no data sources)")
        for spec in list(self.spouts.values()) + list(self.bolts.values()):
            if spec.parallelism <= 0:
                raise TopologyError(
                    f"component {spec.name!r} has nonpositive parallelism "
                    f"{spec.parallelism}")
        for bolt in self.bolts.values():
            if not bolt.inputs:
                raise TopologyError(
                    f"bolt {bolt.name!r} has no inputs; it would never "
                    f"receive tuples")
            for inp in bolt.inputs:
                source = self.component(inp.component, missing_ok=True)
                if source is None:
                    raise TopologyError(
                        f"bolt {bolt.name!r} reads from unknown component "
                        f"{inp.component!r}")
                declared = self._user_component(inp.component).outputs
                if inp.stream not in declared:
                    raise TopologyError(
                        f"bolt {bolt.name!r} reads stream {inp.stream!r} of "
                        f"{inp.component!r}, which declares "
                        f"{sorted(declared)}")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Heron topologies are DAGs; reject cycles with a clear message."""
        edges: Dict[str, List[str]] = {name: [] for name in self.components()}
        for bolt in self.bolts.values():
            for inp in bolt.inputs:
                edges[inp.component].append(bolt.name)
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(node: str, stack: List[str]) -> None:
            mark = state.get(node)
            if mark == 1:
                return
            if mark == 0:
                cycle = stack[stack.index(node):] + [node]
                raise TopologyError(
                    f"topology {self.name!r} has a cycle: "
                    f"{' -> '.join(cycle)}")
            state[node] = 0
            stack.append(node)
            for succ in edges[node]:
                visit(succ, stack)
            stack.pop()
            state[node] = 1

        for name in self.components():
            visit(name, [])

    # -- lookups ---------------------------------------------------------------
    def components(self) -> List[str]:
        """All component names, spouts first, in insertion order."""
        return list(self.spouts) + list(self.bolts)

    def component(self, name: str, missing_ok: bool = False):
        """The spec of a component (raises unless missing_ok)."""
        spec = self.spouts.get(name) or self.bolts.get(name)
        if spec is None and not missing_ok:
            raise TopologyError(f"unknown component {name!r}")
        return spec

    def _user_component(self, name: str):
        spec = self.component(name)
        return spec.spout if isinstance(spec, SpoutSpec) else spec.bolt

    def parallelism_of(self, name: str) -> int:
        """Task count of one component."""
        return self.component(name).parallelism

    def is_spout(self, name: str) -> bool:
        """Whether the named component is a spout."""
        return name in self.spouts

    @property
    def total_instances(self) -> int:
        return sum(s.parallelism for s in self.spouts.values()) + \
            sum(b.parallelism for b in self.bolts.values())

    def downstream(self, component: str,
                   stream: str = DEFAULT_STREAM) -> List[Tuple[str, Grouping]]:
        """Edges out of (component, stream): [(bolt name, grouping), ...]."""
        result = []
        for bolt in self.bolts.values():
            for inp in bolt.inputs:
                if inp.component == component and inp.stream == stream:
                    result.append((bolt.name, inp.grouping))
        return result

    def output_fields(self, component: str,
                      stream: str = DEFAULT_STREAM) -> List[str]:
        """Declared output fields of (component, stream)."""
        return self._user_component(component).output_fields(stream)

    # -- scaling ----------------------------------------------------------------
    def with_parallelism(self, changes: Mapping[str, int]) -> "Topology":
        """A new Topology with some components' parallelism changed.

        This is the logical half of ``heron update``; the physical half is
        the Resource Manager's ``repack``.
        """
        spouts = dict(self.spouts)
        bolts = dict(self.bolts)
        for name, parallelism in changes.items():
            if parallelism <= 0:
                raise TopologyError(
                    f"parallelism for {name!r} must be positive: "
                    f"{parallelism}")
            if name in spouts:
                spouts[name] = replace(spouts[name], parallelism=parallelism)
            elif name in bolts:
                bolts[name] = replace(bolts[name], parallelism=parallelism)
            else:
                raise TopologyError(
                    f"cannot scale unknown component {name!r}")
        return Topology(self.name, spouts, bolts, self.config)

    def describe(self) -> str:
        """A short human-readable summary (used by the CLI and examples)."""
        lines = [f"topology {self.name}"]
        for spec in self.spouts.values():
            lines.append(f"  spout {spec.name} x{spec.parallelism}")
        for spec in self.bolts.values():
            inputs = ", ".join(
                f"{inp.component}/{inp.stream} {inp.grouping.describe()}"
                for inp in spec.inputs)
            lines.append(f"  bolt  {spec.name} x{spec.parallelism} <- {inputs}")
        return "\n".join(lines)


class BoltDeclarer:
    """Fluent input declaration for one bolt (returned by ``set_bolt``)."""

    def __init__(self, builder: "TopologyBuilder", name: str) -> None:
        self._builder = builder
        self._name = name

    def _add(self, component: str, grouping: Grouping,
             stream: str) -> "BoltDeclarer":
        self._builder._add_input(self._name,
                                 InputSpec(component, grouping, stream))
        return self

    def shuffle_grouping(self, component: str,
                         stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe with round-robin routing."""
        return self._add(component, ShuffleGrouping(), stream)

    def fields_grouping(self, component: str, fields: List[str],
                        stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe with hash partitioning on fields."""
        return self._add(component, FieldsGrouping(fields), stream)

    def partial_key_grouping(self, component: str, fields: List[str],
                             stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe with two-choice key routing."""
        return self._add(component, PartialKeyGrouping(fields), stream)

    def all_grouping(self, component: str,
                     stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe with broadcast routing."""
        return self._add(component, AllGrouping(), stream)

    def global_grouping(self, component: str,
                        stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe routing everything to task 0."""
        return self._add(component, GlobalGrouping(), stream)

    def none_grouping(self, component: str,
                      stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe with don't-care (shuffle) routing."""
        return self._add(component, NoneGrouping(), stream)

    def custom_grouping(self, component: str, chooser,
                        stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Subscribe with user-supplied routing."""
        return self._add(component, CustomGrouping(chooser), stream)

    def grouping(self, component: str, grouping: Grouping,
                 stream: str = DEFAULT_STREAM) -> "BoltDeclarer":
        """Attach an arbitrary (e.g. user-defined) grouping object."""
        return self._add(component, grouping, stream)


class TopologyBuilder:
    """Accumulates spouts/bolts/config, then :meth:`build` validates."""

    def __init__(self, name: str) -> None:
        self.name = check_name(name, "topology name")
        self._spouts: Dict[str, SpoutSpec] = {}
        self._bolts: Dict[str, BoltSpec] = {}
        self._inputs: Dict[str, List[InputSpec]] = {}
        self._config = Config()

    def set_spout(self, name: str, spout: Spout, parallelism: int = 1,
                  resource: Optional[Resource] = None) -> "TopologyBuilder":
        """Declare a spout with its parallelism."""
        check_name(name, "spout name")
        self._check_fresh(name)
        if not isinstance(spout, Spout):
            raise TopologyError(
                f"{name!r} must be a Spout instance, got "
                f"{type(spout).__name__}")
        self._spouts[name] = SpoutSpec(name, spout, parallelism, resource)
        return self

    def set_bolt(self, name: str, bolt: Bolt, parallelism: int = 1,
                 resource: Optional[Resource] = None) -> BoltDeclarer:
        """Declare a bolt; returns its input declarer."""
        check_name(name, "bolt name")
        self._check_fresh(name)
        if not isinstance(bolt, Bolt):
            raise TopologyError(
                f"{name!r} must be a Bolt instance, got "
                f"{type(bolt).__name__}")
        self._bolts[name] = BoltSpec(name, bolt, parallelism)
        if resource is not None:
            self._bolts[name] = replace(self._bolts[name], resource=resource)
        self._inputs[name] = []
        return BoltDeclarer(self, name)

    def set_config(self, key, value) -> "TopologyBuilder":
        """Set one topology config value."""
        self._config.set(key, value)
        return self

    def update_config(self, config: Config) -> "TopologyBuilder":
        """Merge a Config into the topology config."""
        self._config.update(config)
        return self

    def _check_fresh(self, name: str) -> None:
        if name in self._spouts or name in self._bolts:
            raise TopologyError(f"duplicate component name {name!r}")

    def _add_input(self, bolt_name: str, spec: InputSpec) -> None:
        self._inputs[bolt_name].append(spec)

    def build(self, config: Optional[Config] = None) -> Topology:
        """Validate and freeze the topology."""
        merged = self._config.copy()
        if config is not None:
            merged.update(config)
        bolts = {
            name: replace(spec, inputs=tuple(self._inputs[name]))
            for name, spec in self._bolts.items()
        }
        return Topology(self.name, self._spouts, bolts, merged)
