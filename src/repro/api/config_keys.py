"""Topology-level configuration keys.

These are the knobs a user sets at submission time ("either at topology
submission time through the command line or using special configuration
files" — Section II). Module-specific keys (packing, scheduling, storm)
are declared next to their modules; everything funnels through the same
:class:`~repro.common.config.Config`.

The two knobs of Section V-B — ``max_spout_pending`` and
``cache_drain_frequency_ms`` — live here; Figures 10–13 sweep them.
"""

from __future__ import annotations

from repro.common.config import ConfigKey, ConfigSchema
from repro.common.units import GB, MB

SCHEMA = ConfigSchema("topology")


def _declare(*args, **kwargs) -> ConfigKey:
    return SCHEMA.declare(ConfigKey(*args, **kwargs))


class TopologyConfigKeys:
    """Namespace of topology configuration keys."""

    ACKING_ENABLED = _declare(
        "topology.acking.enabled", default=False, value_type=bool,
        description="Track tuples end-to-end and deliver ack/fail "
                    "callbacks to spouts.")

    MAX_SPOUT_PENDING = _declare(
        "topology.max.spout.pending", default=20_000, value_type=int,
        validator=lambda v: v > 0,
        description="Maximum tuples emitted-but-not-yet-acked per spout "
                    "task (Section V-B; swept in Figs. 10-11). Only "
                    "enforced when acking is enabled.")

    MESSAGE_TIMEOUT_SECS = _declare(
        "topology.message.timeout.secs", default=30.0, value_type=float,
        validator=lambda v: v > 0,
        description="Tuples not acked within this window are failed.")

    ACK_TRACKING = _declare(
        "topology.ack.tracking", default="exact", value_type=str,
        validator=lambda v: v in ("exact", "counted"),
        description="'exact' tracks individual tuple ids through the XOR "
                    "tuple tree; 'counted' tracks per-batch counts only "
                    "(equivalent aggregate behaviour, used for very "
                    "high-rate sweeps).")

    # --- stateful processing / distributed checkpointing -------------------
    CHECKPOINT_ENABLED = _declare(
        "topology.stateful.checkpointing.enabled", default=False,
        value_type=bool,
        description="Periodically snapshot stateful components via "
                    "aligned barrier markers (Chandy-Lamport style) and "
                    "commit global checkpoints through the State Manager; "
                    "container failures roll the topology back to the "
                    "last committed checkpoint (effectively-once).")

    CHECKPOINT_INTERVAL_SECS = _declare(
        "topology.stateful.checkpoint.interval.secs", default=1.0,
        value_type=float, validator=lambda v: v > 0,
        description="Seconds between checkpoints injected by the "
                    "Checkpoint Coordinator (swept by the 'checkpoint' "
                    "figure to measure overhead vs. interval).")

    # --- per-instance resources (consumed by the Resource Manager) --------
    INSTANCE_CPU = _declare(
        "heron.instance.cpu", default=1.0, value_type=float,
        validator=lambda v: v > 0,
        description="CPU cores requested per Heron Instance.")

    INSTANCE_RAM = _declare(
        "heron.instance.ram", default=1 * GB, value_type=int,
        validator=lambda v: v > 0,
        description="RAM bytes requested per Heron Instance.")

    INSTANCE_DISK = _declare(
        "heron.instance.disk", default=1 * GB, value_type=int,
        validator=lambda v: v >= 0,
        description="Disk bytes requested per Heron Instance.")

    INSTANCES_PER_CONTAINER = _declare(
        "heron.instances.per.container", default=4, value_type=int,
        validator=lambda v: v > 0,
        description="Target instance count per container (round-robin "
                    "packing uses this to size the container count).")

    CONTAINER_CPU_PADDING = _declare(
        "heron.container.cpu.padding", default=1.0, value_type=float,
        validator=lambda v: v >= 0,
        description="Extra CPU per container for the Stream Manager and "
                    "Metrics Manager processes.")

    CONTAINER_RAM_PADDING = _declare(
        "heron.container.ram.padding", default=512 * MB, value_type=int,
        validator=lambda v: v >= 0,
        description="Extra RAM per container for SM/MM.")

    # --- Metrics pipeline --------------------------------------------------
    METRICS_REPORT_INTERVAL_SECS = _declare(
        "heron.metrics.report.interval.secs", default=1.0,
        value_type=float, validator=lambda v: v > 0,
        description="Seconds between each process's MetricSample reports "
                    "to its container's Metrics Manager.")

    METRICS_FORWARD_INTERVAL_SECS = _declare(
        "heron.metrics.forward.interval.secs", default=5.0,
        value_type=float, validator=lambda v: v > 0,
        description="Seconds between Metrics Manager summary forwards to "
                    "the Topology Master. Autoscaled topologies lower "
                    "both metrics intervals to at most the autoscale "
                    "interval so the controller sees fresh signals.")

    # --- Stream Manager (Section V) ----------------------------------------
    CACHE_ENABLED = _declare(
        "heron.streammgr.cache.enabled", default=True, value_type=bool,
        description="Use the SM tuple cache (batch per destination, "
                    "flush on the drain timer). Disabling it forwards "
                    "every routed sub-batch immediately — the batching "
                    "ablation of DESIGN.md §4.")

    CACHE_DRAIN_FREQUENCY_MS = _declare(
        "heron.streammgr.cache.drain.frequency.ms", default=10.0,
        value_type=float, validator=lambda v: v > 0,
        description="How often the SM tuple cache is flushed "
                    "(Section V-B; swept in Figs. 12-13).")

    MEMPOOL_ENABLED = _declare(
        "heron.streammgr.mempool.enabled", default=True, value_type=bool,
        description="Reuse pooled message objects in the SM instead of "
                    "allocating per tuple (Section V-A optimization).")

    LAZY_DESERIALIZATION = _declare(
        "heron.streammgr.lazy.deserialization", default=True,
        value_type=bool,
        description="Parse only the destination field of routed tuples "
                    "and forward payloads serialized "
                    "(Section V-A optimization).")

    BATCH_SIZE = _declare(
        "heron.streammgr.batch.size", default=500, value_type=int,
        validator=lambda v: v > 0,
        description="Tuples per instance→SM TupleSet batch.")

    SAMPLE_CAP = _declare(
        "heron.streammgr.sample.cap", default=0, value_type=int,
        validator=lambda v: v >= 0,
        description="Max concrete tuple values carried per batch; 0 means "
                    "full fidelity (every value carried). Performance "
                    "sweeps set a small cap; see DESIGN.md §5.")

    BACKPRESSURE_HIGH_WATERMARK = _declare(
        "heron.streammgr.backpressure.high.watermark", default=120,
        value_type=int, validator=lambda v: v > 0,
        description="Queue length above which the SM initiates spout "
                    "backpressure.")

    BACKPRESSURE_LOW_WATERMARK = _declare(
        "heron.streammgr.backpressure.low.watermark", default=40,
        value_type=int, validator=lambda v: v >= 0,
        description="Queue length below which backpressure is released.")

    BACKPRESSURE_LEASE_SECS = _declare(
        "heron.streammgr.backpressure.lease.secs", default=2.0,
        value_type=float, validator=lambda v: v > 0,
        description="Lifetime of a peer-initiated spout pause. The "
                    "initiating SM re-broadcasts PauseSpouts while it is "
                    "still backpressured; if renewals stop arriving "
                    "(lost ResumeSpouts, dead initiator) peers resume "
                    "their spouts when the lease expires instead of "
                    "wedging forever.")

    # --- fault tolerance / chaos (repro.chaos) -----------------------------
    RELIABLE_DELIVERY = _declare(
        "heron.streammgr.reliable.delivery", default=True, value_type=bool,
        description="Sequence/ack/retransmit inter-container SM channels "
                    "so data, barrier markers and backpressure broadcasts "
                    "survive a lossy network (see DESIGN.md fault model). "
                    "Disable to expose raw message loss.")

    RETRANSMIT_TIMEOUT_SECS = _declare(
        "heron.streammgr.retransmit.timeout.secs", default=0.05,
        value_type=float, validator=lambda v: v > 0,
        description="Base retransmit timeout (RTO) of the reliable SM "
                    "channel; doubles per silent retry up to the backoff "
                    "cap and resets on ack progress.")

    RETRANSMIT_BACKOFF_CAP_SECS = _declare(
        "heron.streammgr.retransmit.backoff.cap.secs", default=1.0,
        value_type=float, validator=lambda v: v > 0,
        description="Upper bound on the exponentially backed-off RTO.")

    RETRANSMIT_JITTER = _declare(
        "heron.streammgr.retransmit.jitter", default=0.2,
        value_type=float, validator=lambda v: 0 <= v < 1,
        description="Fractional jitter applied to backed-off RTOs "
                    "(drawn from the cluster's seeded RNG stream, so "
                    "retries stay deterministic per seed).")

    HEARTBEAT_INTERVAL_SECS = _declare(
        "topology.heartbeat.interval.secs", default=3.0, value_type=float,
        validator=lambda v: v > 0,
        description="Seconds between SM liveness heartbeats to the TM.")

    FAILURE_DETECTION_ENABLED = _declare(
        "topology.failure.detection.enabled", default=True,
        value_type=bool,
        description="The TM acts on heartbeat silence: after the miss "
                    "window it declares the SM dead, rebroadcasts the "
                    "plan to survivors and asks the scheduler to "
                    "relaunch the container.")

    FAILURE_MISS_THRESHOLD = _declare(
        "topology.failure.detection.miss.threshold", default=3,
        value_type=int, validator=lambda v: v >= 1,
        description="Consecutive heartbeat intervals an SM may stay "
                    "silent before the TM suspects it (miss window = "
                    "threshold x heartbeat interval).")

    TMASTER_FAILOVER_DELAY_SECS = _declare(
        "topology.tmaster.failover.delay.secs", default=0.5,
        value_type=float, validator=lambda v: v >= 0,
        description="Grace period between the tmasterlocation ephemeral "
                    "node vanishing and the engine relaunching the "
                    "Topology Master in a fresh container; gives a "
                    "framework-side restart (Aurora) a chance to win "
                    "the recovery race first.")

    STATEMGR_RETRY_ATTEMPTS = _declare(
        "heron.statemgr.retry.attempts", default=5, value_type=int,
        validator=lambda v: v >= 0,
        description="Bounded retries (with backoff) for State Manager "
                    "operations on the control plane, so a transient "
                    "statemgr outage does not kill a topology.")
