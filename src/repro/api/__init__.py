"""The user-facing topology API.

A Heron topology is a directed graph of **spouts** (sources) and **bolts**
(operators). Users subclass :class:`Spout` / :class:`Bolt`, wire them with
a :class:`TopologyBuilder`, pick stream *groupings* for each edge, and
submit the built :class:`Topology` to an engine (Heron, or one of the
baselines — the same topology object runs on all engines, which is what
makes the head-to-head figures apples-to-apples).

Example::

    builder = TopologyBuilder("wordcount")
    builder.set_spout("word", WordSpout(), parallelism=25)
    builder.set_bolt("count", CountBolt(), parallelism=25) \\
           .fields_grouping("word", fields=["word"])
    topology = builder.build()
"""

from repro.api.component import (Bolt, Component, ComponentContext,
                                 Spout, TICK_STREAM, is_tick)
from repro.api.config_keys import TopologyConfigKeys
from repro.api.grouping import (
    AllGrouping,
    CustomGrouping,
    DirectGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    NoneGrouping,
    PartialKeyGrouping,
    ShuffleGrouping,
)
from repro.api.topology import (
    BoltSpec,
    InputSpec,
    SpoutSpec,
    Topology,
    TopologyBuilder,
)
from repro.api.tuples import Batch, Tuple, Values
from repro.api.windowing import TumblingWindowBolt, Window

__all__ = [
    "AllGrouping",
    "Batch",
    "Bolt",
    "BoltSpec",
    "Component",
    "ComponentContext",
    "CustomGrouping",
    "DirectGrouping",
    "FieldsGrouping",
    "GlobalGrouping",
    "Grouping",
    "InputSpec",
    "NoneGrouping",
    "PartialKeyGrouping",
    "ShuffleGrouping",
    "Spout",
    "TICK_STREAM",
    "SpoutSpec",
    "Topology",
    "TopologyBuilder",
    "TopologyConfigKeys",
    "TumblingWindowBolt",
    "Tuple",
    "Values",
    "Window",
    "is_tick",
]
