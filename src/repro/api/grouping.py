"""Stream groupings: how tuples on an edge are partitioned across tasks.

A :class:`Grouping` is a declarative spec attached to a topology edge.
At runtime each router (a Heron Stream Manager, or a Storm executor)
calls :meth:`Grouping.create` to get a mutable :class:`GroupingInstance`
whose :meth:`~GroupingInstance.split` partitions a batch of tuples among
destination tasks. ``split`` works on both full-fidelity batches and
sampled batches (where ``count > len(values)``): concrete values are
routed exactly, and the represented count is allocated proportionally
with deterministic largest-remainder rounding.

Provided groupings (matching Storm/Heron semantics):

* :class:`ShuffleGrouping` — round-robin load balancing,
* :class:`FieldsGrouping` — hash partitioning on a subset of fields
  (the WordCount topology's ``word`` key),
* :class:`AllGrouping` — broadcast to every task,
* :class:`GlobalGrouping` — everything to the lowest task id,
* :class:`NoneGrouping` — like shuffle (engine may colocate),
* :class:`CustomGrouping` / :class:`DirectGrouping` — user routing logic.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Sequence, Tuple

from repro.api.tuples import Values, fields_index
from repro.common.errors import TopologyError

#: One routed share: (task_id, concrete values, tuple ids, represented count).
Route = Tuple[int, List[Values], List[int], int]


def stable_hash(value: object) -> int:
    """A deterministic, process-independent hash (Python's ``hash`` is
    salted per process for strings, which would break replayability)."""
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & 0xFFFFFFFF
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode())
    if isinstance(value, (tuple, list)):
        acc = 2166136261
        for item in value:
            acc = (acc * 16777619) ^ stable_hash(item)
            acc &= 0xFFFFFFFF
        return acc
    return zlib.crc32(repr(value).encode())


def allocate_proportionally(weights: Sequence[float], total: int) -> List[int]:
    """Split ``total`` units across bins ∝ ``weights`` (largest remainder).

    Deterministic; the result sums exactly to ``total``.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0: {total}")
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        raise ValueError("weights must have a positive sum")
    raw = [w * total / weight_sum for w in weights]
    floors = [int(r) for r in raw]
    shortfall = total - sum(floors)
    if shortfall == 0:
        return floors
    # Hand the remaining units to the largest fractional parts; break ties
    # by index for determinism.
    order = sorted(range(len(raw)), key=lambda i: (-(raw[i] - floors[i]), i))
    for i in order[:shortfall]:
        floors[i] += 1
    return floors


class GroupingInstance:
    """Mutable per-edge routing state created by :meth:`Grouping.create`."""

    def __init__(self, task_ids: Sequence[int]) -> None:
        if not task_ids:
            raise TopologyError("grouping needs at least one destination task")
        self.task_ids = list(task_ids)

    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        """Partition a batch among destination tasks.

        ``values`` are the concrete (possibly sampled) tuples; ``tuple_ids``
        is empty or aligned with ``values``; ``count`` is the total number
        of simulated tuples the batch represents (>= len(values)).
        """
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------
    def _split_by_choice(self, values: List[Values], tuple_ids: List[int],
                         count: int,
                         choose: Callable[[Values], int]) -> List[Route]:
        """Route concrete values via ``choose``; allocate count by the
        sample proportions (exact when the batch is full fidelity)."""
        per_task_values: Dict[int, List[Values]] = {}
        per_task_ids: Dict[int, List[int]] = {}
        ids = tuple_ids if tuple_ids else None
        if ids is None:
            for value in values:
                task = choose(value)
                bucket = per_task_values.get(task)
                if bucket is None:
                    per_task_values[task] = [value]
                else:
                    bucket.append(value)
        else:
            for index, value in enumerate(values):
                task = choose(value)
                bucket = per_task_values.get(task)
                if bucket is None:
                    per_task_values[task] = [value]
                    per_task_ids[task] = [ids[index]]
                else:
                    bucket.append(value)
                    per_task_ids[task].append(ids[index])
        if not per_task_values:
            return []
        if len(per_task_values) == 1:
            # Single destination: the whole represented count goes there.
            task, bucket = next(iter(per_task_values.items()))
            return [(task, bucket, per_task_ids.get(task, []),
                     max(count, len(bucket)))]
        tasks = sorted(per_task_values)
        shares = allocate_proportionally(
            [len(per_task_values[t]) for t in tasks], count)
        routes = []
        for task, share in zip(tasks, shares):
            bucket = per_task_values[task]
            if share == 0 and not bucket:
                continue
            if share < len(bucket):
                share = len(bucket)
            routes.append((task, bucket, per_task_ids.get(task, []), share))
        return routes


class Grouping:
    """Declarative grouping spec; ``create`` instantiates routing state."""

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        """Instantiate routing state for one edge (source fields + destination tasks)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description for topology listings."""
        return type(self).__name__


# ---------------------------------------------------------------------------
# Shuffle / None
# ---------------------------------------------------------------------------

class _ShuffleInstance(GroupingInstance):
    def __init__(self, task_ids: Sequence[int]) -> None:
        super().__init__(task_ids)
        self._next = 0

    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        tasks = self.task_ids
        n = len(tasks)
        if count <= 0:
            return []
        base, remainder = divmod(count, n)
        routes: List[Route] = []
        # Rotate which tasks receive the remainder so long-run load is even.
        start = self._next
        self._next = (start + remainder) % n
        # Concrete values round-robin too (aligned with ids); only tasks
        # that actually receive values get a bucket allocated.
        per_task_values: Dict[int, List[Values]] = {}
        per_task_ids: Dict[int, List[int]] = {}
        for index, value in enumerate(values):
            task = tasks[(start + index) % n]
            bucket = per_task_values.get(task)
            if bucket is None:
                per_task_values[task] = [value]
                if tuple_ids:
                    per_task_ids[task] = [tuple_ids[index]]
            else:
                bucket.append(value)
                if tuple_ids:
                    per_task_ids[task].append(tuple_ids[index])
        for i, task in enumerate(tasks):
            # Ring positions start..start+remainder-1 get one extra unit.
            share = base + (1 if (i - start) % n < remainder else 0)
            bucket = per_task_values.get(task)
            if bucket is None:
                if share > 0:
                    routes.append((task, [], [], share))
                continue
            if share < len(bucket):
                share = len(bucket)
            routes.append((task, bucket, per_task_ids.get(task, []), share))
        return routes


class ShuffleGrouping(Grouping):
    """Round-robin: even load regardless of data skew."""

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        return _ShuffleInstance(task_ids)


class NoneGrouping(ShuffleGrouping):
    """Caller doesn't care; behaves like shuffle."""


# ---------------------------------------------------------------------------
# Fields (hash partitioning)
# ---------------------------------------------------------------------------

class _FieldsInstance(GroupingInstance):
    def __init__(self, task_ids: Sequence[int], positions: List[int]) -> None:
        super().__init__(task_ids)
        self._positions = positions
        self._single = positions[0] if len(positions) == 1 else None
        # key → task memo: stable_hash is pure, and real workloads draw
        # keys from a bounded vocabulary, so the hash+mod is paid once
        # per distinct key instead of once per tuple.
        self._task_memo: Dict[object, int] = {}

    def task_for(self, value: Values) -> int:
        if self._single is not None:
            key = value[self._single]
        else:
            key = tuple(value[p] for p in self._positions)
        try:
            task = self._task_memo.get(key)
        except TypeError:  # unhashable key (e.g. a list field): no memo
            return self.task_ids[stable_hash(key) % len(self.task_ids)]
        if task is None:
            task = self.task_ids[stable_hash(key) % len(self.task_ids)]
            self._task_memo[key] = task
        return task

    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        if not values:
            # Nothing concrete to hash: fall back to an even spread.
            if count <= 0:
                return []
            shares = allocate_proportionally([1.0] * len(self.task_ids), count)
            return [(task, [], [], share)
                    for task, share in zip(self.task_ids, shares) if share]
        return self._split_by_choice(values, tuple_ids, count, self.task_for)


class FieldsGrouping(Grouping):
    """Hash partition on named fields: same key → same task, always."""

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise TopologyError("fields grouping needs at least one field")
        self.fields = list(fields)

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        positions = fields_index(source_fields, self.fields)
        return _FieldsInstance(task_ids, positions)

    def describe(self) -> str:
        return f"FieldsGrouping({self.fields})"


# ---------------------------------------------------------------------------
# All / Global
# ---------------------------------------------------------------------------

class _AllInstance(GroupingInstance):
    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        return [(task, list(values), list(tuple_ids), count)
                for task in self.task_ids]


class AllGrouping(Grouping):
    """Broadcast: every destination task receives every tuple."""

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        return _AllInstance(task_ids)


class _GlobalInstance(GroupingInstance):
    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        if count <= 0 and not values:
            return []
        return [(min(self.task_ids), values, tuple_ids, count)]


class GlobalGrouping(Grouping):
    """Everything to the single lowest-id task."""

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        return _GlobalInstance(task_ids)


# ---------------------------------------------------------------------------
# Custom / Direct
# ---------------------------------------------------------------------------

class _CustomInstance(GroupingInstance):
    def __init__(self, task_ids: Sequence[int],
                 chooser: Callable[[Values, List[int]], int]) -> None:
        super().__init__(task_ids)
        self._chooser = chooser

    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        def choose(value: Values) -> int:
            task = self._chooser(value, self.task_ids)
            if task not in self.task_ids:
                raise TopologyError(
                    f"custom grouping chose unknown task {task}; "
                    f"valid: {self.task_ids}")
            return task
        if not values:
            raise TopologyError(
                "custom grouping cannot route sampled batches without "
                "concrete values")
        return self._split_by_choice(values, tuple_ids, count, choose)


class CustomGrouping(Grouping):
    """User-supplied routing: ``chooser(values, task_ids) -> task_id``."""

    def __init__(self, chooser: Callable[[Values, List[int]], int]) -> None:
        if not callable(chooser):
            raise TopologyError("custom grouping needs a callable chooser")
        self.chooser = chooser

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        return _CustomInstance(task_ids, self.chooser)


class DirectGrouping(CustomGrouping):
    """The emitter picks the destination: the tuple's *last* field must be
    the destination task id (a convention, documented here, that keeps the
    collector API uniform)."""

    def __init__(self) -> None:
        super().__init__(lambda values, task_ids: values[-1])


# ---------------------------------------------------------------------------
# Partial-key (two-choice) grouping
# ---------------------------------------------------------------------------

class _PartialKeyInstance(GroupingInstance):
    """Key-based two-choice routing with per-router load counters.

    Each key hashes to two candidate tasks; every tuple goes to the
    currently less-loaded of the two (Nasir et al.'s partial key
    grouping, shipped by Storm/Heron for skewed keys). Downstream
    aggregations must therefore combine *partial* per-key results.
    """

    def __init__(self, task_ids: Sequence[int],
                 positions: List[int]) -> None:
        super().__init__(task_ids)
        self._positions = positions
        self._load: Dict[int, int] = {task: 0 for task in self.task_ids}
        self._cand_memo: Dict[object, Tuple[int, int]] = {}

    def _candidates(self, value: Values) -> Tuple[int, int]:
        if len(self._positions) == 1:
            key = value[self._positions[0]]
        else:
            key = tuple(value[p] for p in self._positions)
        try:
            pair = self._cand_memo.get(key)
        except TypeError:  # unhashable key: no memo
            return self._compute_candidates(key)
        if pair is None:
            pair = self._cand_memo[key] = self._compute_candidates(key)
        return pair

    def _compute_candidates(self, key: object) -> Tuple[int, int]:
        n = len(self.task_ids)
        first = stable_hash(key) % n
        second = stable_hash((key, "salt")) % n
        if second == first:
            second = (first + 1) % n
        return self.task_ids[first], self.task_ids[second]

    def task_for(self, value: Values) -> int:
        left, right = self._candidates(value)
        task = left if self._load[left] <= self._load[right] else right
        self._load[task] += 1
        return task

    def split(self, values: List[Values], tuple_ids: List[int],
              count: int) -> List[Route]:
        if not values:
            raise TopologyError(
                "partial-key grouping needs concrete values to balance on")
        return self._split_by_choice(values, tuple_ids, count,
                                     self.task_for)


class PartialKeyGrouping(Grouping):
    """Two-choice key grouping: bounds load skew from hot keys at the
    price of splitting each key across (at most) two tasks."""

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise TopologyError(
                "partial-key grouping needs at least one field")
        self.fields = list(fields)

    def create(self, source_fields: Sequence[str],
               task_ids: Sequence[int]) -> GroupingInstance:
        positions = fields_index(source_fields, self.fields)
        return _PartialKeyInstance(task_ids, positions)

    def describe(self) -> str:
        return f"PartialKeyGrouping({self.fields})"
