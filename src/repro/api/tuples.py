"""Tuple and batch value types seen by user code.

``Values`` is just a list of field values, ordered to match the emitting
component's declared output fields. A :class:`Tuple` wraps values with
their provenance (source component, stream) and ack id. A :class:`Batch`
is what batch-aware bolts receive: a *sample* of concrete values plus the
total simulated ``count`` it represents (see DESIGN.md §5 on sampling —
in full-fidelity runs ``count == len(values)`` and nothing is sampled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

Values = List[Any]

DEFAULT_STREAM = "default"


@dataclass
class Tuple:
    """One data tuple as delivered to a bolt's ``execute``."""

    values: Values
    stream: str = DEFAULT_STREAM
    source_component: str = ""
    tuple_id: int = 0  # 0 = unanchored (acking disabled for this tuple)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class Batch:
    """A weighted batch of tuples as delivered to ``execute_batch``.

    ``values`` holds up to ``count`` concrete value-lists; when the engine
    samples (performance runs), ``len(values) < count`` and each concrete
    value statistically represents ``weight`` tuples.
    """

    values: List[Values]
    count: int
    stream: str = DEFAULT_STREAM
    source_component: str = ""
    tuple_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.count < len(self.values):
            raise ValueError(
                f"batch count {self.count} < concrete values "
                f"{len(self.values)}")

    @property
    def weight(self) -> float:
        """How many simulated tuples each concrete value represents."""
        if not self.values:
            return 0.0
        return self.count / len(self.values)

    def tuples(self) -> List[Tuple]:
        """Materialize per-tuple views (full-fidelity paths only)."""
        ids = self.tuple_ids or [0] * len(self.values)
        return [Tuple(values=v, stream=self.stream,
                      source_component=self.source_component, tuple_id=i)
                for v, i in zip(self.values, ids)]


def fields_index(declared: Sequence[str], wanted: Sequence[str]) -> List[int]:
    """Map wanted field names to positions in the declared output fields.

    Used by fields grouping: ``fields_index(["word", "n"], ["word"]) == [0]``.
    Raises ValueError on unknown fields.
    """
    positions = []
    for name in wanted:
        try:
            positions.append(list(declared).index(name))
        except ValueError:
            raise ValueError(
                f"field {name!r} is not among declared output fields "
                f"{list(declared)}") from None
    return positions
