"""Spout and Bolt base classes — the user-code contract.

A Heron Instance hosts exactly one spout or bolt task. The engine drives
it through this interface:

* spouts: ``open`` once, then ``next_tuple``/``next_batch`` repeatedly,
  plus ``ack``/``fail`` callbacks when acking is enabled, ``close`` at end;
* bolts: ``prepare`` once, then ``execute``/``execute_batch`` per
  delivery, ``close`` at end.

Batch methods have default implementations in terms of the per-tuple
methods, so simple components implement only the per-tuple form; the
high-rate workloads override the batch form for speed.

User CPU cost: by default the engine charges the cost-model's per-tuple
user cost. A component can declare heavier logic by overriding
:attr:`Component.user_cost_per_tuple` (seconds per tuple) — the Fig. 14
topology uses this to model its filter/aggregate work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Protocol, Sequence

from repro.api.tuples import DEFAULT_STREAM, Batch, Tuple, Values
from repro.common.config import Config


@dataclass
class ComponentContext:
    """What a task knows about itself and its surroundings."""

    topology_name: str
    component: str
    task_id: int
    parallelism: int
    config: Config

    def now(self) -> float:
        """Current (simulated) time; overridden by the engine."""
        return 0.0


class Collector(Protocol):
    """Where user code emits tuples. Implemented by each engine."""

    def emit(self, values: Values, stream: str = DEFAULT_STREAM,
             anchors: Optional[List[int]] = None) -> None:
        """Emit one tuple (anchored to upstream tuples when acking)."""
        ...

    def emit_batch(self, values: List[Values], count: Optional[int] = None,
                   stream: str = DEFAULT_STREAM) -> None:
        """Emit many tuples at once; ``count`` defaults to ``len(values)``."""
        ...

    def ack(self, tup: Tuple) -> None:
        """Mark an input tuple fully processed (bolts, acking on)."""
        ...

    def fail(self, tup: Tuple) -> None:
        """Mark an input tuple failed (triggers spout ``fail``)."""
        ...


class Component:
    """Common base for spouts and bolts."""

    #: Declared output field names per stream; subclasses may override or
    #: populate via ``declare_output``.
    outputs: dict = {}

    #: Extra user-logic CPU seconds charged per processed tuple (on top of
    #: the engine's dispatch cost). Override for compute-heavy components.
    user_cost_per_tuple: float = 0.0

    #: Stateful components participate in distributed checkpointing: the
    #: engine calls :meth:`init_state` before ``open``/``prepare`` (and
    #: again on rollback recovery) and :meth:`snapshot_state` whenever a
    #: checkpoint barrier passes through the task.
    stateful: bool = False

    #: Key-grouped state (elastic scaling, ``repro.autoscale``): when
    #: set > 0, :meth:`snapshot_state` must return a ``{group_id: state}``
    #: dict keyed by virtual key group (``group_of(key, key_groups)``)
    #: and :meth:`init_state` must accept one. The checkpoint layer then
    #: re-partitions snapshots across a parallelism change by moving
    #: whole groups (:func:`repro.checkpoint.repartition.restore_into`);
    #: components with ``key_groups == 0`` keep monolithic state and can
    #: only restore into the same shape.
    key_groups: int = 0

    def __init__(self) -> None:
        if not self.outputs:
            self.outputs = {DEFAULT_STREAM: []}

    def declare_output(self, fields: Sequence[str],
                       stream: str = DEFAULT_STREAM) -> None:
        """Declare the output schema of one stream."""
        if self.outputs is type(self).outputs:
            self.outputs = dict(type(self).outputs)
        self.outputs[stream] = list(fields)

    def output_fields(self, stream: str = DEFAULT_STREAM) -> List[str]:
        """Declared output field names of one stream."""
        return list(self.outputs.get(stream, []))

    def close(self) -> None:
        """Called when the task shuts down."""

    # -- stateful processing (checkpointing subsystem) ----------------------
    def init_state(self, state: Optional[Any]) -> None:
        """Install (or reset) this task's managed state.

        ``state`` is whatever a previous :meth:`snapshot_state` returned,
        or ``None`` for a fresh start. Called before ``open``/``prepare``
        on launch and again — possibly many times — when the topology
        rolls back to a committed checkpoint. Stateful components must
        rebuild *all* managed state from the argument alone.
        """

    def snapshot_state(self) -> Any:
        """Return this task's managed state for a checkpoint.

        The returned object is serialized and committed through the State
        Manager; it must be picklable and self-contained (no references
        into live engine structures).
        """
        return None


class Spout(Component):
    """A source of tuples."""

    def open(self, context: ComponentContext, collector: Collector) -> None:
        """One-time initialization before any ``next_tuple`` call."""

    def next_tuple(self, collector: Collector) -> None:
        """Emit zero or more tuples. Called repeatedly by the engine."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither next_tuple nor "
            f"next_batch")

    def next_batch(self, collector: Collector, max_tuples: int) -> int:
        """Emit up to ``max_tuples`` tuples; return how many were emitted.

        Default: loop ``next_tuple``, assuming each call emits one tuple
        (engines use the collector's own counting, so over/under emitting
        is safe, just less precise for pacing).
        """
        for i in range(max_tuples):
            self.next_tuple(collector)
        return max_tuples

    def ack(self, tuple_id: int) -> None:
        """A tuple emitted with this id was fully processed."""

    def fail(self, tuple_id: int) -> None:
        """A tuple emitted with this id failed or timed out."""


#: Stream name of engine-generated tick tuples.
TICK_STREAM = "__tick"


def is_tick(tup: Tuple) -> bool:
    """True for engine-generated tick tuples (see Bolt.tick_frequency)."""
    return tup.stream == TICK_STREAM


class Bolt(Component):
    """An operator over input streams."""

    #: If set (> 0), the engine delivers a *tick tuple* on stream
    #: ``__tick`` every this many (simulated) seconds — the Storm/Heron
    #: mechanism windowed bolts use for time-based triggers. Check inputs
    #: with :func:`is_tick`.
    tick_frequency: Optional[float] = None

    def prepare(self, context: ComponentContext, collector: Collector) -> None:
        """One-time initialization before any ``execute`` call."""

    def execute(self, tup: Tuple, collector: Collector) -> None:
        """Process one input tuple."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither execute nor "
            f"execute_batch")

    def execute_batch(self, batch: Batch, collector: Collector) -> None:
        """Process a weighted batch. Default: loop ``execute`` per tuple.

        Engines call this on every delivery; performance-oriented bolts
        override it and honor :attr:`Batch.weight`.
        """
        for tup in batch.tuples():
            self.execute(tup, collector)
