"""Windowed bolts built on tick tuples.

Heron's windowed-bolt API lets user code process time-based windows of
tuples instead of individual ones. :class:`TumblingWindowBolt` implements
the tumbling (non-overlapping) case on top of the engine's tick-tuple
mechanism: tuples accumulate in the current window; every
``window_seconds`` a tick fires and :meth:`process_window` receives the
closed window.

Subclass and override :meth:`process_window`::

    class Sum(TumblingWindowBolt):
        window_seconds = 1.0
        def process_window(self, window, collector):
            collector.emit([sum(t[0] for t in window.tuples)])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.api.component import Bolt, Collector, ComponentContext, is_tick
from repro.api.tuples import Batch, Tuple


@dataclass
class Window:
    """One closed window of tuples.

    ``tuples`` carries the concrete tuples seen; ``count`` the total
    (weighted) number of tuples the window represents — they differ only
    under sampled batches, mirroring :class:`~repro.api.tuples.Batch`.
    """

    start: float
    end: float
    tuples: List[Tuple] = field(default_factory=list)
    count: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


class TumblingWindowBolt(Bolt):
    """Accumulate tuples; hand each closed window to ``process_window``."""

    #: Window length in (simulated) seconds; also the tick frequency.
    window_seconds: float = 1.0

    def __init__(self) -> None:
        super().__init__()
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive: {self.window_seconds}")
        self.tick_frequency = self.window_seconds
        self._window: List[Tuple] = []
        self._count = 0.0
        self._window_start = 0.0
        self._now = lambda: 0.0
        self.windows_processed = 0

    def prepare(self, context: ComponentContext,
                collector: Collector) -> None:
        self._now = context.now
        self._window_start = context.now()

    # -- accumulation -----------------------------------------------------
    def execute(self, tup: Tuple, collector: Collector) -> None:
        if is_tick(tup):
            self._close_window(collector)
            return
        self._window.append(tup)
        self._count += 1

    def execute_batch(self, batch: Batch, collector: Collector) -> None:
        if batch.stream == "__tick":
            self._close_window(collector)
            return
        self._window.extend(batch.tuples())
        self._count += batch.count

    def _close_window(self, collector: Collector) -> None:
        window = Window(start=self._window_start, end=self._now(),
                        tuples=self._window, count=self._count)
        self._window = []
        self._count = 0.0
        self._window_start = window.end
        self.windows_processed += 1
        self.process_window(window, collector)

    # -- user hook -----------------------------------------------------------
    def process_window(self, window: Window,
                       collector: Collector) -> None:
        """Handle one closed window (override me)."""
        raise NotImplementedError
