"""First-Fit-Decreasing bin packing: optimize for container count / cost.

"A user who wants to reduce the total cost of running a topology in a
pay-as-you-go environment can choose a Bin Packing algorithm that
produces a packing plan with the minimum number of containers"
(Section IV-A). FFD is the classic approximation: sort instances by
decreasing size, place each into the first container with room, open a
new container only when none fits.

Containers are *heterogeneous*: each declares exactly what its contents
need (plus SM/MM padding) — the shape YARN-style frameworks support.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.common.errors import PackingError
from repro.common.resources import Resource
from repro.packing import repack as rp
from repro.packing.base import PackingConfigKeys, ResourceManager
from repro.packing.plan import ContainerPlan, InstancePlan, PackingPlan


class FirstFitDecreasingPacking(ResourceManager):
    """Minimize container count via FFD bin packing."""

    def bin_capacity(self) -> Resource:
        """The FFD bin size from config (before SM/MM padding)."""
        assert self.config is not None
        return Resource(
            cpu=self.config.get(PackingConfigKeys.FFD_MAX_CONTAINER_CPU),
            ram=self.config.get(PackingConfigKeys.FFD_MAX_CONTAINER_RAM),
            disk=self.config.get(PackingConfigKeys.FFD_MAX_CONTAINER_DISK))

    def pack(self) -> PackingPlan:
        topology = self._require_initialized()
        instances = self._sorted_decreasing(self.all_instances())
        assignments: rp.Assignments = {}
        for instance in instances:
            self._first_fit(assignments, instance)
        return self._plan(topology.name, assignments)

    def repack(self, current_plan: PackingPlan,
               parallelism_changes: Mapping[str, int]) -> PackingPlan:
        self._require_initialized()
        self.check_changes(current_plan, parallelism_changes)
        counts = rp.target_counts(current_plan, parallelism_changes)
        assignments = rp.current_assignments(current_plan)
        rp.apply_removals(assignments, counts)
        additions = self._sorted_decreasing(
            rp.new_instances(assignments, counts, self.instance_resource))
        # "Exploit the available free space of the already provisioned
        # containers": first-fit into existing bins before opening new ones.
        for instance in additions:
            self._first_fit(assignments, instance)
        rp.drop_empty(assignments)
        return self._plan(current_plan.topology_name, assignments)

    # -- internals ------------------------------------------------------------
    @staticmethod
    def _sorted_decreasing(
            instances: List[InstancePlan]) -> List[InstancePlan]:
        return sorted(
            instances,
            key=lambda i: (-i.resource.ram, -i.resource.cpu,
                           i.component, i.task_id))

    def _first_fit(self, assignments: rp.Assignments,
                   instance: InstancePlan) -> None:
        capacity = self.bin_capacity()
        if not instance.resource.fits_in(capacity):
            raise PackingError(
                f"instance {instance.component}[{instance.task_id}] needs "
                f"{instance.resource}, exceeding the bin capacity "
                f"{capacity}; raise the packing.ffd.max.container.* config")
        for cid in sorted(assignments):
            used = Resource.total(i.resource for i in assignments[cid])
            if (used + instance.resource).fits_in(capacity):
                assignments[cid].append(instance)
                return
        assignments[rp.next_container_id(assignments)] = [instance]

    def _plan(self, topology_name: str,
              assignments: rp.Assignments) -> PackingPlan:
        padding = self.padding()
        containers = [
            ContainerPlan(
                cid, tuple(instances),
                Resource.total(i.resource for i in instances) + padding)
            for cid, instances in sorted(assignments.items())
        ]
        return PackingPlan(topology_name, containers)
