"""R-Storm-style resource-aware, network-distance-minimizing packing.

Peng et al.'s R-Storm (PAPERS.md) schedules communicating task pairs as
close together as possible — same slot > same node > same rack — under
soft CPU/RAM constraints, reporting 30-47% throughput gains over Storm's
default scheduler. This policy reproduces that idea behind the paper's
Section IV-A ``ResourceManager`` interface, so it is just another
pluggable packing policy:

1. Build the static :class:`~repro.packing.traffic.TrafficGraph`.
2. Traverse tasks Prim-style: start from the heaviest-communicating
   task, then repeatedly take the unplaced task with the strongest ties
   to already-placed ones (each communication cluster is laid out
   contiguously before the next one starts).
3. Score candidate containers by ``sum(weight * gain)`` over placed
   partners, with gain 3 for same container, 2 for same machine, 1 for
   same rack: heavy pairs co-locate, light pairs may cross racks.
4. When a fresh container wins (or nothing fits), pick its machine the
   same way at machine/rack granularity — preferring machines with room
   (the *soft* constraint: when nothing fits, least-loaded wins and the
   cluster's first-fit fallback has the final say at allocation time).

Containers are heterogeneous (sized to contents plus SM/MM padding, like
FFD) and carry ``preferred_machine``/``preferred_rack`` hints that the
scheduler forwards to the cluster. Without :meth:`bind_cluster`, the
policy degrades gracefully to traffic-clustered bin packing: only the
same-container gain differentiates candidates and no hints are emitted.

Everything is deterministic: ties break by container id, machine id, and
the topology's declared component order.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.common.errors import PackingError
from repro.common.resources import Resource
from repro.packing import repack as rp
from repro.packing.base import PackingConfigKeys, ResourceManager
from repro.packing.plan import ContainerPlan, InstancePlan, PackingPlan
from repro.packing.traffic import Task, TrafficGraph

#: Proximity gains, per R-Storm's distance order.
GAIN_SAME_CONTAINER = 3.0
GAIN_SAME_MACHINE = 2.0
GAIN_SAME_RACK = 1.0


class RStormPacking(ResourceManager):
    """Co-locate heavy-traffic pairs: container > machine > rack."""

    def bin_capacity(self) -> Resource:
        """The R-Storm bin size from config (before SM/MM padding)."""
        assert self.config is not None
        return Resource(
            cpu=self.config.get(PackingConfigKeys.RSTORM_MAX_CONTAINER_CPU),
            ram=self.config.get(PackingConfigKeys.RSTORM_MAX_CONTAINER_RAM),
            disk=self.config.get(
                PackingConfigKeys.RSTORM_MAX_CONTAINER_DISK))

    # -- the ResourceManager interface --------------------------------------
    def pack(self) -> PackingPlan:
        topology = self._require_initialized()
        graph = TrafficGraph(topology,
                             measured_rates=self.measured_traffic)
        state = _PlacementState(self)
        for task in self._traversal_order(graph, graph.tasks()):
            state.place(task, graph,
                        InstancePlan(task[0], task[1],
                                     self.instance_resource(task[0])))
        return state.plan(topology.name)

    def repack(self, current_plan: PackingPlan,
               parallelism_changes: Mapping[str, int]) -> PackingPlan:
        topology = self._require_initialized()
        self.check_changes(current_plan, parallelism_changes)
        counts = rp.target_counts(current_plan, parallelism_changes)
        graph = TrafficGraph(topology, counts,
                             measured_rates=self.measured_traffic)
        state = _PlacementState(self, current_plan)
        assignments = rp.current_assignments(current_plan)
        rp.apply_removals(assignments, counts)
        state.adopt(assignments)
        additions = rp.new_instances(assignments, counts,
                                     self.instance_resource)
        pending = [(inst.component, inst.task_id) for inst in additions]
        by_task = {(inst.component, inst.task_id): inst
                   for inst in additions}
        for task in self._traversal_order(graph, pending, state):
            state.place(task, graph, by_task[task])
        return state.plan(current_plan.topology_name)

    # -- traversal -----------------------------------------------------------
    def _traversal_order(self, graph: TrafficGraph, pending: List[Task],
                         state: Optional["_PlacementState"] = None
                         ) -> List[Task]:
        """Prim-style order: highest affinity to placed tasks first,
        falling back to the heaviest remaining task to seed the next
        communication cluster."""
        rank = {task: pos for pos, task in
                enumerate(graph.tasks_by_traffic())}
        remaining = sorted(pending, key=lambda t: rank[t])
        placed = set() if state is None else set(state.placed)
        affinity: Dict[Task, float] = {
            task: sum(w for partner, w in graph.partners(task)
                      if partner in placed)
            for task in remaining}
        order: List[Task] = []
        while remaining:
            best = min(remaining,
                       key=lambda t: (-affinity[t], rank[t]))
            remaining.remove(best)
            order.append(best)
            placed.add(best)
            for partner, weight in graph.partners(best):
                if partner in affinity:
                    affinity[partner] += weight
        return order


class _PlacementState:
    """Mutable container/machine assignment state during one pack()."""

    def __init__(self, policy: RStormPacking,
                 current_plan: Optional[PackingPlan] = None) -> None:
        self.policy = policy
        self.capacity = policy.bin_capacity()
        self.padding = policy.padding()
        self.cluster = policy.cluster
        self.assignments: rp.Assignments = {}
        self.placed: Dict[Task, int] = {}
        self.machine_of: Dict[int, Optional[int]] = {}
        self.machine_load: Dict[int, Resource] = {}
        if self.cluster is not None:
            self.machine_load = {
                m.id: Resource.zero() for m in self.cluster.machines}
        if current_plan is not None:
            for container in current_plan.containers:
                self.machine_of[container.id] = container.preferred_machine
                self._reserve(container.preferred_machine)

    # -- bookkeeping ---------------------------------------------------------
    def _reserve(self, machine_id: Optional[int]) -> None:
        if machine_id is not None and machine_id in self.machine_load:
            self.machine_load[machine_id] = (
                self.machine_load[machine_id] + self.capacity + self.padding)

    def adopt(self, assignments: rp.Assignments) -> None:
        """Take over an existing plan's (possibly trimmed) assignments;
        surviving instances never move."""
        self.assignments = assignments
        for cid, instances in assignments.items():
            for inst in instances:
                self.placed[(inst.component, inst.task_id)] = cid

    def _used(self, cid: int) -> Resource:
        return Resource.total(i.resource for i in self.assignments[cid])

    # -- scoring -------------------------------------------------------------
    def _rack_of(self, machine_id: Optional[int]) -> Optional[int]:
        if machine_id is None or self.cluster is None:
            return None
        return self.cluster.rack_of(machine_id)

    def _gain(self, cid: int, partner_cid: int) -> float:
        if cid == partner_cid:
            return GAIN_SAME_CONTAINER
        mine = self.machine_of.get(cid)
        theirs = self.machine_of.get(partner_cid)
        if mine is None or theirs is None:
            return 0.0
        if mine == theirs:
            return GAIN_SAME_MACHINE
        mine_rack, theirs_rack = self._rack_of(mine), self._rack_of(theirs)
        if mine_rack is not None and mine_rack == theirs_rack:
            return GAIN_SAME_RACK
        return 0.0

    def _container_score(self, cid: int, task: Task,
                         graph: TrafficGraph) -> float:
        return sum(weight * self._gain(cid, self.placed[partner])
                   for partner, weight in graph.partners(task)
                   if partner in self.placed)

    def _machine_gain(self, machine_id: int, partner_cid: int) -> float:
        theirs = self.machine_of.get(partner_cid)
        if theirs is None:
            return 0.0
        if machine_id == theirs:
            return GAIN_SAME_MACHINE
        mine_rack = self._rack_of(machine_id)
        if mine_rack is not None and mine_rack == self._rack_of(theirs):
            return GAIN_SAME_RACK
        return 0.0

    def _choose_machine(self, task: Task,
                        graph: TrafficGraph) -> Optional[int]:
        """The machine for a fresh container: max partner proximity among
        machines with room, least-loaded fallback (soft constraint)."""
        if self.cluster is None:
            return None
        reserve = self.capacity + self.padding
        machines = self.cluster.machines

        def score(machine_id: int) -> float:
            return sum(
                weight * self._machine_gain(machine_id,
                                            self.placed[partner])
                for partner, weight in graph.partners(task)
                if partner in self.placed)

        fitting = [m for m in machines
                   if (self.machine_load[m.id] + reserve).fits_in(
                       m.capacity)]
        if fitting:
            return min(fitting, key=lambda m: (-score(m.id), m.id)).id
        return min(machines,
                   key=lambda m: (-score(m.id),
                                  self.machine_load[m.id].cpu, m.id)).id

    # -- placement -----------------------------------------------------------
    def place(self, task: Task, graph: TrafficGraph,
              instance: InstancePlan) -> None:
        """Greedily place one instance (the tentpole's scoring step)."""
        if not instance.resource.fits_in(self.capacity):
            raise PackingError(
                f"instance {instance.component}[{instance.task_id}] needs "
                f"{instance.resource}, exceeding the bin capacity "
                f"{self.capacity}; raise the packing.rstorm.max.container.*"
                f" config")
        fitting = [
            cid for cid in sorted(self.assignments)
            if (self._used(cid) + instance.resource).fits_in(self.capacity)]
        best_cid: Optional[int] = None
        best_score = float("-inf")
        for cid in fitting:
            score = self._container_score(cid, task, graph)
            if score > best_score:
                best_cid, best_score = cid, score
        new_machine = self._choose_machine(task, graph)
        new_score = 0.0
        if new_machine is not None:
            machine_id = new_machine
            new_score = sum(
                weight * self._machine_gain(machine_id,
                                            self.placed[partner])
                for partner, weight in graph.partners(task)
                if partner in self.placed)
        if best_cid is None or new_score > best_score:
            best_cid = rp.next_container_id(self.assignments)
            self.assignments[best_cid] = []
            self.machine_of[best_cid] = new_machine
            self._reserve(new_machine)
        self.assignments[best_cid].append(instance)
        self.placed[task] = best_cid

    # -- output --------------------------------------------------------------
    def plan(self, topology_name: str) -> PackingPlan:
        rp.drop_empty(self.assignments)
        containers = []
        for cid, instances in sorted(self.assignments.items()):
            machine = self.machine_of.get(cid)
            containers.append(ContainerPlan(
                cid, tuple(instances),
                Resource.total(i.resource for i in instances)
                + self.padding,
                preferred_machine=machine,
                preferred_rack=self._rack_of(machine)))
        return PackingPlan(topology_name, containers)
