"""The Resource Manager interface and shared packing plumbing.

The API mirrors the paper's Section IV-A listing::

    public interface ResourceManager {
        void initialize(Configuration conf, Topology topology)
        PackingPlan pack()
        PackingPlan repack(PackingPlan currentPlan, Map parallelismChanges)
        void close()
    }
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from repro.api.config_keys import TopologyConfigKeys as TopoKeys
from repro.api.topology import Topology
from repro.common.config import Config, ConfigKey, ConfigSchema
from repro.common.errors import PackingError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.packing.plan import InstancePlan, PackingPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.simulation.cluster import Cluster

SCHEMA = ConfigSchema("packing")


def _declare(*args: Any, **kwargs: Any) -> ConfigKey:
    return SCHEMA.declare(ConfigKey(*args, **kwargs))


class PackingConfigKeys:
    """Knobs consumed by the provided packing policies."""

    FFD_MAX_CONTAINER_CPU = _declare(
        "packing.ffd.max.container.cpu", default=8.0, value_type=float,
        validator=lambda v: v > 0,
        description="Bin capacity (cores) for FFD bin packing, before "
                    "SM/MM padding.")

    FFD_MAX_CONTAINER_RAM = _declare(
        "packing.ffd.max.container.ram", default=8 * GB, value_type=int,
        validator=lambda v: v > 0,
        description="Bin capacity (RAM bytes) for FFD bin packing.")

    FFD_MAX_CONTAINER_DISK = _declare(
        "packing.ffd.max.container.disk", default=32 * GB, value_type=int,
        validator=lambda v: v > 0,
        description="Bin capacity (disk bytes) for FFD bin packing.")

    RSTORM_MAX_CONTAINER_CPU = _declare(
        "packing.rstorm.max.container.cpu", default=8.0, value_type=float,
        validator=lambda v: v > 0,
        description="Bin capacity (cores) for R-Storm placement-aware "
                    "packing, before SM/MM padding.")

    RSTORM_MAX_CONTAINER_RAM = _declare(
        "packing.rstorm.max.container.ram", default=8 * GB, value_type=int,
        validator=lambda v: v > 0,
        description="Bin capacity (RAM bytes) for R-Storm packing.")

    RSTORM_MAX_CONTAINER_DISK = _declare(
        "packing.rstorm.max.container.disk", default=32 * GB, value_type=int,
        validator=lambda v: v > 0,
        description="Bin capacity (disk bytes) for R-Storm packing.")


class ResourceManager:
    """Base class for packing policies (the module's plug-in point)."""

    def __init__(self) -> None:
        self.config: Optional[Config] = None
        self.topology: Optional[Topology] = None
        self.cluster: Optional["Cluster"] = None
        self.measured_traffic: Dict[str, float] = {}

    # -- the paper's four methods -------------------------------------------
    def initialize(self, config: Config, topology: Topology) -> None:
        """Bind this (on-demand, short-lived) manager to one topology."""
        self.config = topology.config.with_overrides(config)
        self.topology = topology

    def bind_cluster(self, cluster: "Cluster") -> None:
        """Offer the target cluster's topology (machines, racks) to the
        policy. Placement-oblivious policies ignore it; placement-aware
        ones (R-Storm) use it to emit machine/rack preferences."""
        self.cluster = cluster

    def set_measured_traffic(self, rates: Mapping[str, float]) -> None:
        """Offer measured per-component output totals (from the metrics
        pipeline) ahead of a repack. Traffic-aware policies feed them into
        their :class:`~repro.packing.traffic.TrafficGraph` instead of the
        static unit-rate model; others ignore them. Values are relative
        weights — cumulative emit counters work as-is."""
        self.measured_traffic = {name: float(rate)
                                 for name, rate in rates.items()
                                 if rate > 0.0}

    def pack(self) -> PackingPlan:
        """Produce the initial packing plan."""
        raise NotImplementedError

    def repack(self, current_plan: PackingPlan,
               parallelism_changes: Mapping[str, int]) -> PackingPlan:
        """Adjust an existing plan for new component parallelisms."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (none for the built-in policies)."""

    # -- shared helpers ----------------------------------------------------
    def _require_initialized(self) -> Topology:
        if self.topology is None or self.config is None:
            raise PackingError(
                f"{type(self).__name__} used before initialize()")
        return self.topology

    def instance_resource(self, component: str) -> Resource:
        """The resource requirement of one instance of ``component``.

        Per-component hints on the topology win; otherwise the
        topology-level instance defaults apply.
        """
        topology = self._require_initialized()
        spec = topology.component(component)
        if spec.resource is not None:
            return spec.resource
        assert self.config is not None
        return Resource(cpu=self.config.get(TopoKeys.INSTANCE_CPU),
                        ram=self.config.get(TopoKeys.INSTANCE_RAM),
                        disk=self.config.get(TopoKeys.INSTANCE_DISK))

    def padding(self) -> Resource:
        """Per-container headroom for the SM and Metrics Manager."""
        assert self.config is not None
        return Resource(cpu=self.config.get(TopoKeys.CONTAINER_CPU_PADDING),
                        ram=self.config.get(TopoKeys.CONTAINER_RAM_PADDING))

    def all_instances(self,
                      parallelism: Optional[Mapping[str, int]] = None
                      ) -> List[InstancePlan]:
        """Every instance the (possibly rescaled) topology needs.

        Tasks are interleaved across components — spout[0], bolt[0],
        spout[1], bolt[1], ... — so slot-based policies naturally mix
        component types within containers (good for locality and even
        load, and how Heron's round-robin behaves).
        """
        topology = self._require_initialized()
        counts: Dict[str, int] = {
            name: topology.parallelism_of(name)
            for name in topology.components()
        }
        if parallelism:
            counts.update(parallelism)
        result: List[InstancePlan] = []
        max_count = max(counts.values())
        for task in range(max_count):
            for component in topology.components():
                if task < counts[component]:
                    result.append(InstancePlan(
                        component, task, self.instance_resource(component)))
        return result

    @staticmethod
    def check_changes(current_plan: PackingPlan,
                      parallelism_changes: Mapping[str, int]) -> None:
        existing = current_plan.component_parallelism()
        for component, count in parallelism_changes.items():
            if component not in existing:
                raise PackingError(
                    f"cannot scale unknown component {component!r}")
            if count <= 0:
                raise PackingError(
                    f"parallelism for {component!r} must be positive: "
                    f"{count}")
