"""The topology's pairwise communication graph, for placement policies.

R-Storm-style placement (``repro.packing.rstorm``) needs to know *which
tasks talk to which, and how much* before anything runs. This module
derives that statically from the logical plan: component emit rates
propagate down the (acyclic) DAG assuming unit spout rates and
pass-through bolts, and each edge's grouping type decides how a
component-level rate fans out over task pairs:

* shuffle / fields / none / partial-key / custom — uniform: every
  (src task, dst task) pair carries ``rate(src) / (p_src * p_dst)``;
* all (broadcast) — every dst task receives each src task's full output:
  ``rate(src) / p_src`` per pair;
* global — everything lands on the lowest dst task id.

Weights are relative, not calibrated tuples/sec: placement only compares
them. The graph is undirected (message cost is symmetric in the
simulator's latency model) and deterministic — iteration orders follow
the topology's declared component order and ascending task ids.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.grouping import AllGrouping, GlobalGrouping
from repro.api.topology import Topology

#: A task is one instance of a component.
Task = Tuple[str, int]


class TrafficGraph:
    """Undirected, weighted task-communication graph for one topology."""

    def __init__(self, topology: Topology,
                 parallelism: Optional[Mapping[str, int]] = None,
                 measured_rates: Optional[Mapping[str, float]] = None
                 ) -> None:
        self._order: List[str] = topology.components()
        self._position: Dict[str, int] = {
            name: index for index, name in enumerate(self._order)}
        self._parallelism: Dict[str, int] = {
            name: topology.parallelism_of(name) for name in self._order}
        if parallelism:
            for name, count in parallelism.items():
                if name not in self._parallelism:
                    continue
                self._parallelism[name] = count
        self._adjacency: Dict[Task, Dict[Task, float]] = {}
        # Observed output rates from the metrics pipeline override the
        # static model where available — an online repack weighs edges
        # by what the topology actually emitted. Components without a
        # measurement inherit propagated (possibly measured) input
        # rates, so partial coverage still shifts the whole DAG.
        measured: Dict[str, float] = {
            name: float(rate)
            for name, rate in (measured_rates or {}).items()
            if rate > 0.0}
        self._rates = self._component_rates(topology, measured)
        self._build(topology)

    # -- construction --------------------------------------------------------
    def _component_rates(self, topology: Topology,
                         measured: Mapping[str, float]
                         ) -> Dict[str, float]:
        """Relative output rate per component (unit spout rates,
        pass-through bolts, measured overrides), resolved in DAG
        order."""
        rates: Dict[str, float] = {
            name: measured.get(name, float(self._parallelism[name]))
            for name in topology.spouts}
        pending = [name for name in self._order if name not in rates]
        while pending:
            progressed = False
            still_pending: List[str] = []
            for name in pending:
                inputs = topology.bolts[name].inputs
                if all(spec.component in rates for spec in inputs):
                    rates[name] = measured.get(name, sum(
                        rates[spec.component] for spec in inputs))
                    progressed = True
                else:
                    still_pending.append(name)
            pending = still_pending
            if not progressed:  # pragma: no cover - Topology is acyclic
                raise ValueError(f"cycle among components {pending}")
        return rates

    def _build(self, topology: Topology) -> None:
        for task in self.tasks():
            self._adjacency[task] = {}
        for bolt_name in self._order:
            if topology.is_spout(bolt_name):
                continue
            for spec in topology.bolts[bolt_name].inputs:
                self._add_edge_weights(spec.component, bolt_name,
                                       spec.grouping)

    def _add_edge_weights(self, src: str, dst: str,
                          grouping: object) -> None:
        p_src = self._parallelism[src]
        p_dst = self._parallelism[dst]
        per_src_task = self._rates[src] / p_src
        for src_task in range(p_src):
            a = (src, src_task)
            if isinstance(grouping, AllGrouping):
                for dst_task in range(p_dst):
                    self._accumulate(a, (dst, dst_task), per_src_task)
            elif isinstance(grouping, GlobalGrouping):
                self._accumulate(a, (dst, 0), per_src_task)
            else:
                share = per_src_task / p_dst
                for dst_task in range(p_dst):
                    self._accumulate(a, (dst, dst_task), share)

    def _accumulate(self, a: Task, b: Task, weight: float) -> None:
        self._adjacency[a][b] = self._adjacency[a].get(b, 0.0) + weight
        self._adjacency[b][a] = self._adjacency[b].get(a, 0.0) + weight

    # -- queries -------------------------------------------------------------
    def tasks(self) -> List[Task]:
        """Every task, components in declared order, task ids ascending."""
        return [(name, task) for name in self._order
                for task in range(self._parallelism[name])]

    def weight(self, a: Task, b: Task) -> float:
        """Communication weight between two tasks (0.0 if they never
        exchange messages)."""
        return self._adjacency.get(a, {}).get(b, 0.0)

    def partners(self, task: Task) -> List[Tuple[Task, float]]:
        """``(partner, weight)`` pairs of one task, heaviest first,
        ties broken by the partner's (component position, task id)."""
        neighbours = self._adjacency.get(task, {})
        return sorted(
            neighbours.items(),
            key=lambda item: (-item[1], self._position[item[0][0]],
                              item[0][1]))

    def total_weight(self, task: Task) -> float:
        """Sum of a task's edge weights (its total traffic)."""
        return sum(self._adjacency.get(task, {}).values())

    def tasks_by_traffic(self) -> List[Task]:
        """Tasks ordered heaviest-communicating first (R-Storm's
        placement order), deterministic tie-break by declared component
        position then task id."""
        return sorted(
            self.tasks(),
            key=lambda task: (-self.total_weight(task),
                              self._position[task[0]], task[1]))

    def edges(self) -> List[Tuple[Task, Task, float]]:
        """Every undirected edge once, deterministic order."""
        result: List[Tuple[Task, Task, float]] = []
        position = self._position
        for a in self.tasks():
            for b, weight in self._adjacency.get(a, {}).items():
                if (position[a[0]], a[1]) < (position[b[0]], b[1]):
                    result.append((a, b, weight))
        return result
