"""Shared scaling (repack) plumbing.

Both built-in policies follow the paper's repack contract: "Heron
currently attempts to minimize disruptions to the existing packing plan
while still providing load balancing for the newly added instances. It
also tries to exploit the available free space of the already provisioned
containers." The pieces factored here:

* existing instances never move (minimal disruption);
* parallelism decreases remove the *highest* task ids, keeping each
  component's task ids contiguous ``0..p-1``;
* parallelism increases mint fresh task ids; the policy decides where
  each lands (slot-balanced for round-robin, first-fit for FFD);
* emptied containers are dropped from the plan.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.packing.plan import InstancePlan, PackingPlan

Assignments = Dict[int, List[InstancePlan]]


def current_assignments(plan: PackingPlan) -> Assignments:
    """Mutable container → instance-list view of a plan."""
    return {c.id: list(c.instances) for c in plan.containers}


def target_counts(plan: PackingPlan,
                  parallelism_changes: Mapping[str, int]) -> Dict[str, int]:
    """Component parallelism after applying the requested changes."""
    counts = plan.component_parallelism()
    counts.update(parallelism_changes)
    return counts


def apply_removals(assignments: Assignments,
                   counts: Mapping[str, int]) -> None:
    """Drop instances whose task_id exceeds the new parallelism.

    Removing the highest ids keeps the surviving ids contiguous, so no
    existing instance is renumbered (minimal disruption).
    """
    for container_id, instances in assignments.items():
        instances[:] = [
            inst for inst in instances
            if inst.task_id < counts[inst.component]
        ]


def new_instances(assignments: Assignments, counts: Mapping[str, int],
                  resource_of) -> List[InstancePlan]:
    """The instances to add: fresh task ids per grown component,
    interleaved across components for balanced placement."""
    existing: Dict[str, int] = {component: 0 for component in counts}
    for instances in assignments.values():
        for inst in instances:
            existing[inst.component] += 1
    pending: List[Tuple[str, int]] = []
    for component in counts:
        for task in range(existing[component], counts[component]):
            pending.append((component, task))
    # Interleave by task id so e.g. adding 4 spouts and 4 bolts alternates.
    pending.sort(key=lambda item: (item[1], item[0]))
    return [InstancePlan(component, task, resource_of(component))
            for component, task in pending]


def drop_empty(assignments: Assignments) -> None:
    """Remove containers left with no instances."""
    for container_id in [cid for cid, ins in assignments.items() if not ins]:
        del assignments[container_id]


def next_container_id(assignments: Assignments) -> int:
    """The next unused container id."""
    return max(assignments.keys(), default=0) + 1
