"""The packing-plan data model.

"The packing plan is essentially a mapping from containers to a set of
Heron Instances and their corresponding resource requirements"
(Section IV-A). Plans are immutable values: the Resource Manager produces
them, the Scheduler consumes them, the State Manager stores them, and
scaling produces a *new* plan whose difference from the old one
(:class:`PlanDelta`) tells the Scheduler what to change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import PackingError
from repro.common.ids import instance_id
from repro.common.resources import Resource


@dataclass(frozen=True)
class InstancePlan:
    """One Heron Instance: which task of which component, and its needs."""

    component: str
    task_id: int
    resource: Resource

    def instance_id(self, container_id: int) -> str:
        """The canonical instance id within a container."""
        return instance_id(self.component, self.task_id, container_id)


@dataclass(frozen=True)
class ContainerPlan:
    """One container: its id, instances, required capacity, and optional
    placement preferences.

    ``preferred_machine``/``preferred_rack`` are *hints* produced by
    placement-aware packing policies (``repro.packing.rstorm``); the
    scheduler forwards them to the cluster, which falls back to first-fit
    when the preferred spot is full. Placement-only differences do not
    count as plan changes (:meth:`PackingPlan.diff`) — a moved hint must
    never bounce a running container.
    """

    id: int
    instances: Tuple[InstancePlan, ...]
    required: Resource
    preferred_machine: Optional[int] = None
    preferred_rack: Optional[int] = None

    def __post_init__(self) -> None:
        if self.id < 1:
            raise PackingError(
                f"container ids start at 1 (0 is the Topology Master): "
                f"{self.id}")
        need = Resource.total(i.resource for i in self.instances)
        if not need.fits_in(self.required):
            raise PackingError(
                f"container {self.id} requires {need} but declares only "
                f"{self.required}")

    @property
    def instance_resource(self) -> Resource:
        return Resource.total(i.resource for i in self.instances)


@dataclass(frozen=True)
class PlanDelta:
    """What changed between two plans (consumed by Scheduler.onUpdate)."""

    added: Tuple[ContainerPlan, ...]
    removed: Tuple[ContainerPlan, ...]
    changed: Tuple[Tuple[ContainerPlan, ContainerPlan], ...]  # (old, new)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)


class PackingPlan:
    """An immutable mapping of containers → instances for one topology."""

    def __init__(self, topology_name: str,
                 containers: Iterable[ContainerPlan]) -> None:
        self.topology_name = topology_name
        self.containers: Tuple[ContainerPlan, ...] = tuple(
            sorted(containers, key=lambda c: c.id))
        self._validate()

    def _validate(self) -> None:
        if not self.containers:
            raise PackingError(
                f"packing plan for {self.topology_name!r} has no containers")
        seen_containers = set()
        seen_tasks = set()
        for container in self.containers:
            if container.id in seen_containers:
                raise PackingError(
                    f"duplicate container id {container.id}")
            seen_containers.add(container.id)
            for instance in container.instances:
                key = (instance.component, instance.task_id)
                if key in seen_tasks:
                    raise PackingError(
                        f"task {key} assigned to multiple containers")
                seen_tasks.add(key)
        if not seen_tasks:
            raise PackingError(
                f"packing plan for {self.topology_name!r} has no instances")

    # -- queries -----------------------------------------------------------
    @property
    def container_count(self) -> int:
        return len(self.containers)

    @property
    def instance_count(self) -> int:
        return sum(len(c.instances) for c in self.containers)

    @property
    def total_resource(self) -> Resource:
        return Resource.total(c.required for c in self.containers)

    @property
    def max_container_resource(self) -> Resource:
        """Component-wise max of container requirements — the container
        size a homogeneous framework (Aurora) must allocate for every
        container of this plan."""
        acc = Resource.zero()
        for container in self.containers:
            acc = acc.max_with(container.required)
        return acc

    def container(self, container_id: int) -> ContainerPlan:
        """Look up one container plan by id."""
        for candidate in self.containers:
            if candidate.id == container_id:
                return candidate
        raise PackingError(f"no container {container_id} in plan")

    def component_parallelism(self) -> Dict[str, int]:
        """Instances per component across the whole plan."""
        counts: Dict[str, int] = {}
        for container in self.containers:
            for instance in container.instances:
                counts[instance.component] = \
                    counts.get(instance.component, 0) + 1
        return counts

    def tasks_of(self, component: str) -> List[Tuple[int, int]]:
        """Sorted [(task_id, container_id)] for one component."""
        result = []
        for container in self.containers:
            for instance in container.instances:
                if instance.component == component:
                    result.append((instance.task_id, container.id))
        return sorted(result)

    def instance_ids(self) -> List[str]:
        """Every instance id in the plan, sorted."""
        ids = []
        for container in self.containers:
            for instance in container.instances:
                ids.append(instance.instance_id(container.id))
        return sorted(ids)

    def matches_topology(self, parallelism: Mapping[str, int]) -> bool:
        """Does this plan place exactly the requested tasks (0..p-1)?"""
        for component, count in parallelism.items():
            tasks = [t for t, _c in self.tasks_of(component)]
            if tasks != list(range(count)):
                return False
        return self.component_parallelism().keys() == set(parallelism)

    # -- diffing -----------------------------------------------------------
    def diff(self, newer: "PackingPlan") -> PlanDelta:
        """What the Scheduler must do to move from ``self`` to ``newer``.

        Only membership and sizing count as changes; placement-preference
        differences are ignored so re-derived hints never restart a
        container that kept its instances.
        """
        old = {c.id: c for c in self.containers}
        new = {c.id: c for c in newer.containers}
        added = tuple(new[i] for i in sorted(new.keys() - old.keys()))
        removed = tuple(old[i] for i in sorted(old.keys() - new.keys()))
        changed = tuple(
            (old[i], new[i]) for i in sorted(old.keys() & new.keys())
            if old[i].instances != new[i].instances
            or old[i].required != new[i].required)
        return PlanDelta(added, removed, changed)

    # -- serialization (for the State Manager) ---------------------------------
    def to_json(self) -> bytes:
        """Serialize for State Manager storage."""
        containers = []
        for c in self.containers:
            cdoc: Dict[str, object] = {
                "id": c.id,
                "required": [c.required.cpu, c.required.ram,
                             c.required.disk],
                "instances": [
                    {"component": i.component, "task": i.task_id,
                     "resource": [i.resource.cpu, i.resource.ram,
                                  i.resource.disk]}
                    for i in c.instances
                ],
            }
            if c.preferred_machine is not None:
                cdoc["preferred_machine"] = c.preferred_machine
            if c.preferred_rack is not None:
                cdoc["preferred_rack"] = c.preferred_rack
            containers.append(cdoc)
        doc = {"topology": self.topology_name, "containers": containers}
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, blob: bytes) -> "PackingPlan":
        doc = json.loads(blob.decode("utf-8"))
        containers = []
        for cdoc in doc["containers"]:
            instances = tuple(
                InstancePlan(idoc["component"], idoc["task"],
                             Resource(*idoc["resource"]))
                for idoc in cdoc["instances"])
            containers.append(ContainerPlan(
                cdoc["id"], instances, Resource(*cdoc["required"]),
                preferred_machine=cdoc.get("preferred_machine"),
                preferred_rack=cdoc.get("preferred_rack")))
        return cls(doc["topology"], containers)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PackingPlan)
                and self.topology_name == other.topology_name
                and self.containers == other.containers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PackingPlan({self.topology_name!r}, "
                f"{self.container_count} containers, "
                f"{self.instance_count} instances)")

    def describe(self) -> str:
        """Human-readable container-by-container listing."""
        lines = [f"packing plan for {self.topology_name}: "
                 f"{self.container_count} containers, "
                 f"{self.instance_count} instances"]
        for container in self.containers:
            members = ", ".join(f"{i.component}[{i.task_id}]"
                                for i in container.instances)
            lines.append(f"  container {container.id} "
                         f"(cpu={container.required.cpu:g}): {members}")
        return "\n".join(lines)
