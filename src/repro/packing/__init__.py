"""The Resource Manager module: packing Heron Instances into containers.

Per Section IV-A, the Resource Manager "is the component responsible for
assigning Heron Instances to containers, namely generating a packing
plan" via ``pack()`` (first submission) and ``repack()`` (topology
scaling). It is invoked on demand — it is not a long-running process —
and different topologies on the same cluster may use different policies.

Provided policies:

* :class:`RoundRobinPacking` — "a user who wants to optimize for load
  balancing can use a simple Round Robin algorithm" — homogeneous
  containers, instances spread evenly;
* :class:`FirstFitDecreasingPacking` — "a user who wants to reduce the
  total cost of running a topology in a pay-as-you-go environment can
  choose a Bin Packing algorithm that produces a packing plan with the
  minimum number of containers" — heterogeneous containers, FFD bin
  packing;
* :class:`RStormPacking` — R-Storm-style (Peng et al.) resource-aware
  placement: co-locates heavy-traffic task pairs same-container >
  same-machine > same-rack and emits machine/rack preferences the
  scheduler forwards to the cluster.

Any object implementing :class:`ResourceManager` plugs in; the
``repack`` implementations follow the paper's stated goals: "minimize
disruptions to the existing packing plan while still providing load
balancing for the newly added instances" and "exploit the available free
space of the already provisioned containers".
"""

from repro.packing.base import PackingConfigKeys, ResourceManager
from repro.packing.ffd import FirstFitDecreasingPacking
from repro.packing.plan import (ContainerPlan, InstancePlan, PackingPlan,
                                PlanDelta)
from repro.packing.round_robin import RoundRobinPacking
from repro.packing.rstorm import RStormPacking
from repro.packing.traffic import TrafficGraph

__all__ = [
    "ContainerPlan",
    "FirstFitDecreasingPacking",
    "InstancePlan",
    "PackingConfigKeys",
    "PackingPlan",
    "PlanDelta",
    "ResourceManager",
    "RoundRobinPacking",
    "RStormPacking",
    "TrafficGraph",
]
