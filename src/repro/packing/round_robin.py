"""Round-robin packing: optimize for load balance.

"A user who wants to optimize for load balancing can use a simple Round
Robin algorithm to assign Heron Instances to containers" (Section IV-A).

Instances are dealt out cyclically over ``ceil(total /
instances_per_container)`` containers. Containers are *homogeneous*: each
declares the maximum per-container requirement (plus SM/MM padding), the
shape Aurora-style frameworks need.
"""

from __future__ import annotations

import math
from typing import List, Mapping

from repro.api.config_keys import TopologyConfigKeys as TopoKeys
from repro.common.resources import Resource
from repro.packing import repack as rp
from repro.packing.base import ResourceManager
from repro.packing.plan import ContainerPlan, InstancePlan, PackingPlan


class RoundRobinPacking(ResourceManager):
    """Even, slot-based distribution over homogeneous containers."""

    def _slots(self) -> int:
        assert self.config is not None
        return self.config.get(TopoKeys.INSTANCES_PER_CONTAINER)

    def pack(self) -> PackingPlan:
        topology = self._require_initialized()
        # Deal each component's tasks cyclically, continuing the cursor
        # across components so spouts and bolts end up mixed within
        # containers (Heron's round-robin behaviour).
        order = {name: pos for pos, name in enumerate(topology.components())}
        instances = sorted(self.all_instances(),
                           key=lambda i: (order[i.component], i.task_id))
        slots = self._slots()
        container_count = max(1, math.ceil(len(instances) / slots))
        assignments: rp.Assignments = {
            cid: [] for cid in range(1, container_count + 1)}
        for cursor, instance in enumerate(instances):
            assignments[(cursor % container_count) + 1].append(instance)
        return self._plan(topology.name, assignments)

    def repack(self, current_plan: PackingPlan,
               parallelism_changes: Mapping[str, int]) -> PackingPlan:
        self._require_initialized()
        self.check_changes(current_plan, parallelism_changes)
        counts = rp.target_counts(current_plan, parallelism_changes)
        assignments = rp.current_assignments(current_plan)
        rp.apply_removals(assignments, counts)
        additions = rp.new_instances(assignments, counts,
                                     self.instance_resource)
        self._place_balanced(assignments, additions)
        rp.drop_empty(assignments)
        return self._plan(current_plan.topology_name, assignments)

    # -- internals -----------------------------------------------------------
    def _place_balanced(self, assignments: rp.Assignments,
                        additions: List[InstancePlan]) -> None:
        """Fill the least-loaded containers first (free slots), spilling
        into fresh containers once every slot is taken."""
        slots = self._slots()
        for instance in additions:
            candidates = [cid for cid, ins in assignments.items()
                          if len(ins) < slots]
            if candidates:
                target = min(candidates,
                             key=lambda cid: (len(assignments[cid]), cid))
            else:
                target = rp.next_container_id(assignments)
                assignments[target] = []
            assignments[target].append(instance)

    def _plan(self, topology_name: str,
              assignments: rp.Assignments) -> PackingPlan:
        padding = self.padding()
        # Homogeneous sizing: every container declares the largest need.
        biggest = Resource.zero()
        for instances in assignments.values():
            need = Resource.total(i.resource for i in instances) + padding
            biggest = biggest.max_with(need)
        containers = [
            ContainerPlan(cid, tuple(instances), biggest)
            for cid, instances in sorted(assignments.items())
        ]
        return PackingPlan(topology_name, containers)
