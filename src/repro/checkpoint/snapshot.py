"""Snapshot codec + the State Manager checkpoint layout.

A committed checkpoint lives under the topology's State Manager tree::

    /topologies/<name>/checkpoints/
        latest                      -> b"<id>" (newest committed id)
        epoch                       -> b"<restore epoch>"
        ckpt-<id>/
            committed               -> JSON metadata (written last)
            state/<component>/<task>-> encoded snapshot blob

The ``committed`` marker is written *after* every blob, so a coordinator
death mid-commit leaves only an uncommitted tree that the next commit of
the same id simply overwrites — readers only trust trees whose marker
exists. Works identically against the inmemory and localfs backends
(blobs are plain ``bytes``; localfs persists them through its
``StateEntry`` wire encoding).
"""

from __future__ import annotations

import json
import pickle
import zlib
from typing import Any, Dict, Optional, Tuple

from repro.checkpoint.messages import InstanceKey
from repro.common.errors import StateError
from repro.statemgr.base import StateManager
from repro.statemgr.paths import TopologyPaths


def encode_state(state: Any) -> bytes:
    """Serialize one component's snapshot into a portable blob."""
    return pickle.dumps(state, protocol=4)


def decode_state(blob: bytes) -> Any:
    """Inverse of :func:`encode_state`."""
    return pickle.loads(blob)


def _crc(blob: bytes) -> int:
    """Unsigned CRC32 of one snapshot blob."""
    return zlib.crc32(blob) & 0xFFFFFFFF


class CheckpointStore:
    """Commit/load/prune checkpoints through a :class:`StateManager`."""

    #: Committed checkpoints retained (the newest plus one fallback).
    KEEP = 2

    def __init__(self, statemgr: StateManager, topology_name: str) -> None:
        self.statemgr = statemgr
        self.paths = TopologyPaths(topology_name)

    # -- epoch persistence -------------------------------------------------
    def load_epoch(self) -> int:
        """The topology's restore epoch (0 if never restored)."""
        path = self.paths.checkpoints_epoch
        if not self.statemgr.exists(path):
            return 0
        return int(self.statemgr.get_data(path).decode("ascii"))

    def save_epoch(self, epoch: int) -> None:
        """Persist the restore epoch (read back by a relaunched TM)."""
        self.statemgr.put(self.paths.checkpoints_epoch,
                          str(epoch).encode("ascii"))

    # -- commit ------------------------------------------------------------
    def commit(self, checkpoint_id: int,
               states: Dict[InstanceKey, Optional[bytes]], *,
               time: float) -> None:
        """Write one complete global snapshot and mark it committed."""
        paths, statemgr = self.paths, self.statemgr
        stateful = 0
        crcs: Dict[str, int] = {}
        for (component, task_id), blob in sorted(states.items()):
            if blob is None:
                continue  # stateless task: nothing to restore
            stateful += 1
            crcs[f"{component}/{task_id}"] = _crc(blob)
            statemgr.put(
                paths.checkpoint_state(checkpoint_id, component, task_id),
                blob)
        metadata = {"id": checkpoint_id, "time": time,
                    "instances": len(states), "stateful": stateful,
                    "crc": crcs}
        statemgr.put(paths.checkpoint_commit(checkpoint_id),
                     json.dumps(metadata, sort_keys=True).encode("utf-8"))
        statemgr.put(paths.checkpoints_latest,
                     str(checkpoint_id).encode("ascii"))
        self.prune(keep=self.KEEP)

    # -- load --------------------------------------------------------------
    def committed_ids(self) -> list:
        """Committed checkpoint ids, oldest first."""
        root = self.paths.checkpoints
        if not self.statemgr.exists(root):
            return []
        ids = []
        for child in self.statemgr.children(root):
            if not child.startswith("ckpt-"):
                continue
            checkpoint_id = int(child[len("ckpt-"):])
            if self.statemgr.exists(
                    self.paths.checkpoint_commit(checkpoint_id)):
                ids.append(checkpoint_id)
        return sorted(ids)

    def latest_id(self) -> Optional[int]:
        """Newest committed checkpoint id, or None."""
        path = self.paths.checkpoints_latest
        if self.statemgr.exists(path):
            checkpoint_id = int(self.statemgr.get_data(path).decode("ascii"))
            if self.statemgr.exists(self.paths.checkpoint_commit(
                    checkpoint_id)):
                return checkpoint_id
        # The pointer is advisory; fall back to scanning commit markers.
        ids = self.committed_ids()
        return ids[-1] if ids else None

    def load(self, checkpoint_id: int) -> Dict[InstanceKey, bytes]:
        """Every stateful task blob of one committed checkpoint."""
        statemgr = self.statemgr
        state_root = f"{self.paths.checkpoint(checkpoint_id)}/state"
        blobs: Dict[InstanceKey, bytes] = {}
        if not statemgr.exists(state_root):
            return blobs
        for component in statemgr.children(state_root):
            component_path = f"{state_root}/{component}"
            for task in statemgr.children(component_path):
                blobs[(component, int(task))] = statemgr.get_data(
                    f"{component_path}/{task}")
        return blobs

    def verify(self, checkpoint_id: int) -> bool:
        """Whether a committed checkpoint's blobs are all present and pass
        their recorded CRC32s.

        Commits without a ``"crc"`` map (written before checksums existed)
        verify by their commit marker alone.
        """
        meta = self.metadata(checkpoint_id)
        if meta is None:
            return False
        crcs = meta.get("crc")
        if crcs is None:
            return True
        statemgr = self.statemgr
        for key, expected in sorted(crcs.items()):
            component, _, task = key.rpartition("/")
            path = self.paths.checkpoint_state(checkpoint_id, component,
                                               int(task))
            if not statemgr.exists(path):
                return False
            try:
                blob = statemgr.get_data(path)
            except StateError:
                return False
            if _crc(blob) != expected:
                return False
        return True

    def latest_valid_id(self) -> Optional[int]:
        """Newest committed checkpoint whose blobs verify, or None.

        A snapshot truncated or corrupted in storage (caught by the
        localfs backend's checksums, or by the CRCs recorded at commit)
        is skipped: rollback falls back to the previous retained
        checkpoint (``KEEP`` guarantees one exists while anything does).
        """
        for checkpoint_id in reversed(self.committed_ids()):
            if self.verify(checkpoint_id):
                return checkpoint_id
        return None

    def load_latest(self) -> Optional[
            Tuple[int, Dict[InstanceKey, bytes]]]:
        """(id, blobs) of the newest *valid* committed checkpoint."""
        checkpoint_id = self.latest_valid_id()
        if checkpoint_id is None:
            return None
        return checkpoint_id, self.load(checkpoint_id)

    def metadata(self, checkpoint_id: int) -> Optional[dict]:
        """The commit metadata of one checkpoint (None if uncommitted)."""
        path = self.paths.checkpoint_commit(checkpoint_id)
        if not self.statemgr.exists(path):
            return None
        return json.loads(self.statemgr.get_data(path).decode("utf-8"))

    # -- prune -------------------------------------------------------------
    def prune(self, keep: int = KEEP) -> None:
        """Drop all but the ``keep`` newest committed checkpoints (and any
        stale uncommitted trees older than the newest committed one)."""
        committed = self.committed_ids()
        if not committed:
            return
        survivors = set(committed[-keep:])
        root = self.paths.checkpoints
        for child in self.statemgr.children(root):
            if not child.startswith("ckpt-"):
                continue
            checkpoint_id = int(child[len("ckpt-"):])
            if checkpoint_id in survivors or checkpoint_id > committed[-1]:
                continue
            self.statemgr.delete(f"{root}/{child}", recursive=True)
