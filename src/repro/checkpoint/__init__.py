"""Stateful processing + distributed checkpointing (``repro.checkpoint``).

The paper's extensibility thesis — every engine concern behind a small
pluggable module API — is exactly the surface a checkpointing subsystem
needs: the State Manager persists committed snapshots, the Topology
Master's container hosts the coordinator, Stream Managers forward
barrier markers in stream order, and Heron Instances align barriers and
snapshot their component state (aligned Chandy-Lamport snapshots, as
surveyed by Fragkoulis et al. and shipped by Heron's own stateful
processing).

Pieces:

* :class:`~repro.checkpoint.coordinator.CheckpointCoordinator` — actor
  colocated with the TM; injects barriers at spouts every
  ``topology.stateful.checkpoint.interval.secs``, collects per-task
  snapshots, commits global checkpoints through the State Manager, and
  drives rollback recovery after container failures;
* :class:`~repro.checkpoint.snapshot.CheckpointStore` — the State
  Manager layout + codec for committed snapshots (works against both
  the inmemory and localfs backends);
* :mod:`~repro.checkpoint.messages` — the marker/snapshot/restore
  control messages threaded through SMs and instances;
* :mod:`~repro.checkpoint.repartition` — key-group snapshot
  re-partitioning so a restore can land in a *different* packing plan
  (elastic rescales, ``repro.autoscale``).
"""

from repro.checkpoint.coordinator import CheckpointCoordinator
from repro.checkpoint.messages import (CheckpointBarrier, InjectBarriers,
                                       InstanceBarrier, InstanceSnapshot,
                                       RemoteBarriers, RestoreInstance,
                                       RestoreRequest, RestoreTopology)
from repro.checkpoint.repartition import component_key_groups, restore_into
from repro.checkpoint.snapshot import (CheckpointStore, decode_state,
                                       encode_state)

__all__ = [
    "CheckpointBarrier",
    "CheckpointCoordinator",
    "CheckpointStore",
    "InjectBarriers",
    "InstanceBarrier",
    "InstanceSnapshot",
    "RemoteBarriers",
    "RestoreInstance",
    "RestoreRequest",
    "RestoreTopology",
    "component_key_groups",
    "decode_state",
    "encode_state",
    "restore_into",
]
