"""The Checkpoint Coordinator: global snapshots + rollback recovery.

One coordinator actor runs per checkpointed topology, colocated with the
Topology Master in container 0 (like Heron's own checkpoint manager it
is control-plane, not data-plane). Its loop:

1. every ``checkpoint.interval.secs`` it starts checkpoint N by asking
   every Stream Manager to inject a barrier marker at its local spouts;
2. markers flow through the data channels (SMs drain their tuple cache
   before forwarding a marker, so per-channel FIFO holds); each instance
   aligns its input channels, snapshots its component state and sends the
   blob here;
3. when every task of the physical plan has acked barrier N, the global
   snapshot is committed through the State Manager
   (:class:`~repro.checkpoint.snapshot.CheckpointStore`) — a new trigger
   aborts a still-incomplete older checkpoint (markers are monotonic, so
   laggards just join the newer one);
4. when the runtime reports a relaunched container, the coordinator
   waits for the plan to be live everywhere again, bumps the topology's
   **restore epoch**, and pushes the last committed snapshot to every SM
   — instances reload state, spouts rewind to their checkpointed offsets
   and stale in-flight data is dropped by its epoch stamp. That global
   rollback is what makes the counts effectively-once.

The epoch and committed checkpoints live in the State Manager, so a
coordinator that dies with its TM container resumes seamlessly after
relaunch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, Optional, Set,
                    Tuple)

from repro.checkpoint.messages import (InjectBarriers, InstanceKey,
                                       InstanceSnapshot, RestoreAck,
                                       RestoreRequest, RestoreTopology)
from repro.checkpoint.repartition import restore_into
from repro.checkpoint.snapshot import CheckpointStore
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel
from repro.simulation.events import Simulator
from repro.statemgr.base import StateManager

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.pplan import PhysicalPlan


class _CheckpointTick:
    """Self-timer: trigger the next checkpoint."""


@dataclass
class _RestoreRecheck:
    """Self-timer: re-send ``RestoreTopology`` if acks are missing.

    A lossy network (see :mod:`repro.chaos`) can eat a restore push; SMs
    already ignore restores for epochs they have reached, so re-sending
    is idempotent."""

    epoch: int


@dataclass
class _PendingCheckpoint:
    """One in-flight global snapshot."""

    checkpoint_id: int
    epoch: int
    expected: Set[InstanceKey]
    states: Dict[InstanceKey, Optional[bytes]] = field(default_factory=dict)
    started_at: float = 0.0


class CheckpointCoordinator(Actor):
    """Injects barriers, commits global snapshots, drives rollbacks."""

    #: Retry delay while waiting for a relaunched topology to be live.
    RESTORE_RETRY_SECS = 0.05
    #: Delay before re-sending a restore whose acks have not all arrived.
    RESTORE_RESEND_SECS = 0.5
    #: Re-send budget per restore epoch (a lost ack alone is harmless, so
    #: the loop must terminate even if acks never come back).
    RESTORE_MAX_RESENDS = 10

    def __init__(self, sim: Simulator, *, location: Location, network,
                 ledger: Optional[CostLedger], costs: CostModel,
                 statemgr: StateManager, pplan: PhysicalPlan,
                 interval: float,
                 resolve_stmgrs: Callable[[], Dict[int, Actor]]) -> None:
        name = pplan.topology.name
        super().__init__(sim, f"ckptmgr-{name}", location, network=network,
                         ledger=ledger, group="checkpoint-coordinator")
        self.costs = costs
        self.pplan = pplan
        self.interval = interval
        self.resolve_stmgrs = resolve_stmgrs
        self.store = CheckpointStore(statemgr, name)

        self.epoch = 0
        self._next_id = 0
        self._pending: Optional[_PendingCheckpoint] = None
        self._restore_waiting = False
        self._awaiting: Set[InstanceKey] = set()
        self._last_restore: Optional[
            Tuple[int, Dict[InstanceKey, Optional[bytes]]]] = None
        self._resends_left = 0

        # --- counters (read by tests/experiments) -------------------------
        self.checkpoints_triggered = 0
        self.checkpoints_committed = 0
        self.checkpoints_aborted = 0
        self.restores_completed = 0
        self.restore_acks = 0
        self.restore_resends = 0
        self.last_committed_id: Optional[int] = None
        self.last_commit_at: Optional[float] = None
        self.last_restore_at: Optional[float] = None

    def adopt_counters(self, previous: "CheckpointCoordinator") -> None:
        """Carry a replaced coordinator's counters forward (TM failover).

        Correctness state (epoch, committed ids) is reloaded from the
        State Manager by :meth:`start`; this only keeps the *statistics*
        cumulative so ``checkpoint_stats()`` reports the topology's
        history, not just the newest master's slice of it.
        """
        self.checkpoints_triggered = previous.checkpoints_triggered
        self.checkpoints_committed = previous.checkpoints_committed
        self.checkpoints_aborted = previous.checkpoints_aborted
        self.restores_completed = previous.restores_completed
        self.restore_acks = previous.restore_acks
        self.restore_resends = previous.restore_resends
        self.last_commit_at = previous.last_commit_at
        self.last_restore_at = previous.last_restore_at

    def start(self) -> None:
        """Load persisted epoch/id continuity and start the trigger timer.

        Called by the runtime after attaching the actor — including after
        a TM-container relaunch, where the persisted epoch keeps the new
        coordinator ahead of every live instance's epoch.
        """
        self.epoch = self.store.load_epoch()
        latest = self.store.latest_id()
        if latest is not None:
            self.last_committed_id = latest
            self._next_id = latest
        self.every(self.interval, lambda: self.deliver(_CheckpointTick()))

    # -- message handling ---------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, _CheckpointTick):
            self._trigger()
        elif isinstance(message, InstanceSnapshot):
            self._on_snapshot(message)
        elif isinstance(message, RestoreRequest):
            self._try_restore()
        elif isinstance(message, RestoreAck):
            self.charge(self.costs.coordinator_per_event)
            if message.epoch == self.epoch:
                self.restore_acks += 1
                self._awaiting.discard(message.key)
        elif isinstance(message, _RestoreRecheck):
            self._handle_restore_recheck(message)

    # -- checkpoint trigger/commit ------------------------------------------
    def _expected_keys(self) -> Set[InstanceKey]:
        return {key for keys in
                self.pplan.instances_by_container.values() for key in keys}

    def _trigger(self) -> None:
        if self._restore_waiting or not self._topology_ready():
            return  # still launching or mid-rollback; skip this tick
        if self._pending is not None:
            # The previous checkpoint never completed (e.g. a failure ate
            # its markers). Abandon it; barrier ids are monotonic, so any
            # straggling markers are ignored by the instances.
            self.checkpoints_aborted += 1
            self._pending = None
        self._next_id += 1
        self.checkpoints_triggered += 1
        self._pending = _PendingCheckpoint(
            self._next_id, self.epoch, self._expected_keys(),
            started_at=self.sim.now)
        stmgrs = self.resolve_stmgrs()
        self.charge(self.costs.coordinator_per_event * max(1, len(stmgrs)))
        for _cid, stmgr in sorted(stmgrs.items()):
            self.send(stmgr, InjectBarriers(self._next_id, self.epoch))

    def _on_snapshot(self, message: InstanceSnapshot) -> None:
        self.charge(self.costs.coordinator_per_event)
        pending = self._pending
        if (pending is None
                or message.checkpoint_id != pending.checkpoint_id
                or message.epoch != pending.epoch):
            return  # a straggler from an aborted checkpoint
        sanitizer = self.sim.sanitizer
        if sanitizer is not None and message.key not in pending.expected:
            sanitizer.fail(
                f"checkpoint {pending.checkpoint_id}: snapshot from "
                f"unexpected task {message.key!r} (not in the physical "
                f"plan's task set)")
        pending.states[message.key] = message.state
        if set(pending.states) >= pending.expected:
            self._commit(pending)

    def _commit(self, pending: _PendingCheckpoint) -> None:
        sanitizer = self.sim.sanitizer
        if sanitizer is not None and self.last_committed_id is not None \
                and pending.checkpoint_id <= self.last_committed_id:
            sanitizer.fail(
                f"checkpoint commit ids must be monotonic: committing "
                f"{pending.checkpoint_id} after {self.last_committed_id}")
        self.charge(self.costs.coordinator_per_event
                    * max(1, len(pending.states)))
        self.store.commit(pending.checkpoint_id, pending.states,
                          time=self.sim.now)
        self.last_committed_id = pending.checkpoint_id
        self.last_commit_at = self.sim.now
        self.checkpoints_committed += 1
        self._pending = None

    # -- rollback recovery ---------------------------------------------------
    def _topology_ready(self) -> bool:
        stmgrs = self.resolve_stmgrs()
        expected = set(self.pplan.container_ids)
        if not expected <= set(stmgrs):
            return False
        return all(stmgrs[cid].alive
                   and getattr(stmgrs[cid], "pplan", None) is not None
                   for cid in expected)

    def _try_restore(self) -> None:
        self.charge(self.costs.coordinator_per_event)
        if self.last_restore_at == self.sim.now:  # lint: allow[D005]
            # Coalesce duplicate same-instant requests: a live rescale
            # bounces changed containers (each relaunch schedules its own
            # restore) *and* requests one explicitly — one rollback
            # covers them all.
            return
        if self._pending is not None:
            # In-flight snapshots predate the failure; abandon them.
            self.checkpoints_aborted += 1
            self._pending = None
        if not self._topology_ready():
            if not self._restore_waiting:
                self._restore_waiting = True
            self.send(self, RestoreRequest(),
                      extra_delay=self.RESTORE_RETRY_SECS)
            return
        self._restore_waiting = False
        self.epoch += 1
        self.store.save_epoch(self.epoch)
        loaded = self.store.load_latest()
        checkpoint_id, blobs = loaded if loaded is not None else (0, {})
        # Re-partition key-grouped state if the snapshot was taken under a
        # different packing plan (elastic rescale); identity otherwise.
        blobs = restore_into(blobs, self.pplan)
        stmgrs = self.resolve_stmgrs()
        self.charge(self.costs.coordinator_per_event * max(1, len(stmgrs)))
        for cid, stmgr in sorted(stmgrs.items()):
            keys = self.pplan.instances_by_container.get(cid, [])
            states = {key: blobs.get(key) for key in keys}
            self.send(stmgr, RestoreTopology(self.epoch, checkpoint_id,
                                             states))
        self.restores_completed += 1
        self.last_restore_at = self.sim.now
        self._awaiting = set(self._expected_keys())
        self._last_restore = (checkpoint_id, blobs)
        self._resends_left = self.RESTORE_MAX_RESENDS
        self.send(self, _RestoreRecheck(self.epoch),
                  extra_delay=self.RESTORE_RESEND_SECS)

    def _handle_restore_recheck(self, message: _RestoreRecheck) -> None:
        """Re-push the restore to containers with unacked tasks.

        Each ``RestoreTopology`` re-send is dropped by SMs already at the
        epoch, so only the copies that a faulty network actually ate take
        effect. The budget bounds the loop: a lost *ack* leaves the
        instance correctly restored, so giving up is safe.
        """
        if (message.epoch != self.epoch or not self._awaiting
                or self._last_restore is None):
            return
        if self._resends_left <= 0:
            return
        self._resends_left -= 1
        checkpoint_id, blobs = self._last_restore
        stmgrs = self.resolve_stmgrs()
        resent = 0
        for cid, stmgr in sorted(stmgrs.items()):
            keys = self.pplan.instances_by_container.get(cid, [])
            if not any(key in self._awaiting for key in keys):
                continue
            states = {key: blobs.get(key) for key in keys}
            self.charge(self.costs.coordinator_per_event)
            self.send(stmgr, RestoreTopology(self.epoch, checkpoint_id,
                                             states))
            resent += 1
        if resent:
            self.restore_resends += resent
        self.send(self, _RestoreRecheck(self.epoch),
                  extra_delay=self.RESTORE_RESEND_SECS)

    # -- plan updates (topology scaling) -------------------------------------
    def update_plan(self, pplan: PhysicalPlan) -> None:
        """Install a new physical plan (scaling). The in-flight checkpoint
        is aborted — its expected task set no longer matches."""
        self.pplan = pplan
        if self._pending is not None:
            self.checkpoints_aborted += 1
            self._pending = None
