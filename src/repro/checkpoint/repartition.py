"""Snapshot re-partitioning: restore a checkpoint into a *different* plan.

Same-shape rollback (PR 2) hands every task back exactly the blob it
snapshotted. A live rescale breaks that 1:1 mapping: the committed
global snapshot was taken at parallelism *p* but must restore into a
plan with parallelism *q*. :func:`restore_into` bridges the gap using
the key-group convention of :mod:`repro.autoscale.keygroups`:

* a component whose user code declares ``key_groups = G`` snapshots its
  state as a ``{group_id: state}`` dict. Re-partitioning decodes every
  task's dict, merges them into one global group map, re-splits it into
  contiguous ranges for the *new* task list, and re-encodes — no key is
  ever touched, only whole groups move;
* a component with monolithic state (``key_groups == 0``) passes
  through per task id: tasks present in both shapes keep their blob,
  removed tasks' blobs are dropped, added tasks start fresh. (The
  autoscaler therefore only rescales key-grouped components; spouts
  keep their per-task offsets because their parallelism is untouched.)

The :class:`~repro.checkpoint.coordinator.CheckpointCoordinator` calls
this on every restore, so the plain failure-recovery path and the
rescale path share one code path — when shapes match, re-partitioning
is the identity on every blob.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.autoscale.keygroups import merge_groups, split_groups
from repro.checkpoint.messages import InstanceKey
from repro.checkpoint.snapshot import decode_state, encode_state

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.pplan import PhysicalPlan


def component_key_groups(topology, component: str) -> int:
    """The key-group count a component's user code declares (0 = its
    state is monolithic and cannot survive a shape change)."""
    spec = topology.component(component)
    user = spec.spout if getattr(spec, "spout", None) is not None \
        else spec.bolt
    return int(getattr(user, "key_groups", 0) or 0)


def restore_into(blobs: Dict[InstanceKey, Optional[bytes]],
                 pplan: "PhysicalPlan"
                 ) -> Dict[InstanceKey, Optional[bytes]]:
    """Re-partition a committed snapshot's blobs into ``pplan``'s shape.

    ``blobs`` is what :meth:`CheckpointStore.load_latest` returned (one
    blob per task that had state at commit time). The result maps the
    *new* plan's task keys to blobs; tasks without an entry restore
    fresh (``None`` state).
    """
    by_component: Dict[str, Dict[int, Optional[bytes]]] = {}
    for (component, task_id), blob in blobs.items():
        by_component.setdefault(component, {})[task_id] = blob

    out: Dict[InstanceKey, Optional[bytes]] = {}
    for component, task_blobs in sorted(by_component.items()):
        new_ids: List[int] = sorted(pplan.task_ids.get(component, []))
        if not new_ids:
            continue  # component no longer in the plan
        old_ids = sorted(task_blobs)
        groups = component_key_groups(pplan.topology, component)
        if groups <= 0 or old_ids == new_ids:
            # Monolithic state, or an unchanged shape: identity per task.
            new_set = set(new_ids)
            for task_id in old_ids:
                if task_id in new_set:
                    out[(component, task_id)] = task_blobs[task_id]
            continue
        # Key-grouped state across a shape change: merge + re-split.
        per_task: Dict[int, Dict[int, object]] = {}
        for task_id in old_ids:
            blob = task_blobs[task_id]
            if blob is None:
                continue
            state = decode_state(blob)
            per_task[task_id] = dict(state) if state else {}
        merged = merge_groups(per_task)
        parts = split_groups(merged, groups, len(new_ids))
        for index, task_id in enumerate(new_ids):
            out[(component, task_id)] = encode_state(parts[index])
    return out
