"""Control messages of the checkpointing subsystem.

The barrier protocol rides the same actor channels as data, so ordering
relative to tuples is exactly the FIFO-per-channel ordering aligned
snapshots require:

* coordinator → SM: :class:`InjectBarriers` (start checkpoint N);
* SM → local spout: :class:`CheckpointBarrier` with ``from_task=None``;
* instance → its SM: :class:`InstanceBarrier` ("I passed barrier N;
  flush my pre-barrier tuples, then propagate the marker downstream");
* SM → peer SM: :class:`RemoteBarriers` (markers bound for another
  container, sent *after* the drained data so per-channel order holds);
* SM → local bolt: :class:`CheckpointBarrier` with the upstream task as
  ``from_task`` (one marker per input channel);
* instance → coordinator: :class:`InstanceSnapshot` (the task's state);
* runtime → coordinator: :class:`RestoreRequest` (a container came
  back — roll the topology back);
* coordinator → SM → instance: :class:`RestoreTopology` /
  :class:`RestoreInstance` (install epoch + snapshot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: ``(component, task_id)`` — structurally identical to
#: :data:`repro.core.messages.InstanceKey`, re-declared here so the
#: checkpoint package never imports ``repro.core`` (which imports us).
InstanceKey = Tuple[str, int]


@dataclass
class InjectBarriers:
    """Coordinator → SM: deliver barrier markers to local spouts."""

    checkpoint_id: int
    epoch: int


@dataclass
class CheckpointBarrier:
    """SM → instance: a barrier marker on one input channel.

    ``from_task`` identifies the upstream task whose channel the marker
    closes; ``None`` marks coordinator-injected spout barriers.
    """

    checkpoint_id: int
    epoch: int
    from_task: Optional[InstanceKey] = None


@dataclass
class InstanceBarrier:
    """Instance → its SM: snapshot taken; forward my marker downstream."""

    checkpoint_id: int
    epoch: int
    source: InstanceKey


@dataclass
class RemoteBarriers:
    """SM → peer SM: markers from one upstream task for remote dests."""

    checkpoint_id: int
    epoch: int
    from_task: InstanceKey
    dests: List[InstanceKey] = field(default_factory=list)


@dataclass
class InstanceSnapshot:
    """Instance → coordinator: one task's snapshot for checkpoint N.

    ``state`` is the encoded blob, or ``None`` for stateless tasks (they
    still ack the barrier — global consistency needs every task).
    """

    checkpoint_id: int
    epoch: int
    key: InstanceKey
    state: Optional[bytes] = None


@dataclass
class RestoreRequest:
    """Runtime → coordinator: a container was relaunched; roll back."""


@dataclass
class RestoreTopology:
    """Coordinator → SM: enter ``epoch``; wipe in-flight state; restore
    each local instance from ``states`` (``None`` blob = initial state)."""

    epoch: int
    checkpoint_id: int
    states: Dict[InstanceKey, Optional[bytes]] = field(default_factory=dict)


@dataclass
class RestoreInstance:
    """SM → instance: install ``epoch`` and this snapshot blob."""

    epoch: int
    checkpoint_id: int
    state: Optional[bytes] = None


@dataclass
class RestoreAck:
    """Instance → coordinator: restore applied (stats/telemetry)."""

    epoch: int
    key: InstanceKey
