"""Online auto-tuning of the Stream Manager knobs — the paper's stated
future work.

Section V-B: "As part of future work, we plan to automate the process of
configuring the values for these parameters based on real-time
observations of the workload performance." :class:`AutoTuner` implements
exactly that for the two parameters the paper discusses:

* ``cache_drain_frequency`` — tuned by hill climbing on observed
  throughput (the Fig. 12 curve is unimodal: flush overhead on the left,
  starvation on the right);
* ``max_spout_pending`` — tuned toward a latency objective: shrink the
  window when the observed latency exceeds the SLO, grow it while there
  is latency headroom and the window is the binding constraint.
"""

from repro.tuning.autotune import AutoTuner, TunerReport

__all__ = ["AutoTuner", "TunerReport"]
