"""The auto-tuner: observe throughput/latency, adjust the SM knobs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.heron import TopologyHandle

MILLIS = 1e-3


@dataclass
class TunerStep:
    """One observation + decision record."""

    time: float
    throughput_tps: float
    latency_s: float
    drain_interval: float
    max_pending: int
    action: str


@dataclass
class TunerReport:
    """The tuner's trace plus final settings."""

    steps: List[TunerStep] = field(default_factory=list)

    @property
    def final_drain_ms(self) -> float:
        return self.steps[-1].drain_interval / MILLIS if self.steps else 0.0

    @property
    def final_max_pending(self) -> int:
        return self.steps[-1].max_pending if self.steps else 0

    @property
    def best_throughput(self) -> float:
        return max((s.throughput_tps for s in self.steps), default=0.0)

    def describe(self) -> str:
        """The trace as an aligned, human-readable table."""
        lines = ["auto-tuner trace (time, Mtuples/min, latency ms, "
                 "drain ms, pending, action):"]
        for step in self.steps:
            lines.append(
                f"  t={step.time:6.2f}s  "
                f"{step.throughput_tps * 60 / 1e6:8.1f}  "
                f"{step.latency_s * 1e3:6.1f}  "
                f"{step.drain_interval / MILLIS:5.1f}  "
                f"{step.max_pending:6d}  {step.action}")
        return "\n".join(lines)


class AutoTuner:
    """Periodically observes a running topology and retunes it.

    Drives itself off the simulator clock: call :meth:`attach` once and
    it re-evaluates every ``interval`` simulated seconds. Hill climbing
    on the drain interval uses multiplicative steps and reverses
    direction when throughput degrades; the pending window tracks the
    latency SLO with multiplicative increase/decrease.
    """

    DRAIN_STEP = 1.6
    DRAIN_MIN = 0.5 * MILLIS
    DRAIN_MAX = 64 * MILLIS
    PENDING_MIN = 500
    PENDING_MAX = 200_000

    def __init__(self, handle: TopologyHandle, *, interval: float = 1.0,
                 latency_slo: Optional[float] = 0.060,
                 tolerance: float = 0.03) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.handle = handle
        self.interval = interval
        self.latency_slo = latency_slo
        self.tolerance = tolerance
        self.report = TunerReport()
        self._runtime = handle._runtime
        self._heron = handle._heron
        self._timer = None
        self._last_counts: Optional[dict] = None
        self._last_latency: Optional[tuple] = None
        self._last_time = 0.0
        self._last_throughput: Optional[float] = None
        self._drain_up = True   # current hill-climb direction
        self._settle = 0        # steps to skip after a change
        self._reversals = 0
        self._best: Optional[tuple] = None  # (throughput, drain)
        self._holding = False

    # -- lifecycle -----------------------------------------------------------
    def attach(self) -> "AutoTuner":
        """Start observing (first decision after two intervals)."""
        if self._timer is not None:
            raise RuntimeError("tuner already attached")
        self._timer = self._heron.sim.every(self.interval, self._step)
        return self

    def detach(self) -> None:
        """Stop observing and adjusting."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # -- knob plumbing ------------------------------------------------------------
    @property
    def current_drain(self) -> float:
        sms = list(self._runtime.sms.values())
        return sms[0].drain_interval if sms else 0.0

    @property
    def current_pending(self) -> int:
        for instance in self._runtime.instances.values():
            if instance.is_spout:
                return instance.max_pending
        return 0

    def _set_drain(self, interval: float) -> None:
        interval = min(max(interval, self.DRAIN_MIN), self.DRAIN_MAX)
        for sm in self._runtime.sms.values():
            if sm.alive:
                sm.set_drain_interval(interval)

    def _set_pending(self, pending: int) -> None:
        pending = min(max(pending, self.PENDING_MIN), self.PENDING_MAX)
        for instance in self._runtime.instances.values():
            if instance.alive and instance.is_spout:
                instance.max_pending = pending
                instance._wake_emit_loop()

    # -- the control loop -------------------------------------------------------------
    def _observe(self) -> Optional[tuple]:
        """(throughput tps, latency s) over the last interval."""
        now = self._heron.sim.now
        totals = self.handle.totals()
        stats = self.handle.latency_stats()
        latency_state = (stats.count, stats.total)
        if self._last_counts is None:
            self._last_counts, self._last_latency = totals, latency_state
            self._last_time = now
            return None
        window = now - self._last_time
        counter = "acked" if self._acking else "executed"
        throughput = (totals[counter] - self._last_counts[counter]) / window
        dcount = latency_state[0] - self._last_latency[0]
        dtotal = latency_state[1] - self._last_latency[1]
        latency = dtotal / dcount if dcount > 0 else 0.0
        self._last_counts, self._last_latency = totals, latency_state
        self._last_time = now
        return throughput, latency

    @property
    def _acking(self) -> bool:
        from repro.api.config_keys import TopologyConfigKeys as Keys
        return bool(self._runtime.config.get(Keys.ACKING_ENABLED))

    def _step(self) -> None:
        observation = self._observe()
        if observation is None:
            return
        throughput, latency = observation
        action = self._decide(throughput, latency)
        self.report.steps.append(TunerStep(
            time=self._heron.sim.now, throughput_tps=throughput,
            latency_s=latency, drain_interval=self.current_drain,
            max_pending=self.current_pending, action=action))

    def _objective(self, throughput: float, latency: float) -> float:
        """Throughput, penalized as latency approaches/exceeds the SLO.

        The penalty starts at 70% of the SLO so that, on a flat
        throughput plateau, configurations with latency headroom win the
        tie (otherwise measurement noise can crown a high-latency point).
        """
        if self.latency_slo is not None and self._acking and latency > 0:
            knee = 0.7 * self.latency_slo
            return throughput * min(1.0, knee / latency)
        return throughput

    def _decide(self, throughput: float, latency: float) -> str:
        if self._settle > 0:
            self._settle -= 1
            return "settling"
        objective = self._objective(throughput, latency)
        if not self._holding:
            return self._climb_drain(objective)
        return self._manage_pending(objective, throughput, latency)

    def _climb_drain(self, objective: float) -> str:
        """Hill-climb the drain interval on the penalized objective."""
        if self._best is None or objective > self._best[0]:
            self._best = (objective, self.current_drain)
        reversed_direction = False
        if self._last_throughput is not None and \
                objective < self._last_throughput * (1 - self.tolerance):
            self._drain_up = not self._drain_up
            reversed_direction = True
            self._reversals += 1
            if self._reversals >= 2:
                # Bracketed the optimum: pin to the best seen.
                self._set_drain(self._best[1])
                self._holding = True
                self._settle = 1
                self._last_throughput = None
                return f"converged: hold drain at " \
                       f"{self._best[1] / MILLIS:.1f}ms"
        self._last_throughput = objective
        old_drain = self.current_drain
        factor = self.DRAIN_STEP if self._drain_up else 1 / self.DRAIN_STEP
        new_drain = old_drain * factor
        if not self.DRAIN_MIN <= new_drain <= self.DRAIN_MAX:
            self._drain_up = not self._drain_up
            factor = self.DRAIN_STEP if self._drain_up \
                else 1 / self.DRAIN_STEP
            new_drain = old_drain * factor
        self._set_drain(new_drain)
        self._settle = 1
        direction = "up" if new_drain > old_drain else "down"
        prefix = "objective dropped: reverse, " if reversed_direction \
            else "probe "
        return f"{prefix}drain {direction} to {new_drain / MILLIS:.1f}ms"

    def _manage_pending(self, objective: float, throughput: float,
                        latency: float) -> str:
        """With the drain pinned, steer the pending window to the SLO."""
        assert self._best is not None
        if objective < self._best[0] * 0.80:
            # The workload shifted under us: re-run the drain search.
            self._holding = False
            self._reversals = 0
            self._best = (objective, self.current_drain)
            self._last_throughput = None
            return "objective regressed: resume drain probing"
        if self._acking and self.latency_slo is not None:
            if latency > self.latency_slo * 1.15:
                self._set_pending(int(self.current_pending / 1.6))
                self._settle = 1
                return f"latency {latency * 1e3:.0f}ms over SLO: " \
                       f"shrink pending"
            if latency < self.latency_slo * 0.5 and \
                    self._pending_bound(throughput, latency):
                factor = 2.0 if latency < self.latency_slo * 0.25 else 1.4
                self._set_pending(int(self.current_pending * factor))
                self._settle = 1
                return "latency headroom + window-bound: grow pending"
        return "holding at tuned settings"

    def _pending_bound(self, throughput: float, latency: float) -> bool:
        """Is the in-flight window plausibly the binding constraint?
        (Little's law: in-flight ≈ rate × latency per spout.)"""
        spouts = [i for i in self._runtime.instances.values()
                  if i.alive and i.is_spout]
        if not spouts or throughput <= 0 or latency <= 0:
            return False
        per_spout_inflight = throughput * latency / len(spouts)
        return per_spout_inflight > 0.7 * self.current_pending
