"""Declarative fault plans.

A :class:`FaultPlan` is pure data: which links misbehave and how, which
machine sets partition when, which containers straggle. The plan itself
draws no randomness — :class:`~repro.chaos.network.FaultyNetwork`
interprets it against a seeded ``RngStream``, which is what keeps chaos
runs deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.common.errors import ConfigError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class LinkFaults:
    """Per-message faults applied to every cross-container link.

    ``drop_rate`` silently loses messages; ``spike_rate`` adds
    ``spike_latency`` seconds to the occasional message; ``jitter``
    perturbs delivery latency by up to that fraction either way.
    """

    drop_rate: float = 0.0
    spike_rate: float = 0.0
    spike_latency: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        _require(0.0 <= self.drop_rate < 1.0,
                 f"drop_rate must be in [0, 1): {self.drop_rate}")
        _require(0.0 <= self.spike_rate < 1.0,
                 f"spike_rate must be in [0, 1): {self.spike_rate}")
        _require(self.spike_latency >= 0.0,
                 f"spike_latency must be >= 0: {self.spike_latency}")
        _require(0.0 <= self.jitter < 1.0,
                 f"jitter must be in [0, 1): {self.jitter}")


@dataclass(frozen=True)
class Partition:
    """A network partition isolating a set of machines for a window.

    While active, traffic within each side is untouched and traffic
    across the cut is lost according to ``direction``:

    * ``"both"`` (default) — no message crosses in either direction,
      the classic full partition;
    * ``"inbound"`` — messages *into* the named machines are lost while
      their own outbound traffic still flows;
    * ``"outbound"`` — messages *from* the named machines are lost
      while the rest of the cluster can still reach them.

    The one-way modes model asymmetric failures (half-open links, a
    firewall rule applied on one side, unidirectional NIC faults): A→B
    can be dead while B→A stays alive, which is precisely the case that
    breaks naive ack-based protocols.
    """

    start: float
    duration: float
    machines: FrozenSet[int]
    direction: str = "both"

    def __post_init__(self) -> None:
        _require(self.start >= 0.0,
                 f"partition start must be >= 0: {self.start}")
        _require(self.duration > 0.0,
                 f"partition duration must be > 0: {self.duration}")
        _require(bool(self.machines), "partition needs at least one machine")
        _require(self.direction in ("both", "inbound", "outbound"),
                 f"partition direction must be both|inbound|outbound: "
                 f"{self.direction}")

    def active(self, now: float) -> bool:
        """Whether the partition window covers sim time ``now``."""
        return self.start <= now < self.start + self.duration

    def separates(self, machine_a: int, machine_b: int) -> bool:
        """Whether the cut falls between these two machines
        (direction-agnostic: true for either crossing)."""
        return (machine_a in self.machines) != (machine_b in self.machines)

    def drops(self, src_machine: int, dst_machine: int) -> bool:
        """Whether a ``src → dst`` message is lost to this cut."""
        src_in = src_machine in self.machines
        dst_in = dst_machine in self.machines
        if src_in == dst_in:
            return False  # same side: untouched
        if self.direction == "both":
            return True
        if self.direction == "inbound":
            return dst_in
        return src_in  # outbound


@dataclass(frozen=True)
class Straggler:
    """A set of containers whose network I/O slows down for a window.

    Every message to or from a straggling container has its latency
    multiplied by ``slowdown`` (the container is reachable, just slow —
    the classic gray failure).
    """

    start: float
    duration: float
    slowdown: float
    containers: FrozenSet[int]

    def __post_init__(self) -> None:
        _require(self.start >= 0.0,
                 f"straggler start must be >= 0: {self.start}")
        _require(self.duration > 0.0,
                 f"straggler duration must be > 0: {self.duration}")
        _require(self.slowdown >= 1.0,
                 f"straggler slowdown must be >= 1: {self.slowdown}")
        _require(bool(self.containers),
                 "straggler needs at least one container")

    def active(self, now: float) -> bool:
        """Whether the straggler window covers sim time ``now``."""
        return self.start <= now < self.start + self.duration

    def applies(self, src_container: int, dst_container: int) -> bool:
        """Whether either endpoint of a message is straggling."""
        return (src_container in self.containers
                or dst_container in self.containers)


#: Legal :class:`MasterFault` kinds, in documentation order.
MASTER_FAULT_KINDS = (
    "kill-process",       # kill the TM actor itself
    "kill-machine",       # fail every container on the TM's machine
    "partition-machine",  # partition the TM's machine for ``duration``
    "expire-session",     # expire the TM's State Manager session
)


@dataclass(frozen=True)
class MasterFault:
    """A control-plane fault aimed at a topology's Topology Master.

    Unlike :class:`Partition`/:class:`Straggler` (which name machines or
    containers), a master fault targets *whichever* machine/process hosts
    the TM when the fault fires — the injector resolves the victim at
    fire time, so plans stay placement-agnostic.

    ``at`` is absolute simulation time. ``duration`` only matters for
    ``partition-machine`` (the partition window).
    """

    at: float
    kind: str
    duration: float = 1.0

    def __post_init__(self) -> None:
        _require(self.at >= 0.0,
                 f"master fault time must be >= 0: {self.at}")
        _require(self.kind in MASTER_FAULT_KINDS,
                 f"master fault kind must be one of "
                 f"{'|'.join(MASTER_FAULT_KINDS)}: {self.kind}")
        _require(self.duration > 0.0,
                 f"master fault duration must be > 0: {self.duration}")


@dataclass(frozen=True)
class FaultPlan:
    """Everything a chaos run injects, as one immutable value."""

    link: LinkFaults = LinkFaults()
    partitions: Tuple[Partition, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    master_faults: Tuple[MasterFault, ...] = ()

    def partition_seconds(self) -> float:
        """Total scheduled partition time (overlaps counted once each)."""
        return sum(partition.duration for partition in self.partitions)
