"""Chaos-schedule search: find the fault timing that hurts the most.

The chaos figures (:mod:`repro.experiments.chaos_faults`) inject a
partition at one hand-picked instant. That demonstrates recovery, but it
answers the wrong question for hardening: *of all the moments a machine
could drop off the network, which one maximizes damage?* This module
closes that ROADMAP debt item with a greedy search over
:class:`~repro.chaos.plan.Partition` start times, scored by recovery
time (``last_restore_at - fail_time`` — how long effectively-once takes
to re-establish).

Candidate seeding comes from the race tracer
(:mod:`repro.analysis.races`): a short traced baseline run records which
instants have the densest *tied arrival* activity — tie groups are
where the schedule has slack, so faults landing there interleave with
the most concurrent in-flight work. The tracer's hot times plus a
uniform grid form round zero; each refinement round then brackets the
incumbent with halved steps.

Everything stays deterministic: the workload is the bounded stateful
WordCount, one seed, and every trial builds a fresh cluster — the
search is reproducible end to end (the point of a *simulated* chaos
monkey).

Layering note: like the rest of ``repro.chaos``, this module keeps the
package importable without ``repro.core`` — engine and workload imports
happen inside the measurement functions.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.chaos.plan import FaultPlan, MasterFault, Partition

__all__ = [
    "ChaosSearchResult",
    "ChaosTrial",
    "main",
    "measure_partition_at",
    "measure_tmaster_kill_at",
    "search",
    "trace_hot_times",
]

#: One seed for every trial: chaos runs replay exactly per seed.
SEED = 11

#: Bounded stream per spout task, so every trial drains and the final
#: recovery measurement is not racing an endless source.
TUPLES_PER_TASK = 3_000
FAST_TUPLES_PER_TASK = 1_200
SPOUT_RATE = 10_000.0
PARALLELISM = 2
PARTITION_SECS = 1.0
RUN_FOR = 5.0
FAST_RUN_FOR = 3.5
HEARTBEAT = 0.1
CHECKPOINT_INTERVAL = 0.1

#: Round-zero uniform grid of partition starts (seconds after the
#: topology reports running), merged with the tracer's hot times.
GRID = (0.2, 0.4, 0.6, 0.8)

#: Candidate de-duplication resolution (seconds).
_RESOLUTION = 0.01


@dataclass(frozen=True)
class ChaosTrial:
    """One measured fault timing."""

    start: float            #: partition start (secs after running)
    recovery_secs: float    #: last restore - fail time (-1: no restore)
    relaunches: float
    suspected_failures: float

    @property
    def score(self) -> float:
        """Maximization objective; unrecovered runs rank last."""
        return self.recovery_secs


@dataclass
class ChaosSearchResult:
    """Every trial of one search, worst timing first."""

    trials: List[ChaosTrial] = field(default_factory=list)
    seeds: Tuple[float, ...] = ()        #: tracer-derived candidates

    @property
    def best(self) -> ChaosTrial:
        return max(self.trials, key=lambda t: t.score)

    def format(self) -> str:
        """Render trials ranked by score plus the worst-case summary."""
        lines = [f"{len(self.trials)} trials "
                 f"(tracer seeds: "
                 f"{', '.join(f'{s:g}' for s in self.seeds) or 'none'})"]
        for trial in sorted(self.trials, key=lambda t: -t.score):
            lines.append(
                f"  fault at +{trial.start:6.3f}s -> recovery "
                f"{trial.recovery_secs:6.3f}s, "
                f"{trial.relaunches:g} relaunches, "
                f"{trial.suspected_failures:g} suspected failures")
        best = self.best
        lines.append(f"worst-case timing: +{best.start:g}s "
                     f"(recovery {best.recovery_secs:g}s)")
        return "\n".join(lines)


def _config(fast: bool):
    from repro.api.config_keys import TopologyConfigKeys as Keys
    from repro.common.config import Config
    return (Config()
            .set(Keys.ACKING_ENABLED, False)
            .set(Keys.BATCH_SIZE, 50)
            .set(Keys.SAMPLE_CAP, 0)
            .set(Keys.INSTANCES_PER_CONTAINER, 2)
            .set(Keys.HEARTBEAT_INTERVAL_SECS, HEARTBEAT)
            .set(Keys.CHECKPOINT_ENABLED, True)
            .set(Keys.CHECKPOINT_INTERVAL_SECS, CHECKPOINT_INTERVAL))


def _build_cluster(fast: bool, fault_plan: Optional[FaultPlan] = None,
                   sim=None):
    """The fixed search substrate: 6 small machines, one container per
    machine (a partition isolates exactly one SM, never the TM)."""
    from repro.common.resources import Resource
    from repro.common.units import GB
    from repro.core.heron import HeronCluster
    from repro.scheduler.frameworks import YarnFramework
    from repro.simulation.cluster import Cluster
    from repro.workloads.stateful_wordcount import \
        stateful_wordcount_topology

    machine = Resource(cpu=4, ram=8 * GB, disk=100 * GB)
    if sim is None:
        from repro.simulation.events import Simulator
        sim = Simulator()
    framework = YarnFramework(sim, Cluster.homogeneous(6, machine))
    cluster = HeronCluster(framework=framework, seed=SEED,
                           fault_plan=fault_plan)
    topology = stateful_wordcount_topology(
        PARALLELISM,
        total_tuples=FAST_TUPLES_PER_TASK if fast else TUPLES_PER_TASK,
        rate=SPOUT_RATE, config=_config(fast))
    handle = cluster.submit_topology(topology)
    handle.wait_until_running()
    return cluster, handle


def trace_hot_times(fast: bool = False, limit: int = 4) -> List[float]:
    """Tied-arrival hot spots of a fault-free traced baseline run.

    Returns instants (relative to topology running) bucketed to
    ``_RESOLUTION``; empty when the workload exhibits no multi-event
    tie groups with arrivals — callers fall back to the uniform grid.
    """
    from repro.analysis.races import CausalTracer, attach_tracer
    from repro.simulation.events import Simulator

    sim = Simulator(sanitize=True, tie_order="fifo")
    cluster, handle = _build_cluster(fast, sim=sim)
    running_at = cluster.sim.now
    tracer = CausalTracer()
    attach_tracer(sim, tracer)
    cluster.run_for(FAST_RUN_FOR if fast else RUN_FOR)
    tracer.finalize()
    handle.kill()
    buckets = sorted({round((t - running_at) / _RESOLUTION)
                      for t in tracer.hot_times(limit * 4)
                      if t > running_at})
    return [b * _RESOLUTION for b in buckets if b > 0][:limit]


def measure_partition_at(start: float, *, fast: bool = False) -> ChaosTrial:
    """Partition one non-TM machine ``start`` secs after running."""
    plan = FaultPlan()  # the partition is installed once ids are known
    cluster, handle = _build_cluster(fast, fault_plan=plan)
    runtime = handle._runtime
    tm_machine = runtime.tmaster.location.machine_id
    victim = next(sm.location.machine_id for sm in runtime.sms.values()
                  if sm.location.machine_id != tm_machine)
    fail_time = cluster.sim.now + start
    assert cluster.chaos is not None
    cluster.chaos.add_partition(Partition(
        start=fail_time, duration=PARTITION_SECS,
        machines=frozenset({victim})))
    cluster.run_for(FAST_RUN_FOR if fast else RUN_FOR)
    stats = handle.checkpoint_stats()
    failures = handle.failure_stats()
    recovery = (stats["last_restore_at"] - fail_time
                if stats["last_restore_at"] >= 0 else -1.0)
    handle.kill()
    return ChaosTrial(start=start, recovery_secs=recovery,
                      relaunches=failures["relaunches_requested"],
                      suspected_failures=failures["suspected_failures"])


def measure_tmaster_kill_at(start: float, *,
                            fast: bool = False) -> ChaosTrial:
    """Kill the TM process ``start`` secs after running.

    Recovery here is the **control-plane outage**: fault time → the
    replacement master's first plan broadcast (data flow never needs a
    checkpoint rollback for a pure master kill, so the partition
    metric's ``last_restore_at`` would read nothing).
    """
    cluster, handle = _build_cluster(fast, fault_plan=FaultPlan())
    fail_time = cluster.sim.now + start
    handle.inject_master_fault(MasterFault(at=fail_time,
                                           kind="kill-process"))
    cluster.run_for(FAST_RUN_FOR if fast else RUN_FOR)
    failures = handle.failure_stats()
    tmaster = handle._runtime.tmaster
    recovery = -1.0
    if (failures["tm_failovers"] > 0 and tmaster is not None
            and tmaster.alive and tmaster.first_broadcast_at is not None
            and tmaster.first_broadcast_at >= fail_time):
        recovery = tmaster.first_broadcast_at - fail_time
    handle.kill()
    return ChaosTrial(start=start, recovery_secs=recovery,
                      relaunches=failures["relaunches_requested"],
                      suspected_failures=failures["suspected_failures"])


#: Fault vocabulary of the search: name → measurement function.
FAULT_MODES = {
    "partition": measure_partition_at,
    "tm-kill": measure_tmaster_kill_at,
}


def search(*, rounds: int = 2, fast: bool = False,
           grid: Iterable[float] = GRID,
           fault: str = "partition") -> ChaosSearchResult:
    """Greedy refinement over fault start times.

    Round zero evaluates the tracer's hot times plus ``grid``; each
    later round brackets the incumbent best at half the previous
    spacing. Greedy is the right tool here: recovery time responds to
    where the fault lands relative to checkpoint/heartbeat cadence, a
    locally smooth landscape with a few plateaus. ``fault`` picks the
    vocabulary entry (:data:`FAULT_MODES`): machine partitions scored
    by rollback recovery, or TM kills scored by control-plane outage.
    """
    measure_fn = FAULT_MODES[fault]
    seeds = tuple(trace_hot_times(fast))
    result = ChaosSearchResult(seeds=seeds)
    measured: Dict[int, ChaosTrial] = {}

    def measure(start: float) -> None:
        bucket = round(start / _RESOLUTION)
        if start <= 0 or bucket in measured:
            return
        trial = measure_fn(bucket * _RESOLUTION, fast=fast)
        measured[bucket] = trial
        result.trials.append(trial)

    candidates = sorted(set(seeds) | set(grid))
    for start in candidates:
        measure(start)
    step = (max(candidates) - min(candidates)) / max(
        1, len(candidates) - 1) / 2 if len(candidates) > 1 else 0.1
    for _round in range(rounds):
        incumbent = result.best.start
        measure(incumbent - step)
        measure(incumbent + step)
        step /= 2
    return result


def main(argv: Optional[Iterable[str]] = None) -> int:
    """``heron-sim chaos-search`` — adversarial fault-timing search."""
    parser = argparse.ArgumentParser(
        prog="heron-sim chaos-search",
        description="Greedy search over FaultPlan partition timings "
                    "maximizing recovery time, seeded by the race "
                    "tracer's tie hot spots.")
    parser.add_argument("--rounds", type=int, default=2,
                        help="greedy refinement rounds (default 2)")
    parser.add_argument("--fast", action="store_true",
                        help="short smoke run (CI)")
    parser.add_argument("--fault", choices=sorted(FAULT_MODES),
                        default="partition",
                        help="fault vocabulary: machine partition "
                             "(rollback recovery) or tm-kill "
                             "(control-plane outage; default partition)")
    args = parser.parse_args(list(argv) if argv is not None else None)
    result = search(rounds=args.rounds, fast=args.fast, fault=args.fault)
    print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
