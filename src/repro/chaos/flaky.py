"""A State Manager that fails on purpose.

:class:`FlakyStateManager` is the in-memory State Manager with seeded
fault injection on its read/write primitives: a per-operation failure
probability plus optional hard outage windows during which *every*
operation raises :class:`~repro.common.errors.StateError`. It exists to
exercise the engine's bounded retry-with-backoff paths (TM liveness
advertisement, checkpoint commits) without touching a disk.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.common.errors import StateError
from repro.simulation.rng import RngStream
from repro.statemgr.base import StateManager, StateSession


class FlakyStateManager(StateManager):
    """In-memory State Manager with deterministic fault injection.

    ``fail_rate`` draws one seeded coin per create/set/get; ``outages``
    are ``(start, end)`` simulated-time windows (requires ``now``) during
    which those operations always fail. Deletes and existence checks stay
    reliable so session expiry can always clean up ephemerals.
    """

    def __init__(self, *, rng: RngStream, fail_rate: float = 0.0,
                 outages: Sequence[Tuple[float, float]] = (),
                 now: Optional[Callable[[], float]] = None) -> None:
        super().__init__()
        if not 0.0 <= fail_rate < 1.0:
            raise StateError(f"fail_rate must be in [0, 1): {fail_rate}")
        if outages and now is None:
            raise StateError("outage windows need a `now` clock")
        self._rng = rng
        self.fail_rate = fail_rate
        self.outages = tuple(outages)
        self._now = now
        self.injected_failures = 0

    def _maybe_fail(self, op: str, path: str) -> None:
        if self._now is not None:
            now = self._now()
            for start, end in self.outages:
                if start <= now < end:
                    self.injected_failures += 1
                    raise StateError(
                        f"injected statemgr outage during {op} {path!r}")
        if self.fail_rate > 0.0 and self._rng.random() < self.fail_rate:
            self.injected_failures += 1
            raise StateError(
                f"injected statemgr fault during {op} {path!r}")

    # -- faulted primitives -------------------------------------------------
    def get(self, path: str) -> Tuple[bytes, int]:
        self._maybe_fail("get", path)
        return super().get(path)

    def set(self, path: str, data: bytes,
            expected_version: Optional[int] = None) -> int:
        self._maybe_fail("set", path)
        return super().set(path, data, expected_version)

    def _create(self, path: str, data: bytes, ephemeral: bool,
                session: Optional[StateSession]) -> None:
        self._maybe_fail("create", path)
        super()._create(path, data, ephemeral, session)
