"""Fault-injecting wrapper around the simulation network.

:class:`FaultyNetwork` sits between actors and the real latency model,
perturbing only *cross-container* messages (an actor's self-timers and
intra-container SM↔instance traffic stay reliable — processes do not
lose messages to themselves over localhost). Returning ``None`` from
``latency`` tells :meth:`repro.simulation.actors.Actor.send` to drop the
message on the floor, exactly like a lossy datacenter link.

All randomness is drawn from one seeded ``RngStream`` in a fixed order
per message (partition check, drop draw, straggler scan, spike draw,
jitter draw), so a given seed + :class:`FaultPlan` replays the identical
fault sequence run after run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.chaos.plan import FaultPlan, Partition, Straggler
from repro.simulation.actors import Location, NetworkProtocol
from repro.simulation.rng import RngStream


class FaultyNetwork(NetworkProtocol):
    """Interpret a :class:`FaultPlan` over an inner network model."""

    def __init__(self, inner: NetworkProtocol, *, plan: FaultPlan,
                 now: Callable[[], float], rng: RngStream) -> None:
        self.inner = inner
        self.plan = plan
        self._now = now
        self._rng = rng
        self._partitions: List[Partition] = list(plan.partitions)
        self._stragglers: List[Straggler] = list(plan.stragglers)
        self.drops = 0
        self.partition_drops = 0
        self.spikes = 0
        self.straggler_hits = 0

    # -- runtime mutation ---------------------------------------------------
    # Concrete machine/container ids are only known after submission, so
    # tests and experiments add targeted windows once the topology is up.
    def add_partition(self, partition: Partition) -> None:
        """Install one more partition window at runtime."""
        self._partitions.append(partition)

    def add_straggler(self, straggler: Straggler) -> None:
        """Install one more straggler window at runtime."""
        self._stragglers.append(straggler)

    # -- NetworkProtocol ----------------------------------------------------
    def latency(self, src: Location, dst: Location) -> Optional[float]:
        if (src.machine_id == dst.machine_id
                and src.container_id == dst.container_id):
            return self.inner.latency(src, dst)
        now = self._now()
        for partition in self._partitions:
            if partition.active(now) and partition.drops(
                    src.machine_id, dst.machine_id):
                self.partition_drops += 1
                return None
        link = self.plan.link
        if link.drop_rate > 0.0 and self._rng.random() < link.drop_rate:
            self.drops += 1
            return None
        base = self.inner.latency(src, dst)
        if base is None:
            return None
        for straggler in self._stragglers:
            if straggler.active(now) and straggler.applies(
                    src.container_id, dst.container_id):
                self.straggler_hits += 1
                base *= straggler.slowdown
        if link.spike_rate > 0.0 and self._rng.random() < link.spike_rate:
            self.spikes += 1
            base += link.spike_latency
        if link.jitter > 0.0:
            base = self._rng.jitter(base, link.jitter)
        return base

    # -- metrics ------------------------------------------------------------
    def partition_seconds(self) -> float:
        """Total partition window time installed so far."""
        return sum(partition.duration for partition in self._partitions)

    def stats(self) -> Dict[str, float]:
        """Injected-fault counters (all floats, experiment-friendly)."""
        return {
            "drops": float(self.drops),
            "partition_drops": float(self.partition_drops),
            "spikes": float(self.spikes),
            "straggler_hits": float(self.straggler_hits),
            "partition_seconds": self.partition_seconds(),
        }
