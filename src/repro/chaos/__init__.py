"""Deterministic chaos engineering for the simulated Heron cluster.

``repro.chaos`` injects faults *underneath* the engine — message drops,
latency spikes, network partitions, straggler containers, flaky State
Managers — driven entirely by a declarative :class:`FaultPlan` and the
cluster's seeded RNG streams, so every chaos run is reproducible from
its seed and safe under ``REPRO_SANITIZE=1``.

The package deliberately imports nothing from ``repro.core``: the engine
depends on chaos primitives (:class:`BackoffPolicy`), never the other
way around.
"""

from repro.chaos.flaky import FlakyStateManager
from repro.chaos.injector import MasterFaultInjector
from repro.chaos.network import FaultyNetwork
from repro.chaos.plan import (FaultPlan, LinkFaults, MasterFault, Partition,
                              Straggler)
from repro.chaos.policy import BackoffPolicy
from repro.chaos.search import (ChaosSearchResult, ChaosTrial,
                                measure_partition_at, measure_tmaster_kill_at,
                                search, trace_hot_times)

__all__ = [
    "BackoffPolicy",
    "ChaosSearchResult",
    "ChaosTrial",
    "FaultPlan",
    "FaultyNetwork",
    "FlakyStateManager",
    "LinkFaults",
    "MasterFault",
    "MasterFaultInjector",
    "Partition",
    "Straggler",
    "measure_partition_at",
    "measure_tmaster_kill_at",
    "search",
    "trace_hot_times",
]
