"""Retry/backoff policy shared by the engine's control-plane retries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigError
from repro.simulation.rng import RngStream


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with optional seeded jitter.

    Attempt ``n`` (0-based) waits ``min(cap, base * factor**n)`` seconds,
    jittered by ``jitter`` fraction when an ``RngStream`` is supplied —
    jitter comes from the simulation's seeded RNG, never from global
    randomness, so retry schedules are deterministic per seed.
    """

    base: float = 0.1
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1 or self.cap < self.base:
            raise ConfigError(
                f"invalid backoff: base={self.base} factor={self.factor} "
                f"cap={self.cap}")
        if not 0 <= self.jitter < 1:
            raise ConfigError(f"jitter must be in [0, 1): {self.jitter}")

    def delay(self, attempt: int, rng: Optional[RngStream] = None) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        delay = min(self.cap, self.base * self.factor ** max(0, attempt))
        if rng is not None and self.jitter > 0.0:
            delay = rng.jitter(delay, self.jitter)
        return delay
