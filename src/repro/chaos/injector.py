"""Control-plane fault injection: aim faults at the Topology Master.

:class:`MasterFaultInjector` turns declarative
:class:`~repro.chaos.plan.MasterFault` entries into engine actions at
their scheduled instants. The injector itself knows nothing about the
engine — the runtime hands it one hook per fault kind (kill the TM
process, fail its machine, partition its machine, expire its State
Manager session) and ``schedule``/``now`` callables from the simulation
kernel, which keeps ``repro.chaos`` importable without ``repro.core``
(the package's layering rule).

A hook returns ``True`` when the fault landed and ``False`` when there
was nothing to hit (e.g. the TM is already dead, or the run has no
chaos network to install a partition into); both outcomes are counted
so tests and the chaos-search scorer can tell planned faults from
delivered ones.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from repro.chaos.plan import MASTER_FAULT_KINDS, MasterFault
from repro.common.errors import ConfigError

__all__ = ["MasterFaultInjector"]

#: A fault-kind hook: perform the fault, report whether it landed.
FaultHook = Callable[[MasterFault], bool]


class MasterFaultInjector:
    """Fires :class:`MasterFault` entries through engine-supplied hooks.

    ``schedule(delay, fn)`` must run ``fn`` after ``delay`` simulated
    seconds; ``now()`` must return current simulation time. ``hooks``
    maps every fault kind in
    :data:`~repro.chaos.plan.MASTER_FAULT_KINDS` to its action.
    """

    def __init__(self, *, schedule: Callable[[float, Callable[[], None]],
                                             object],
                 now: Callable[[], float],
                 hooks: Mapping[str, FaultHook]) -> None:
        missing = [kind for kind in MASTER_FAULT_KINDS if kind not in hooks]
        if missing:
            raise ConfigError(
                f"master fault hooks missing for: {', '.join(missing)}")
        self._schedule = schedule
        self._now = now
        self._hooks = dict(hooks)
        self.injected: Dict[str, int] = {k: 0 for k in MASTER_FAULT_KINDS}
        self.missed: Dict[str, int] = {k: 0 for k in MASTER_FAULT_KINDS}
        self.armed: List[MasterFault] = []

    def arm(self, fault: MasterFault) -> None:
        """Schedule ``fault`` for its absolute time ``fault.at``
        (immediately if that instant has already passed)."""
        self.armed.append(fault)
        delay = max(0.0, fault.at - self._now())
        self._schedule(delay, lambda: self.inject(fault))

    def inject(self, fault: MasterFault) -> bool:
        """Fire ``fault`` now; returns whether it found a victim."""
        landed = self._hooks[fault.kind](fault)
        if landed:
            self.injected[fault.kind] += 1
        else:
            self.missed[fault.kind] += 1
        return landed

    def stats(self) -> Dict[str, float]:
        """Flat counters for experiment CSVs and assertions."""
        out: Dict[str, float] = {
            "armed": float(len(self.armed)),
            "injected": float(sum(self.injected.values())),
            "missed": float(sum(self.missed.values())),
        }
        for kind in MASTER_FAULT_KINDS:
            out[f"injected[{kind}]"] = float(self.injected[kind])
        return out
