"""The discretized-stream engine.

Model (following Spark Streaming's architecture):

* **receivers** ingest records continuously into the current block;
* every ``batch_interval`` the **driver** seals the pending blocks into a
  batch and runs the topology's bolt stages over it, stage by stage with
  a shuffle barrier between stages (Spark's narrow/wide dependency
  boundary);
* each stage spawns one task per partition; tasks run on a fixed pool of
  **executor** processes, each costing a scheduling overhead plus
  per-record processing;
* a record's latency = batch completion time − record arrival time.

Like the other engines it executes real user bolt code (via
``execute_batch``) and charges CPU through the shared cost model. It
supports linear spout→bolt→…→bolt chains, which covers the paper's
workloads; it is a comparison baseline, not a full Spark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.component import ComponentContext
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.topology import Topology
from repro.api.tuples import Batch
from repro.common.errors import TopologyError
from repro.core.instance import InstanceCollector
from repro.metrics.stats import WeightedStats
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostModel, DEFAULT_COST_MODEL
from repro.simulation.events import Simulator
from repro.simulation.network import Network

MICROS = 1e-6
MILLIS = 1e-3

#: Driver-side cost of scheduling one task (Spark's per-task overhead).
TASK_SCHEDULING_OVERHEAD = 120.0 * MICROS

#: Executor-side per-record processing cost (deserialize + iterate).
PER_RECORD_COST = 1.2 * MICROS

#: Fixed per-task launch cost on the executor.
TASK_LAUNCH_COST = 250.0 * MICROS


@dataclass
class _Task:
    batch_id: int
    stage: int
    values: List[Any]
    count: int
    arrival_time_sum: float


@dataclass
class _TaskDone:
    batch_id: int
    stage: int


@dataclass
class MicroBatchResult:
    """What a finished run reports."""

    records_processed: int
    batches_completed: int
    latency: WeightedStats
    fell_behind: bool

    @property
    def mean_latency(self) -> float:
        return self.latency.mean


class _ExecutorProcess(Actor):
    """A shared executor process running tasks from any stage."""

    def __init__(self, sim: Simulator, index: int, *, location: Location,
                 network, ledger: Optional[CostLedger],
                 engine: "MicroBatchEngine") -> None:
        super().__init__(sim, f"mb-executor-{index}", location,
                         network=network, ledger=ledger,
                         group="microbatch-executor")
        self.engine = engine

    def on_message(self, message: Any) -> None:
        if not isinstance(message, _Task):
            return
        engine = self.engine
        self.charge(TASK_LAUNCH_COST)
        self.charge(message.count * PER_RECORD_COST)
        stage_bolt = engine.stage_bolts[message.stage]
        if stage_bolt.user_cost_per_tuple:
            self.charge(message.count * stage_bolt.user_cost_per_tuple,
                        "user")
        collector = InstanceCollector(_FakeInstance())
        collector.begin()
        batch = Batch(values=message.values, count=message.count,
                      source_component=engine.stage_names[message.stage])
        stage_bolt.execute_batch(batch, collector)
        # Stage output feeds the next stage's pending partitions.
        engine.stage_output(message, collector)
        self.send(engine.driver, _TaskDone(message.batch_id, message.stage))


class _FakeInstance:
    """Minimal duck-type for InstanceCollector outside a Heron instance."""

    exact_acking = False
    is_spout = False
    key = ("microbatch", 0)

    def next_tuple_id(self) -> int:  # pragma: no cover - never called
        return 0


class _BatchTick:
    pass


class _IngestTick:
    pass


class _Driver(Actor):
    """Seals batches and schedules stage tasks with barriers."""

    def __init__(self, sim: Simulator, *, location: Location, network,
                 ledger: Optional[CostLedger],
                 engine: "MicroBatchEngine") -> None:
        super().__init__(sim, "mb-driver", location, network=network,
                         ledger=ledger, group="microbatch-driver")
        self.engine = engine
        self._outstanding: Dict[int, int] = {}

    def on_message(self, message: Any) -> None:
        if isinstance(message, _BatchTick):
            self.engine.seal_batch(self)
        elif isinstance(message, _TaskDone):
            self._task_done(message)

    def schedule_stage(self, batch_id: int, stage: int,
                       partitions: List[_Task]) -> None:
        self.charge(TASK_SCHEDULING_OVERHEAD * max(1, len(partitions)))
        self._outstanding[batch_id] = len(partitions)
        if not partitions:
            self.engine.stage_complete(self, batch_id, stage)
            return
        for index, task in enumerate(partitions):
            executor = self.engine.executors[
                index % len(self.engine.executors)]
            self.send(executor, task)

    def _task_done(self, done: _TaskDone) -> None:
        self.charge(TASK_SCHEDULING_OVERHEAD / 4)
        self._outstanding[done.batch_id] -= 1
        if self._outstanding[done.batch_id] == 0:
            del self._outstanding[done.batch_id]
            self.engine.stage_complete(self, done.batch_id, done.stage)


class _Receiver(Actor):
    """Continuously ingests records into the current block."""

    def __init__(self, sim: Simulator, index: int, *, location: Location,
                 network, ledger: Optional[CostLedger],
                 engine: "MicroBatchEngine") -> None:
        super().__init__(sim, f"mb-receiver-{index}", location,
                         network=network, ledger=ledger,
                         group="microbatch-receiver")
        self.engine = engine

    def on_message(self, message: Any) -> None:
        if isinstance(message, _IngestTick):
            self.engine.ingest(self)


class MicroBatchEngine:
    """Runs a linear topology in discretized micro-batches."""

    def __init__(self, topology: Topology, *,
                 batch_interval: float = 0.5,
                 input_rate: float = 200_000.0,
                 executor_count: int = 4,
                 ingest_tick: float = 10 * MILLIS,
                 costs: Optional[CostModel] = None,
                 sim: Optional[Simulator] = None) -> None:
        if batch_interval <= 0 or input_rate <= 0:
            raise ValueError("batch_interval and input_rate must be > 0")
        self.topology = topology
        self.batch_interval = batch_interval
        self.input_rate = input_rate
        self.ingest_tick = ingest_tick
        self.sim = sim or Simulator()
        self.costs = costs or DEFAULT_COST_MODEL
        network = Network(self.costs)
        self.ledger = CostLedger()

        self.stage_names, self.stage_bolts = self._linearize(topology)
        self.sample_cap = int(topology.config.get(Keys.SAMPLE_CAP)) or 0

        # The spout only *generates* records here; rate is driver-limited.
        spout_spec = next(iter(topology.spouts.values()))
        import copy
        self.source = copy.deepcopy(spout_spec.spout)
        context = ComponentContext(topology.name, spout_spec.name, 0,
                                   1, topology.config)
        context.now = lambda: self.sim.now  # type: ignore[method-assign]
        self._source_collector = InstanceCollector(_FakeInstance())
        self.source.open(context, self._source_collector)
        for stage_index, bolt in enumerate(self.stage_bolts):
            bolt.prepare(ComponentContext(
                topology.name, self.stage_names[stage_index], 0, 1,
                topology.config), self._source_collector)

        loc = Location.of(0, 0, 0)
        self.driver = _Driver(self.sim, location=loc, network=network,
                              ledger=self.ledger, engine=self)
        self.executors = [
            _ExecutorProcess(self.sim, i, location=Location.of(0, 0, i + 1),
                             network=network, ledger=self.ledger,
                             engine=self)
            for i in range(executor_count)
        ]
        self.receiver = _Receiver(self.sim, 0,
                                  location=Location.of(0, 0, 99),
                                  network=network, ledger=self.ledger,
                                  engine=self)

        # Block under accumulation: (values sample, count, arrival sum).
        self._block: Tuple[List, int, float] = ([], 0, 0.0)
        self._batches: Dict[int, Dict] = {}
        self._batch_ids = iter(range(1, 1 << 30))
        self._stage_buffers: Dict[Tuple[int, int], List[_Task]] = {}

        self.records_processed = 0
        self.batches_completed = 0
        self.latency = WeightedStats()
        self.max_batch_delay = 0.0

        self.sim.every(self.ingest_tick,
                       lambda: self.receiver.deliver(_IngestTick()))
        self.sim.every(self.batch_interval,
                       lambda: self.driver.deliver(_BatchTick()))

    @staticmethod
    def _linearize(topology: Topology):
        """Check the topology is a linear chain and order its bolts."""
        if len(topology.spouts) != 1:
            raise TopologyError("micro-batch engine needs exactly 1 spout")
        names, bolts = [], []
        current = next(iter(topology.spouts))
        while True:
            downstream = [d for stream in ("default",)
                          for d, _g in topology.downstream(current, stream)]
            if not downstream:
                break
            if len(downstream) != 1:
                raise TopologyError(
                    "micro-batch engine supports linear chains only")
            current = downstream[0]
            names.append(current)
            bolts.append(topology.bolts[current].bolt)
        if not bolts:
            raise TopologyError("topology has no bolt stages")
        return names, bolts

    # -- ingestion ------------------------------------------------------------
    def ingest(self, receiver: _Receiver) -> None:
        """Pull one tick's records from the source into the open block."""
        now = self.sim.now
        count = int(self.input_rate * self.ingest_tick)
        concrete = min(count, self.sample_cap) if self.sample_cap else count
        self._source_collector.begin()
        self.source.next_batch(self._source_collector, concrete)
        values = self._source_collector.emitted.get("default", [])[:concrete]
        receiver.charge(count * self.costs.instance_serialize_per_tuple)
        block_values, block_count, block_arrivals = self._block
        block_values.extend(values)
        self._block = (block_values, block_count + count,
                       block_arrivals + now * count)

    # -- batch lifecycle ---------------------------------------------------------
    def seal_batch(self, driver: _Driver) -> None:
        """Close the open block and schedule stage 0 over it."""
        values, count, arrival_sum = self._block
        self._block = ([], 0, 0.0)
        if count == 0:
            return
        batch_id = next(self._batch_ids)
        partitions = self._partition(values, count, arrival_sum,
                                     batch_id, stage=0)
        self._batches[batch_id] = {"arrival_sum": arrival_sum,
                                   "count": count,
                                   "sealed_at": self.sim.now}
        driver.schedule_stage(batch_id, 0, partitions)

    def _partition(self, values: List, count: int, arrival_sum: float,
                   batch_id: int, stage: int) -> List[_Task]:
        width = max(1, len(self.executors))
        tasks = []
        share = max(1, count // width)
        concrete_share = max(1, len(values) // width) if values else 0
        remaining = count
        for index in range(width):
            if remaining <= 0:
                break
            task_count = remaining if index == width - 1 \
                else min(share, remaining)
            remaining -= task_count
            chunk = values[index * concrete_share:
                           (index + 1) * concrete_share] if values else []
            if len(chunk) > task_count:
                chunk = chunk[:task_count]
            tasks.append(_Task(batch_id, stage, chunk, task_count,
                               arrival_sum * task_count / count))
        return tasks

    def stage_output(self, task: _Task, collector) -> None:
        """Collect a task's emissions as input for the next stage."""
        next_stage = task.stage + 1
        if next_stage >= len(self.stage_bolts):
            return
        values = collector.emitted.get("default", [])
        extra = collector.extra_counts.get("default", 0)
        count = len(values) + extra
        if count == 0:
            return
        buffer = self._stage_buffers.setdefault((task.batch_id, next_stage),
                                                [])
        buffer.append(_Task(task.batch_id, next_stage, values, count,
                            task.arrival_time_sum * count / task.count))

    def stage_complete(self, driver: _Driver, batch_id: int,
                       stage: int) -> None:
        """Barrier: a stage finished; run the next or finish the batch."""
        next_stage = stage + 1
        pending = self._stage_buffers.pop((batch_id, next_stage), None)
        if next_stage < len(self.stage_bolts) and pending:
            driver.schedule_stage(batch_id, next_stage, pending)
            return
        # Batch finished (either last stage, or nothing left to do).
        info = self._batches.pop(batch_id)
        count = info["count"]
        self.records_processed += count
        self.batches_completed += 1
        mean_arrival = info["arrival_sum"] / count
        self.latency.add(self.sim.now - mean_arrival, weight=count)
        delay = self.sim.now - info["sealed_at"]
        self.max_batch_delay = max(self.max_batch_delay, delay)

    # -- running ----------------------------------------------------------------
    def run(self, duration: float) -> MicroBatchResult:
        """Advance simulated time and return the result summary."""
        self.sim.run_for(duration)
        return MicroBatchResult(
            records_processed=self.records_processed,
            batches_completed=self.batches_completed,
            latency=self.latency,
            fell_behind=self.max_batch_delay > self.batch_interval)
