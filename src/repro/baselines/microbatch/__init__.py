"""A Spark-Streaming-style micro-batch engine (the Section III-B
comparison).

"Because of its architecture, it operates on small batches of input data
and thus it is not suitable for applications with latency needs below a
few hundred milliseconds." This engine exists to reproduce exactly that
behavioural contrast: records wait for the next batch boundary, then a
driver schedules stage-by-stage tasks over shared executor processes, so
end-to-end latency is bounded below by roughly half the batch interval
plus scheduling and processing time — however fast the hardware.
"""

from repro.baselines.microbatch.engine import (MicroBatchEngine,
                                               MicroBatchResult)

__all__ = ["MicroBatchEngine", "MicroBatchResult"]
