"""A Storm-architecture streaming engine (the Section III-A baseline).

Architectural contrasts with Heron, all modeled here:

* **Monolithic scheduling** — "the resources for a Storm cluster must be
  acquired before any topology can be submitted": a
  :class:`StormCluster` pre-acquires every supervisor slot at
  construction; topologies then pack executors into those fixed workers.
* **Shared JVMs** — "Storm... packs multiple spout and bolt tasks into a
  single executor. Each executor shares the same JVM with other
  executors": executors are threads of a worker process, and their
  service times inflate with thread contention.
* **Communication on the processing path** — "the threads that perform
  the communication operations and the actual processing tasks share the
  same JVM": (de)serialization for inter-worker transfer is charged on
  executor threads, and a per-worker transfer thread moves buffers
  between workers.
* **Acker executors** — acking flows through dedicated acker executors
  living in the same JVMs.
"""

from repro.baselines.storm.cluster import StormCluster, StormTopologyHandle
from repro.baselines.storm.config_keys import StormConfigKeys

__all__ = ["StormCluster", "StormConfigKeys", "StormTopologyHandle"]
