"""The Storm baseline cluster: pre-acquired slots, workers, wiring.

Monolithic by design (that is the point of the baseline): scheduling,
resource management and process placement all happen inside
:meth:`StormCluster.submit_topology`, with none of Heron's module
boundaries. "The resources for a Storm cluster must be acquired before
any topology can be submitted" — the constructor grabs every supervisor
slot up front, and topologies compete for those fixed slots.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.api.config_keys import SCHEMA as TOPOLOGY_SCHEMA
from repro.api.topology import Topology
from repro.baselines.storm.config_keys import SCHEMA as STORM_SCHEMA
from repro.baselines.storm.config_keys import StormConfigKeys as StormKeys
from repro.baselines.storm.executor import (ACKER_COMPONENT, AckerExecutor,
                                             StormExecutor, _Start)
from repro.baselines.storm.messages import (AckPacket, RemoteBatch,
                                             TransferOut, WorkerDelivery,
                                             merge_batches)
from repro.chaos.network import FaultyNetwork
from repro.chaos.plan import FaultPlan
from repro.common.config import Config
from repro.common.errors import SchedulerError, TopologyError
from repro.common.resources import Resource
from repro.common.units import GB
from repro.core.messages import (InstanceKey, PauseSpouts,
                                 ResumeSpouts)
from repro.metrics.stats import WeightedStats
from repro.simulation.actors import (Actor, CostLedger, Location,
                                     NetworkProtocol)
from repro.simulation.cluster import Cluster, Container
from repro.simulation.costs import CostModel, DEFAULT_COST_MODEL
from repro.simulation.events import Simulator
from repro.simulation.network import Network
from repro.simulation.rng import RngRegistry

MILLIS = 1e-3

DEFAULT_SUPERVISOR = Resource(cpu=8, ram=28 * GB, disk=500 * GB)


class _FlushTick:
    """Self-timer: flush transfer buffers + check backpressure."""


class WorkerTransfer(Actor):
    """The worker's transfer thread: buffers inter-worker traffic."""

    def __init__(self, sim: Simulator, worker_id: int, *,
                 location: Location, network, ledger: Optional[CostLedger],
                 costs: CostModel, flush_interval: float,
                 high_watermark: int = 120, low_watermark: int = 40) -> None:
        super().__init__(sim, f"storm-transfer-{worker_id}", location,
                         network=network, ledger=ledger,
                         group="storm-transfer")
        self.worker_id = worker_id
        self.costs = costs
        self.peers: Dict[int, "WorkerTransfer"] = {}
        self.local_executors: Dict[InstanceKey, Actor] = {}
        self.spout_executors: List[Actor] = []
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.in_backpressure = False
        self._buffers: Dict[int, WorkerDelivery] = {}
        self.batches_forwarded = 0
        self.every(flush_interval, lambda: self.deliver(_FlushTick()))

    def on_message(self, message: Any) -> None:
        if isinstance(message, TransferOut):
            self._buffer(message)
        elif isinstance(message, WorkerDelivery):
            self._handle_delivery(message)
        elif isinstance(message, _FlushTick):
            self._flush()
            self._check_backpressure()

    def _buffer(self, message: TransferOut) -> None:
        for dest_worker, payload in message.items:
            self.charge(self.costs.storm_batch_overhead)
            delivery = self._buffers.get(dest_worker)
            if delivery is None:
                delivery = WorkerDelivery(self.worker_id)
                self._buffers[dest_worker] = delivery
            if isinstance(payload, AckPacket):
                delivery.ack_packets.append(payload)
            else:
                delivery.batches.append(payload)

    def _flush(self) -> None:
        buffers, self._buffers = self._buffers, {}
        for dest_worker, delivery in buffers.items():
            peer = self.peers.get(dest_worker)
            if peer is None or not peer.alive:
                continue
            self.charge(self.costs.storm_batch_overhead *
                        (len(delivery.batches) + len(delivery.ack_packets)))
            self.send(peer, delivery)

    def _handle_delivery(self, delivery: WorkerDelivery) -> None:
        costs = self.costs
        for batch in merge_batches(delivery.batches):
            self.charge(costs.storm_batch_overhead)
            executor = self.local_executors.get(batch.dest)
            if executor is not None and executor.alive:
                self.send(executor, RemoteBatch(batch))
                self.batches_forwarded += 1
        for packet in delivery.ack_packets:
            self.charge(costs.storm_batch_overhead)
            executor = self.local_executors.get(packet.dest_key)
            if executor is not None and executor.alive:
                self.send(executor, packet)

    def _check_backpressure(self) -> None:
        depth = self.inbox_len
        for executor in self.local_executors.values():
            if executor.alive and executor.inbox_len > depth:
                depth = executor.inbox_len
        if not self.in_backpressure and depth > self.high_watermark:
            self.in_backpressure = True
            for spout in self.spout_executors:
                if spout.alive:
                    self.send(spout, PauseSpouts(self.worker_id))
        elif self.in_backpressure and depth < self.low_watermark:
            self.in_backpressure = False
            for spout in self.spout_executors:
                if spout.alive:
                    self.send(spout, ResumeSpouts(self.worker_id))


class StormWorker:
    """One worker JVM: a slot container hosting executor threads."""

    def __init__(self, worker_id: int, container: Container) -> None:
        self.id = worker_id
        self.container = container
        self.process_id = container.new_process_id()
        self.executors: List[Actor] = []
        self.transfer: Optional[WorkerTransfer] = None

    def location(self) -> Location:
        """A Location inside this worker's shared JVM process."""
        return self.container.location(shared_process=self.process_id)

    @property
    def cores(self) -> float:
        return self.container.resource.cpu

    def apply_contention(self, coeff: float) -> float:
        """Shared-JVM contention: service inflates once runnable threads
        exceed the worker's cores (+2 for transfer/receive threads)."""
        threads = len(self.executors) + 2
        factor = 1.0 + coeff * max(0.0, threads - self.cores)
        for actor in self.executors:
            actor.contention = factor
        if self.transfer is not None:
            self.transfer.contention = factor
        return factor


class StormCluster:
    """The monolithic Storm deployment."""

    def __init__(self, supervisors: int = 4,
                 supervisor_resource: Resource = DEFAULT_SUPERVISOR,
                 costs: Optional[CostModel] = None, *,
                 sim: Optional[Simulator] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 seed: int = 0) -> None:
        self.sim = sim or Simulator()
        self.costs = costs or DEFAULT_COST_MODEL
        base_network = Network(self.costs)
        self.cluster = Cluster.homogeneous(supervisors, supervisor_resource)
        base_network.bind_cluster(self.cluster)
        # Chaos applies to the baseline too: the same FaultPlan language
        # perturbs Storm's inter-worker links, so engine comparisons can
        # run under identical injected faults.
        self.chaos: Optional[FaultyNetwork] = None
        if fault_plan is not None:
            self.chaos = FaultyNetwork(
                base_network, plan=fault_plan,
                now=lambda: self.sim.now,
                rng=RngRegistry(seed).stream("chaos.network"))
        self.network: NetworkProtocol = \
            self.chaos if self.chaos is not None else base_network
        self.ledger = CostLedger()
        # Pre-acquire every slot now — Storm's static resource model.
        self.free_slots: List[Container] = [
            self.cluster.allocate_container(supervisor_resource, tag="storm")
            for _ in range(supervisors)
        ]
        self.topologies: Dict[str, "StormTopologyHandle"] = {}
        self._instance_indices = 0

    @property
    def now(self) -> float:
        return self.sim.now

    def run_for(self, seconds: float) -> None:
        """Advance simulated time."""
        self.sim.run_for(seconds)

    def chaos_stats(self) -> Dict[str, float]:
        """Fault-injection counters (all zero without a FaultPlan)."""
        if self.chaos is None:
            return {"drops": 0.0, "partition_drops": 0.0, "spikes": 0.0,
                    "straggler_hits": 0.0, "partition_seconds": 0.0}
        return self.chaos.stats()

    # -- submission (scheduling + resource management, fused) ------------------
    def submit_topology(self, topology: Topology,
                        config: Optional[Config] = None
                        ) -> "StormTopologyHandle":
        """Pack executors into pre-acquired worker slots and start them."""
        if topology.name in self.topologies:
            raise TopologyError(
                f"topology {topology.name!r} is already running")
        merged = topology.config.copy()
        if config is not None:
            merged.update(config)
        TOPOLOGY_SCHEMA.validate(merged)
        STORM_SCHEMA.validate(merged)

        num_workers = merged.get(StormKeys.NUM_WORKERS) or \
            len(self.free_slots)
        if num_workers < 1 or num_workers > len(self.free_slots):
            raise SchedulerError(
                f"need {num_workers} worker slots but only "
                f"{len(self.free_slots)} are free (Storm resources are "
                f"acquired before topologies; add supervisors)")
        slots = [self.free_slots.pop(0) for _ in range(num_workers)]
        workers = [StormWorker(i, slot) for i, slot in enumerate(slots)]

        flush_interval = \
            float(merged.get(StormKeys.TRANSFER_FLUSH_MS)) * MILLIS
        for worker in workers:
            transfer = WorkerTransfer(
                self.sim, worker.id, location=worker.location(),
                network=self.network, ledger=self.ledger, costs=self.costs,
                flush_interval=flush_interval)
            worker.container.attach(transfer)
            worker.transfer = transfer

        # --- even-scheduler executor placement -----------------------------
        spout_components = frozenset(topology.spouts)
        keys: List[InstanceKey] = []
        for component in topology.components():
            keys.extend((component, task) for task in
                        range(topology.parallelism_of(component)))
        num_ackers = merged.get(StormKeys.NUM_ACKERS) or num_workers
        acking = bool(merged.get(
            # Ackers only exist when acking is enabled.
            "topology.acking.enabled", False))
        acker_keys: List[InstanceKey] = [
            (ACKER_COMPONENT, i) for i in range(num_ackers)] if acking \
            else []

        executors: Dict[InstanceKey, StormExecutor] = {}
        ackers: Dict[InstanceKey, AckerExecutor] = {}
        directory: Dict[InstanceKey, Tuple[Actor, int]] = {}
        for cursor, key in enumerate(keys):
            worker = workers[cursor % num_workers]
            spec = topology.component(key[0])
            user = spec.spout if topology.is_spout(key[0]) else spec.bolt
            executor = StormExecutor(
                self.sim, key, location=worker.location(),
                network=self.network, ledger=self.ledger,
                user_component=user, config=merged, costs=self.costs,
                topology_name=topology.name,
                parallelism=topology.parallelism_of(key[0]),
                spout_components=spout_components, worker_id=worker.id,
                instance_index=self._next_index(),
                flush_interval=flush_interval)
            worker.container.attach(executor)
            worker.executors.append(executor)
            executors[key] = executor
            directory[key] = (executor, worker.id)
        for cursor, key in enumerate(acker_keys):
            worker = workers[cursor % num_workers]
            acker = AckerExecutor(
                self.sim, key, location=worker.location(),
                network=self.network, ledger=self.ledger, config=merged,
                costs=self.costs, worker_id=worker.id,
                flush_interval=flush_interval)
            worker.container.attach(acker)
            worker.executors.append(acker)
            ackers[key] = acker
            directory[key] = (acker, worker.id)

        # --- wiring -------------------------------------------------------------
        task_ids = {name: list(range(topology.parallelism_of(name)))
                    for name in topology.components()}
        for key, executor in executors.items():
            routing = {}
            user = topology._user_component(key[0])
            for stream in user.outputs:
                fields = topology.output_fields(key[0], stream)
                edges = [(dest, grouping.create(fields, task_ids[dest]))
                         for dest, grouping in
                         topology.downstream(key[0], stream)]
                if edges:
                    routing[stream] = edges
            executor.routing = routing
            executor.directory = directory
            executor.ackers = acker_keys
            executor.transfer = workers[
                directory[key][1]].transfer
        for key, acker in ackers.items():
            acker.directory = directory
            acker.transfer = workers[directory[key][1]].transfer
        peer_map = {worker.id: worker.transfer for worker in workers}
        spouts = [executors[key] for key in keys
                  if key[0] in spout_components]
        for worker in workers:
            assert worker.transfer is not None
            worker.transfer.peers = dict(peer_map)
            worker.transfer.local_executors = {
                key: actor for key, (actor, wid) in directory.items()
                if wid == worker.id}
            worker.transfer.spout_executors = spouts

        contention = max(worker.apply_contention(
            self.costs.storm_contention_per_excess_thread)
            for worker in workers)

        for executor in executors.values():
            self.sim.schedule(0.0, executor.deliver, _Start())

        handle = StormTopologyHandle(self, topology, workers, executors,
                                     ackers, contention)
        self.topologies[topology.name] = handle
        return handle

    def _next_index(self) -> int:
        self._instance_indices += 1
        return self._instance_indices

    def kill_topology(self, name: str) -> None:
        """Kill a topology and return its worker slots to the pool."""
        handle = self.topologies.pop(name, None)
        if handle is None:
            raise TopologyError(f"unknown topology {name!r}")
        for worker in handle.workers:
            for actor in worker.executors:
                actor.kill()
            if worker.transfer is not None:
                worker.transfer.kill()
            worker.executors.clear()
            self.free_slots.append(worker.container)


class StormTopologyHandle:
    """Metrics/lifecycle view, mirroring Heron's TopologyHandle."""

    def __init__(self, cluster: StormCluster, topology: Topology,
                 workers: List[StormWorker],
                 executors: Dict[InstanceKey, StormExecutor],
                 ackers: Dict[InstanceKey, AckerExecutor],
                 contention: float) -> None:
        self._cluster = cluster
        self.topology = topology
        self.name = topology.name
        self.workers = workers
        self.executors = executors
        self.ackers = ackers
        self.contention = contention

    def kill(self) -> None:
        """Kill this topology."""
        self._cluster.kill_topology(self.name)

    def totals(self) -> Dict[str, float]:
        """Cumulative counters across every executor."""
        totals = {"emitted": 0.0, "executed": 0.0, "acked": 0.0,
                  "failed": 0.0}
        for executor in self.executors.values():
            totals["emitted"] += executor.emitted_count
            totals["executed"] += executor.executed_count
            totals["acked"] += executor.acked_count
            totals["failed"] += executor.failed_count
        return totals

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-component cumulative counters."""
        result: Dict[str, Dict[str, float]] = {}
        for (component, _task), executor in self.executors.items():
            row = result.setdefault(
                component, {"emitted": 0.0, "executed": 0.0,
                            "acked": 0.0, "failed": 0.0})
            row["emitted"] += executor.emitted_count
            row["executed"] += executor.executed_count
            row["acked"] += executor.acked_count
            row["failed"] += executor.failed_count
        return result

    def latency_stats(self) -> WeightedStats:
        """End-to-end latency stats over all spout executors."""
        merged = WeightedStats()
        for executor in self.executors.values():
            if executor.is_spout:
                merged.merge(executor.latency)
        return merged

    def provisioned_cores(self) -> float:
        """CPU cores held by this topology's workers."""
        return sum(worker.container.resource.cpu for worker in self.workers)
