"""Messages internal to the Storm baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from repro.core.messages import AckCounted, DataBatch, InstanceKey, XorUpdate


@dataclass
class RemoteBatch:
    """A batch that crossed workers: the receiving executor must pay
    deserialization on its own thread (Section III-A)."""

    batch: DataBatch


@dataclass
class TransferOut:
    """Executor → local transfer thread: one send-buffer flush's worth of
    remote-bound payloads, as (dest_worker, DataBatch | AckPacket) pairs."""

    items: List[Tuple[int, Any]]


def merge_batches(batches: List[DataBatch]) -> List[DataBatch]:
    """Coalesce batches sharing (dest, source component, stream, origin).

    Values, counts, ids/anchors and emit-time sums are all additive, so
    merging preserves routing, acking, and latency accounting exactly.
    """
    merged = {}
    for batch in batches:
        key = (batch.dest, batch.source_component, batch.stream,
               batch.origin)
        into = merged.get(key)
        if into is None:
            merged[key] = batch
            continue
        into.values.extend(batch.values)
        into.count += batch.count
        into.emit_time_sum += batch.emit_time_sum
        into.tuple_ids.extend(batch.tuple_ids)
        into.anchors.extend(batch.anchors)
    return list(merged.values())


@dataclass
class WorkerDelivery:
    """Transfer thread → remote transfer thread: one flush's buffers."""

    from_worker: int
    batches: List[DataBatch] = field(default_factory=list)
    ack_packets: List["AckPacket"] = field(default_factory=list)


@dataclass
class AckPacket:
    """Traffic to/from acker executors."""

    dest_key: InstanceKey  # the acker's key, or the spout's for replies
    inits: List[Tuple[int, InstanceKey, float]] = field(
        default_factory=list)  # (root, spout, emit_time) — exact mode
    xors: List[XorUpdate] = field(default_factory=list)
    counted: List[AckCounted] = field(default_factory=list)
