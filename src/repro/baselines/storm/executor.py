"""Storm executors: spout/bolt/acker threads inside shared worker JVMs.

Unlike a Heron Instance, a Storm executor does its own routing (there is
no Stream Manager) and pays (de)serialization for inter-worker traffic on
its own thread. All executors of a worker share that worker's JVM: their
service times carry the worker's contention factor.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.api.component import ComponentContext, Spout
from repro.api.config_keys import TopologyConfigKeys as Keys
from repro.api.grouping import GroupingInstance, stable_hash
from repro.api.tuples import Batch, Tuple as ApiTuple
from repro.baselines.storm.messages import (AckPacket, RemoteBatch,
                                             TransferOut)
from repro.common.config import Config
from repro.core.acking import AckTracker, CountedTracker, RootEntry
from repro.core.instance import InstanceCollector
from repro.core.messages import (AckComplete, AckCounted, DataBatch,
                                 EmitTick, InstanceKey, PauseSpouts,
                                 ResumeSpouts, XorUpdate)
from repro.metrics.stats import WeightedStats
from repro.simulation.actors import Actor, CostLedger, Location
from repro.simulation.costs import CostCategory, CostModel
from repro.simulation.events import EventHandle, Simulator

ACKER_COMPONENT = "__acker"


class _Start:
    """Cluster → executor: topology wired; spouts may emit."""


class _StallCheck:
    """Self-timer: counted-mode ack-stall detection."""


class _SendFlush:
    """Self-timer: flush the executor's send buffer (disruptor batching).

    Armed on demand as a one-shot when the first item is buffered, and
    pre-empted entirely by a synchronous flush once a full batch is
    buffered — an idle executor schedules no kernel events at all."""


class StormExecutor(Actor):
    """One spout or bolt executor thread."""

    def __init__(self, sim: Simulator, key: InstanceKey, *,
                 location: Location, network, ledger: Optional[CostLedger],
                 user_component, config: Config, costs: CostModel,
                 topology_name: str, parallelism: int,
                 spout_components: frozenset, worker_id: int,
                 instance_index: int, flush_interval: float = 0.005) -> None:
        component, task_id = key
        super().__init__(sim, f"storm-{component}[{task_id}]", location,
                         network=network, ledger=ledger,
                         group="storm-executor")
        self.key = key
        self.component = component
        self.task_id = task_id
        self.costs = costs
        self.config = config
        self.worker_id = worker_id
        self.spout_components = spout_components
        self.user = copy.deepcopy(user_component)
        self.is_spout = isinstance(self.user, Spout)

        self.acking = bool(config.get(Keys.ACKING_ENABLED))
        self.exact_acking = self.acking and \
            config.get(Keys.ACK_TRACKING) == "exact"
        self.max_pending = int(config.get(Keys.MAX_SPOUT_PENDING))
        self.batch_size = int(config.get(Keys.BATCH_SIZE))
        self.message_timeout = float(config.get(Keys.MESSAGE_TIMEOUT_SECS))

        # Wired by the cluster after every executor exists:
        self.routing: Dict[str, List[Tuple[str, GroupingInstance]]] = {}
        self.directory: Dict[InstanceKey, Tuple["StormExecutor", int]] = {}
        self.ackers: List[InstanceKey] = []
        self.transfer: Optional[Actor] = None
        self.spout_executors: List[InstanceKey] = []

        self.collector = InstanceCollector(self)  # same accumulation logic
        self.context = ComponentContext(topology_name, component, task_id,
                                        parallelism, config)
        self.context.now = lambda: self.sim.now  # type: ignore[method-assign]
        self.active = False
        self.paused_by_backpressure = False
        self.emit_loop_idle = True
        self.opened = False
        self._tuple_seq = 0
        self._id_base = (instance_index + 1) << 40
        self.tracker = CountedTracker(self.message_timeout)

        self.emitted_count = 0
        self.executed_count = 0
        self.acked_count = 0
        self.failed_count = 0
        self.latency = WeightedStats()

        # Send buffers: Storm's disruptor batches outgoing tuples per
        # destination, flushing synchronously once a full batch has
        # accumulated and otherwise on a demand-armed one-shot timer.
        self._out_data: Dict[Tuple, DataBatch] = {}
        self._out_acks: Dict[InstanceKey, AckPacket] = {}
        self.flush_interval = flush_interval
        self._buffered = 0
        self._flush_timer: Optional[EventHandle] = None

        if self.is_spout and self.acking:
            self.every(self.message_timeout / 2,
                       lambda: self.deliver(_StallCheck()))

    # -- identity ------------------------------------------------------------
    def next_tuple_id(self) -> int:
        """A globally unique tuple id for exact ack tracking."""
        self._tuple_seq += 1
        return self._id_base | self._tuple_seq

    @property
    def pending(self) -> int:
        return self.tracker.pending

    # -- message handling ------------------------------------------------------
    def on_message(self, message: Any) -> None:
        if isinstance(message, DataBatch):
            self._handle_data(message, remote=False)
        elif isinstance(message, RemoteBatch):
            self._handle_data(message.batch, remote=True)
        elif isinstance(message, AckPacket):
            self._handle_ack_packet(message)
        elif isinstance(message, (AckComplete, AckCounted)):
            self._handle_ack(message)
        elif isinstance(message, EmitTick):
            self._emit_once()
        elif isinstance(message, _Start):
            self._start()
        elif isinstance(message, PauseSpouts):
            self._set_backpressure(True)
        elif isinstance(message, ResumeSpouts):
            self._set_backpressure(False)
        elif isinstance(message, _StallCheck):
            self._check_stall()
        elif isinstance(message, _SendFlush):
            self._flush_send_buffers()

    def _start(self) -> None:
        if not self.opened:
            self.opened = True
            if self.is_spout:
                self.user.open(self.context, self.collector)
            else:
                self.user.prepare(self.context, self.collector)
        if self.is_spout and not self.active:
            self.active = True
            self._wake_emit_loop()

    def on_killed(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if self.opened:
            self.user.close()

    # -- spout loop ----------------------------------------------------------------
    def _gate_open(self) -> bool:
        if not (self.active and not self.paused_by_backpressure):
            return False
        if self.acking and self.tracker.pending >= self.max_pending:
            return False
        return True

    def _emit_once(self) -> None:
        if not self._gate_open():
            self.emit_loop_idle = True
            return
        self.emit_loop_idle = False
        budget = self.batch_size
        if self.acking:
            budget = min(budget, self.max_pending - self.tracker.pending)
        self.collector.begin()
        self.user.next_batch(self.collector, budget)
        if self.collector.total_emitted:
            self._flush_emissions(input_batch=None)
            self.send(self, EmitTick())
        else:
            # Idle source: back off instead of spinning (wait strategy).
            self.charge(self.costs.storm_user_per_tuple)
            self.send(self, EmitTick(), extra_delay=1e-3)

    def _wake_emit_loop(self) -> None:
        if self.emit_loop_idle and self._gate_open():
            self.emit_loop_idle = False
            self.send(self, EmitTick())

    def _set_backpressure(self, paused: bool) -> None:
        self.paused_by_backpressure = paused
        if not paused:
            self._wake_emit_loop()

    def _check_stall(self) -> None:
        failed = self.tracker.check_stalled(self.sim.now)
        if failed:
            self.failed_count += failed
            self.user.fail(0)
            self._wake_emit_loop()

    # -- bolt execution -----------------------------------------------------------
    def _handle_data(self, batch: DataBatch, remote: bool) -> None:
        if self.is_spout:
            return
        if not self.opened:
            self._start()
        costs = self.costs
        count = batch.count
        self.charge(costs.storm_batch_overhead)
        self.charge(count * (costs.storm_user_per_tuple +
                             costs.storm_framework_per_tuple))
        if remote:
            self.charge(count * costs.storm_serialize_per_tuple)
        if self.user.user_cost_per_tuple:
            self.charge(count * self.user.user_cost_per_tuple,
                        CostCategory.USER)
        self.collector.begin()
        if self.exact_acking:
            self._execute_exact(batch)
        else:
            api_batch = Batch(values=batch.values, count=count,
                              stream=batch.stream,
                              source_component=batch.source_component)
            self.user.execute_batch(api_batch, self.collector)
        self.executed_count += count
        self._flush_emissions(input_batch=batch)

    def _execute_exact(self, batch: DataBatch) -> None:
        for index, values in enumerate(batch.values):
            tup = ApiTuple(values=values, stream=batch.stream,
                           source_component=batch.source_component,
                           tuple_id=batch.tuple_ids[index])
            self.collector.current_anchors = batch.anchors[index]
            self.user.execute(tup, self.collector)
            if not any(f.tuple_id == tup.tuple_id
                       for f in self.collector.failed_tuples):
                self.collector.acked_tuples.append(tup)
        self.collector.current_anchors = []

    # -- emission flush: the executor routes its own output -------------------------
    def _flush_emissions(self, input_batch: Optional[DataBatch]) -> None:
        collector = self.collector
        costs = self.costs
        now = self.sim.now
        total = 0
        for stream in set(collector.emitted) | set(collector.extra_counts):
            values = collector.emitted.get(stream, [])
            count = len(values) + collector.extra_counts.get(stream, 0)
            if count == 0:
                continue
            total += count
            if self.is_spout:
                origin, emit_time_sum = self.key, now * count
            else:
                origin = input_batch.origin if input_batch else self.key
                emit_time_sum = (input_batch.emit_time_sum if input_batch
                                 else now * count)
            batch = DataBatch(
                dest=None, source_component=self.component, stream=stream,
                values=values, count=count, origin=origin,
                emit_time_sum=emit_time_sum,
                tuple_ids=collector.emitted_ids.get(stream, []),
                anchors=collector.emitted_anchors.get(stream, []))
            self._route(batch)
        if total:
            self.emitted_count += total
            self.charge(total * costs.storm_framework_per_tuple)
            if self.is_spout:
                self.charge(total * costs.storm_user_per_tuple)
                if self.user.user_cost_per_tuple:
                    category = getattr(self.user, "charges_category",
                                       None) or CostCategory.USER
                    self.charge(total * self.user.user_cost_per_tuple,
                                category)
                if self.acking:
                    self.tracker.emitted(total, now)
        self._flush_acks(input_batch)

    def _route(self, batch: DataBatch) -> None:
        for dest_component, grouping in self.routing.get(batch.stream, []):
            if self.exact_acking:
                indices = list(range(len(batch.values)))
                routes = grouping.split(batch.values, indices, batch.count)
                for task, values, idxs, count in routes:
                    sub = DataBatch(
                        dest=(dest_component, task),
                        source_component=batch.source_component,
                        stream=batch.stream, values=values, count=count,
                        origin=batch.origin,
                        emit_time_sum=batch.emit_time_sum *
                        (count / batch.count) if batch.count else 0.0,
                        tuple_ids=[batch.tuple_ids[i] for i in idxs],
                        anchors=[batch.anchors[i] for i in idxs])
                    self._dispatch(sub.dest, sub)
            else:
                routes = grouping.split(batch.values, [], batch.count)
                for task, values, _ids, count in routes:
                    sub = DataBatch(
                        dest=(dest_component, task),
                        source_component=batch.source_component,
                        stream=batch.stream, values=values, count=count,
                        origin=batch.origin,
                        emit_time_sum=batch.emit_time_sum *
                        (count / batch.count) if batch.count else 0.0)
                    self._dispatch(sub.dest, sub)

    def _dispatch(self, dest: InstanceKey, payload: Any) -> None:
        """Queue a batch/packet for another executor via the send buffer
        (intra-JVM and inter-worker alike: Storm batches both).

        A full batch flushes synchronously — still inside the current
        handler, so the Actor layer coalesces everything bound for one
        destination into a single delivery event (no kernel event per
        tuple hop). A partial batch arms the one-shot flush timer."""
        if isinstance(payload, DataBatch):
            key = (payload.dest, payload.source_component, payload.stream,
                   payload.origin)
            into = self._out_data.get(key)
            if into is None:
                self._out_data[key] = payload
            else:
                into.values.extend(payload.values)
                into.count += payload.count
                into.emit_time_sum += payload.emit_time_sum
                into.tuple_ids.extend(payload.tuple_ids)
                into.anchors.extend(payload.anchors)
            self._buffered += payload.count
        else:
            into = self._out_acks.get(dest)
            if into is None:
                self._out_acks[dest] = payload
            else:
                into.inits.extend(payload.inits)
                into.xors.extend(payload.xors)
                into.counted.extend(payload.counted)
            self._buffered += (len(payload.inits) + len(payload.xors) +
                               len(payload.counted))
        if self._buffered >= self.batch_size:
            self._flush_send_buffers()
        elif self._flush_timer is None:
            self._flush_timer = self.sim.schedule(
                self.flush_interval, self._fire_flush)

    def _fire_flush(self) -> None:
        self._flush_timer = None
        self.deliver(_SendFlush())

    def _flush_send_buffers(self) -> None:
        """Deliver buffered output: intra-JVM queues directly, remote
        payloads serialized (executor thread!) and handed to transfer."""
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        self._buffered = 0
        if not self._out_data and not self._out_acks:
            return
        costs = self.costs
        remote_items: List[Tuple[int, Any]] = []
        data, self._out_data = self._out_data, {}
        acks, self._out_acks = self._out_acks, {}
        for batch in data.values():
            entry = self.directory.get(batch.dest)
            if entry is None:
                continue
            executor, worker_id = entry
            self.charge(costs.storm_batch_overhead)
            if worker_id == self.worker_id:
                self.send(executor, batch)
            else:
                # Kryo on the executor thread for the inter-worker hop.
                self.charge(batch.count * costs.storm_serialize_per_tuple)
                remote_items.append((worker_id, batch))
        for dest, packet in acks.items():
            entry = self.directory.get(dest)
            if entry is None:
                continue
            executor, worker_id = entry
            count = sum(a.count for a in packet.counted) + \
                len(packet.inits) + len(packet.xors)
            self.charge(costs.storm_batch_overhead)
            if worker_id == self.worker_id:
                self.send(executor, packet)
            else:
                self.charge(count * costs.storm_serialize_per_tuple)
                remote_items.append((worker_id, packet))
        if remote_items and self.transfer is not None:
            self.send(self.transfer, TransferOut(remote_items))

    # -- ack production ----------------------------------------------------------------
    def _acker_for(self, origin: InstanceKey) -> Optional[InstanceKey]:
        if not self.ackers:
            return None
        return self.ackers[stable_hash(origin) % len(self.ackers)]

    def _flush_acks(self, input_batch: Optional[DataBatch]) -> None:
        if not self.acking:
            return
        collector = self.collector
        costs = self.costs
        if self.exact_acking:
            packets: Dict[InstanceKey, AckPacket] = {}

            def packet_for(origin: InstanceKey) -> Optional[AckPacket]:
                acker = self._acker_for(origin)
                if acker is None:
                    return None
                packet = packets.get(acker)
                if packet is None:
                    packet = AckPacket(dest_key=acker)
                    packets[acker] = packet
                return packet

            if self.is_spout:
                now = self.sim.now
                for stream, ids in collector.emitted_ids.items():
                    for root in ids:
                        packet = packet_for(self.key)
                        if packet is not None:
                            packet.inits.append((root, self.key, now))
                            self.charge(costs.storm_ack_emit_per_tuple)
            else:
                for stream, ids in collector.emitted_ids.items():
                    anchor_lists = collector.emitted_anchors[stream]
                    for new_id, anchor_list in zip(ids, anchor_lists):
                        for root, origin in anchor_list:
                            packet = packet_for(origin)
                            if packet is not None:
                                packet.xors.append(
                                    XorUpdate(root, origin, new_id))
                                self.charge(costs.storm_ack_emit_per_tuple)
                if input_batch is not None:
                    for tup in collector.acked_tuples:
                        idx = input_batch.tuple_ids.index(tup.tuple_id)
                        for root, origin in input_batch.anchors[idx]:
                            packet = packet_for(origin)
                            if packet is not None:
                                packet.xors.append(
                                    XorUpdate(root, origin, tup.tuple_id))
                                self.charge(costs.storm_ack_emit_per_tuple)
                    for tup in collector.failed_tuples:
                        idx = input_batch.tuple_ids.index(tup.tuple_id)
                        for root, origin in input_batch.anchors[idx]:
                            packet = packet_for(origin)
                            if packet is not None:
                                packet.xors.append(
                                    XorUpdate(root, origin, 0, fail=True))
            for acker, packet in packets.items():
                self._dispatch(acker, packet)
        elif not self.is_spout and input_batch is not None \
                and input_batch.source_component in self.spout_components:
            acker = self._acker_for(input_batch.origin)
            if acker is not None:
                self.charge(input_batch.count * costs.storm_ack_emit_per_tuple)
                self._dispatch(acker, AckPacket(
                    dest_key=acker,
                    counted=[AckCounted(input_batch.origin,
                                        input_batch.count,
                                        input_batch.emit_time_sum)]))

    def _handle_ack_packet(self, packet: AckPacket) -> None:
        """Only spouts see these (acker replies rerouted as AckCounted)."""
        for ack in packet.counted:
            self._handle_ack(ack)

    # -- spout ack consumption ---------------------------------------------------------
    def _handle_ack(self, ack) -> None:
        if not self.is_spout:
            return
        count = ack.count
        self.charge(count * self.costs.instance_ack_per_tuple)
        accepted = self.tracker.acked(count, self.sim.now)
        if ack.failed:
            self.failed_count += accepted
            if accepted:
                self.user.fail(0)
        else:
            self.acked_count += accepted
            if accepted:
                self.user.ack(0)
            if count > 0:
                self.latency.add(self.sim.now - ack.emit_time_sum / count,
                                 weight=count)
        self._wake_emit_loop()


class AckerExecutor(Actor):
    """A dedicated acking executor thread (Storm's acker bolt)."""

    def __init__(self, sim: Simulator, key: InstanceKey, *,
                 location: Location, network, ledger: Optional[CostLedger],
                 config: Config, costs: CostModel, worker_id: int,
                 flush_interval: float) -> None:
        super().__init__(sim, f"storm-acker[{key[1]}]", location,
                         network=network, ledger=ledger,
                         group="storm-acker")
        self.key = key
        self.costs = costs
        self.worker_id = worker_id
        self.directory: Dict[InstanceKey, Tuple[Actor, int]] = {}
        self.transfer: Optional[Actor] = None
        self.message_timeout = float(config.get(Keys.MESSAGE_TIMEOUT_SECS))
        self.tracker = AckTracker(self._on_complete, self._on_expire)
        self._out: Dict[InstanceKey, List[float]] = {}   # acked count, ets
        self._fail_out: Dict[InstanceKey, List[float]] = {}
        self.acks_processed = 0
        # Ack replies flush on a demand-armed one-shot (idle ackers
        # schedule nothing); the timeout-wheel rotation stays periodic.
        self.flush_interval = flush_interval
        self._flush_timer: Optional[EventHandle] = None
        self.every(self.message_timeout / 2,
                   lambda: self.deliver(_Rotate()))

    def on_message(self, message: Any) -> None:
        if isinstance(message, AckPacket):
            self._handle_packet(message)
        elif isinstance(message, _Rotate):
            self.tracker.rotate()

    def _handle_packet(self, packet: AckPacket) -> None:
        costs = self.costs
        for root, spout, emit_time in packet.inits:
            self.charge(costs.storm_acker_per_op)
            self.tracker.register(root, spout, emit_time)
            self.acks_processed += 1
        for update in packet.xors:
            self.charge(costs.storm_acker_per_op)
            if update.fail:
                self.tracker.fail(update.root)
            else:
                self.tracker.update(update.root, update.value)
            self.acks_processed += 1
        for ack in packet.counted:
            # Counted mode: charge the same two XOR ops per tuple a real
            # acker would perform (init + ack), then aggregate.
            self.charge(2 * costs.storm_acker_per_op * ack.count)
            self.acks_processed += ack.count
            slot = self._out.setdefault(ack.origin, [0.0, 0.0])
            slot[0] += ack.count
            slot[1] += ack.emit_time_sum
            self._arm_flush()

    def _on_complete(self, entry: RootEntry) -> None:
        slot = self._out.setdefault(entry.spout, [0.0, 0.0])
        slot[0] += 1
        slot[1] += entry.emit_time
        self._arm_flush()

    def _on_expire(self, entry: RootEntry) -> None:
        slot = self._fail_out.setdefault(entry.spout, [0.0, 0.0])
        slot[0] += 1
        slot[1] += entry.emit_time
        self._arm_flush()

    def _arm_flush(self) -> None:
        if self._flush_timer is None:
            self._flush_timer = self.sim.schedule(
                self.flush_interval, self._fire_flush)

    def _fire_flush(self) -> None:
        self._flush_timer = None
        if self.alive:
            self._flush()

    def on_killed(self) -> None:
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None

    def _flush(self) -> None:
        remote_items = []
        for cache, failed in ((self._out, False), (self._fail_out, True)):
            for origin, (count, emit_sum) in cache.items():
                entry = self.directory.get(origin)
                if entry is None:
                    continue
                executor, worker_id = entry
                ack = AckCounted(origin, int(count), emit_sum, failed=failed)
                if worker_id == self.worker_id:
                    self.send(executor, ack)
                else:
                    remote_items.append(
                        (worker_id, AckPacket(dest_key=origin,
                                              counted=[ack])))
        if remote_items and self.transfer is not None:
            self.send(self.transfer, TransferOut(remote_items))
        self._out = {}
        self._fail_out = {}


class _Rotate:
    """Self-timer for the acker timeout wheel."""
