"""Storm-specific configuration keys.

Shared semantics (acking on/off, max spout pending, batch size, sample
cap) reuse the same :class:`~repro.api.config_keys.TopologyConfigKeys`
so experiments configure both engines identically.
"""

from __future__ import annotations

from repro.common.config import ConfigKey, ConfigSchema

SCHEMA = ConfigSchema("storm")


def _declare(*args, **kwargs) -> ConfigKey:
    return SCHEMA.declare(ConfigKey(*args, **kwargs))


class StormConfigKeys:
    """Knobs of the Storm baseline."""

    NUM_WORKERS = _declare(
        "storm.num.workers", default=0, value_type=int,
        validator=lambda v: v >= 0,
        description="Worker processes for a topology; 0 = one worker per "
                    "supervisor (Storm's common deployment).")

    NUM_ACKERS = _declare(
        "storm.num.ackers", default=0, value_type=int,
        validator=lambda v: v >= 0,
        description="Acker executors; 0 = one per worker "
                    "(Storm's default).")

    TRANSFER_FLUSH_MS = _declare(
        "storm.transfer.flush.ms", default=5.0, value_type=float,
        validator=lambda v: v > 0,
        description="Worker transfer-buffer flush interval "
                    "(disruptor batch flush).")
