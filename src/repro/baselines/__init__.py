"""Baseline engines the paper compares Heron against (Section III).

* :mod:`repro.baselines.storm` — an Apache-Storm-architecture engine:
  workers (shared JVMs) hosting executor threads, executor-thread
  (de)serialization, acker executors, pre-acquired cluster resources;
* :mod:`repro.baselines.microbatch` — a Spark-Streaming-style
  discretized micro-batch engine with a batch-interval latency floor.

Both run the *same* topology objects on the *same* simulator substrate
and cost model as Heron, so head-to-head differences come only from the
architectural differences the paper describes.
"""
