"""The network latency model.

Delivery latency depends on how far apart two actors run: same process,
same container, same machine, or across machines. The constants come from
:class:`~repro.simulation.costs.CostModel` so ablations can vary them.
"""

from __future__ import annotations

from repro.simulation.actors import Location, NetworkProtocol
from repro.simulation.costs import CostModel


class Network(NetworkProtocol):
    """Prices message delivery between actor locations."""

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs

    def latency(self, src: Location, dst: Location) -> float:
        """Distance-based delivery latency between locations."""
        if src.machine_id != dst.machine_id:
            return self.costs.net_cross_machine
        if src.container_id != dst.container_id:
            return self.costs.net_same_machine
        if src.process_id != dst.process_id:
            return self.costs.net_same_container
        return self.costs.net_local_process


class UniformNetwork(NetworkProtocol):
    """A flat-latency network, useful in unit tests."""

    def __init__(self, latency: float = 0.0) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0: {latency}")
        self._latency = latency

    def latency(self, src: Location, dst: Location) -> float:
        """Flat delivery latency."""
        return self._latency
