"""The network latency model.

Delivery latency depends on how far apart two actors run: same process,
same container, same machine, same rack, or across racks. The constants
come from :class:`~repro.simulation.costs.CostModel` so ablations can
vary them.

Rack awareness is opt-in: :meth:`Network.bind_cluster` wires in a
cluster's rack map, after which cross-machine messages are priced as
``net_same_rack`` or ``net_cross_rack``; an unbound network prices all
cross-machine traffic at the flat ``net_cross_machine``. Binding
registers an ``on_rack_change`` observer so reconfiguring the rack
topology invalidates memoized latencies instead of serving stale tiers.

``Network.latency`` is pure in ``(src, dst)`` for a fixed cost model and
rack map, and is called once per message send, so results are memoized
per location pair together with the tier they resolved to — which also
gives per-tier message counters (:meth:`tier_counts`) that the placement
experiments use to report the inter-rack traffic share. Locations are
interned (:meth:`Location.of`) with precomputed hashes, making the memo
a two-dict lookup. Swapping :attr:`Network.costs` or rebinding a cluster
invalidates the memo; :meth:`invalidate_cache` does so explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.simulation.actors import Location, NetworkProtocol
from repro.simulation.costs import CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.simulation.cluster import Cluster

#: Distance tiers, nearest first. ``cross_machine`` is the unbound
#: (rack-less) pricing for inter-machine traffic; bound networks resolve
#: it to ``same_rack`` or ``cross_rack`` instead.
TIER_NAMES: Tuple[str, ...] = ("local_process", "same_container",
                               "same_machine", "cross_machine",
                               "same_rack", "cross_rack")

_LOCAL_PROCESS = 0
_SAME_CONTAINER = 1
_SAME_MACHINE = 2
_CROSS_MACHINE = 3
_SAME_RACK = 4
_CROSS_RACK = 5


class Network(NetworkProtocol):
    """Prices message delivery between actor locations (memoized)."""

    def __init__(self, costs: CostModel) -> None:
        self._costs = costs
        self._memo: Dict[Location, Dict[Location, Tuple[float, int]]] = {}
        self._rack_of: Optional[Callable[[int], int]] = None
        self.tier_messages: List[int] = [0] * len(TIER_NAMES)

    @property
    def costs(self) -> CostModel:
        """The cost model pricing each distance tier."""
        return self._costs

    @costs.setter
    def costs(self, value: CostModel) -> None:
        self._costs = value
        self._memo.clear()

    def bind_cluster(self, cluster: "Cluster") -> None:
        """Adopt ``cluster``'s rack map for cross-machine pricing.

        Drops memoized latencies from any previous binding and subscribes
        to rack reassignments so the memo never serves a stale tier.
        """
        self._rack_of = cluster.rack_of
        cluster.on_rack_change(self.invalidate_cache)
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop all memoized latencies (call after mutating cost data
        or rack assignments)."""
        self._memo.clear()

    def latency(self, src: Location, dst: Location) -> float:
        """Distance-based delivery latency between locations."""
        by_dst = self._memo.get(src)
        if by_dst is None:
            by_dst = self._memo[src] = {}
        entry = by_dst.get(dst)
        if entry is None:
            entry = by_dst[dst] = self._compute(src, dst)
        self.tier_messages[entry[1]] += 1
        return entry[0]

    def _compute(self, src: Location, dst: Location) -> Tuple[float, int]:
        if src.machine_id != dst.machine_id:
            if self._rack_of is None:
                return self._costs.net_cross_machine, _CROSS_MACHINE
            if self._rack_of(src.machine_id) == self._rack_of(dst.machine_id):
                return self._costs.net_same_rack, _SAME_RACK
            return self._costs.net_cross_rack, _CROSS_RACK
        if src.container_id != dst.container_id:
            return self._costs.net_same_machine, _SAME_MACHINE
        if src.process_id != dst.process_id:
            return self._costs.net_same_container, _SAME_CONTAINER
        return self._costs.net_local_process, _LOCAL_PROCESS

    # -- tier accounting -----------------------------------------------------
    def tier_counts(self) -> Dict[str, int]:
        """Messages delivered per distance tier since the last reset."""
        return dict(zip(TIER_NAMES, self.tier_messages))

    def reset_tier_counts(self) -> None:
        """Zero the per-tier message counters (start of a measurement)."""
        self.tier_messages = [0] * len(TIER_NAMES)

    def cross_rack_share(self) -> float:
        """Fraction of cross-machine messages that crossed racks."""
        cross = self.tier_messages[_CROSS_RACK]
        inter_machine = (self.tier_messages[_CROSS_MACHINE]
                         + self.tier_messages[_SAME_RACK] + cross)
        return cross / inter_machine if inter_machine else 0.0


class UniformNetwork(NetworkProtocol):
    """A flat-latency network, useful in unit tests."""

    def __init__(self, latency: float = 0.0) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0: {latency}")
        self._latency = latency

    def latency(self, src: Location, dst: Location) -> float:
        """Flat delivery latency."""
        return self._latency
