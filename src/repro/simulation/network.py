"""The network latency model.

Delivery latency depends on how far apart two actors run: same process,
same container, same machine, or across machines. The constants come from
:class:`~repro.simulation.costs.CostModel` so ablations can vary them.

``Network.latency`` is pure in ``(src, dst)`` for a fixed cost model and
is called once per message send, so results are memoized per location
pair. Locations are interned (:meth:`Location.of`) with precomputed
hashes, making the memo a two-dict lookup. Swapping :attr:`Network.costs`
invalidates the memo; :meth:`invalidate_cache` does so explicitly.
"""

from __future__ import annotations

from typing import Dict

from repro.simulation.actors import Location, NetworkProtocol
from repro.simulation.costs import CostModel


class Network(NetworkProtocol):
    """Prices message delivery between actor locations (memoized)."""

    def __init__(self, costs: CostModel) -> None:
        self._costs = costs
        self._memo: Dict[Location, Dict[Location, float]] = {}

    @property
    def costs(self) -> CostModel:
        return self._costs

    @costs.setter
    def costs(self, value: CostModel) -> None:
        self._costs = value
        self._memo.clear()

    def invalidate_cache(self) -> None:
        """Drop all memoized latencies (call after mutating cost data)."""
        self._memo.clear()

    def latency(self, src: Location, dst: Location) -> float:
        """Distance-based delivery latency between locations."""
        by_dst = self._memo.get(src)
        if by_dst is None:
            by_dst = self._memo[src] = {}
        value = by_dst.get(dst)
        if value is None:
            value = by_dst[dst] = self._compute(src, dst)
        return value

    def _compute(self, src: Location, dst: Location) -> float:
        if src.machine_id != dst.machine_id:
            return self._costs.net_cross_machine
        if src.container_id != dst.container_id:
            return self._costs.net_same_machine
        if src.process_id != dst.process_id:
            return self._costs.net_same_container
        return self._costs.net_local_process


class UniformNetwork(NetworkProtocol):
    """A flat-latency network, useful in unit tests."""

    def __init__(self, latency: float = 0.0) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0: {latency}")
        self._latency = latency

    def latency(self, src: Location, dst: Location) -> float:
        """Flat delivery latency."""
        return self._latency
