"""The calendar-queue kernel: O(1) schedule/pop for clustered timestamps.

A drop-in scheduler for :class:`repro.simulation.events.Simulator`
(selected with ``REPRO_KERNEL=calendar`` or ``Simulator(kernel=
"calendar")``; it is the default kernel). The binary heap pays
O(log n) per schedule and per pop, and its cost is dominated by exactly
the operations a streaming simulation hammers: short-delay message
deliveries, timer re-arms, and far-future timeout guards that are
cancelled almost immediately. The calendar queue makes all three O(1):

* **day array** — ``NUM_BUCKETS`` buckets of ``width`` simulated
  seconds each, covering ``[day_start, day_end)``. A near-future event
  is appended (O(1), no comparisons) to the bucket its timestamp falls
  in. Buckets are drained in order; a bucket is sorted once — in C, via
  ``list.sort`` — when the clock reaches it. Bucket boundaries are
  precomputed per day (``_bounds``) so push-side routing and drain-side
  windows agree bit-exactly.
* **incursion heap** — events scheduled *into the already-open bucket*
  (zero/short delays landing before the bucket boundary) go to a small
  binary heap that is merged with the sorted run at pop time. Bucket
  widths adapt so typical delays span several buckets, keeping this
  heap nearly empty.
* **overflow ladder** — events past ``day_end`` (the ~30 s ack-timeout
  guards) are appended to an unsorted ladder list and are not touched
  again until the day wraps. Guards that were cancelled in the meantime
  are dropped wholesale during the wrap — they are never sorted, sifted,
  or compacted individually, which is where the heap burned its time.

When the day is fully drained the queue **rebuilds**: live ladder events
are redistributed into a fresh day anchored at the next event, and the
bucket width adapts to the observed event density (see
:meth:`CalendarSimulator._rebuild`) so occupancy stays near
``TARGET_PER_BUCKET`` events per bucket across load swings.

Tombstones clean themselves in two tiers. An entry's timestamp decides
its structure — ``time >= day_end`` is the ladder, anything nearer lives
in the day — so a cancellation knows which side it hit without a scan.
Near-future tombstones are discarded when the clock reaches their bucket
(bounded by one day span); ladder tombstones are counted and swept in
O(ladder) when they outnumber its live half. A full sweep on the heap
kernel's ``2x live`` hysteresis remains as the backstop, keeping
``pending_events`` O(1) and memory amortized-bounded exactly as before.

Pop order is exactly the heap kernel's ``(time, seq)`` order — ties
break by scheduling sequence — so event traces are byte-identical
across kernels (pinned by the differential tests and the determinism
audit).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.simulation.events import (_COMPACT_MIN_SIZE, TIE_CLASS_SHIFT,
                                     EventHandle, Simulator)

#: Buckets per day. Fixed: width (not bucket count) adapts to density.
NUM_BUCKETS = 512

#: Starting bucket width in simulated seconds. 0.25 ms spans a typical
#: actor-to-actor delivery delay with a few buckets to spare.
INITIAL_WIDTH = 0.25e-3

#: Width adaptation aims for this many events per bucket.
TARGET_PER_BUCKET = 8.0

#: Width bounds (simulated seconds) and the maximum adaptation step per
#: rebuild, keeping the day span stable under bursty load.
WIDTH_MIN = 1e-7
WIDTH_MAX = 0.25
WIDTH_MAX_STEP = 4.0

#: Sweep the overflow ladder once this many cancelled entries sit in it
#: (and they are at least half of it) — O(ladder), no day-array touch.
LADDER_SWEEP_MIN_DEAD = 64

_Entry = Tuple[float, int, EventHandle]


class CalendarSimulator(Simulator):
    """:class:`Simulator` backed by a calendar (ladder) queue.

    The queue state lives directly on the instance — the pop loop in
    :meth:`run_until` is the hottest code in the repository and method
    dispatch per event would dominate the win.
    """

    kernel = "calendar"

    __slots__ = ("_buckets", "_incursion", "_overflow", "_ladder_dead",
                 "_size", "_compact_floor", "_rebuilds", "_day_base",
                 "_day_start", "_width", "_inv_width", "_bounds",
                 "_day_end", "_open_idx", "_open_end", "_sorted",
                 "_cursor")

    def __init__(self, *, sanitize: Optional[bool] = None,
                 tie_order: str = "fifo",
                 kernel: Optional[str] = None) -> None:
        super().__init__(sanitize=sanitize, tie_order=tie_order,
                         kernel=kernel)
        self._buckets: List[List[_Entry]] = [[] for _ in range(NUM_BUCKETS)]
        #: Events landing at/before the open bucket's end while it
        #: drains (zero/short delays) — merged with _sorted at pop time.
        self._incursion: List[_Entry] = []
        #: Far-future events (time >= day_end): the overflow ladder.
        self._overflow: List[_Entry] = []
        #: Cancelled entries known to sit in the ladder (cancellation
        #: routes on handle.time, mirroring push-side routing).
        self._ladder_dead: int = 0
        #: Physical entries across all structures, tombstones included.
        self._size: int = 0
        #: Full-sweep hysteresis: next physical size worth an O(n) sweep.
        self._compact_floor: int = _COMPACT_MIN_SIZE
        self._rebuilds: int = 0
        # Day-window state (_day_start, _width, _inv_width, _bounds,
        # _day_end, _open_idx, _open_end, _sorted, _cursor):
        self._set_day(0.0, INITIAL_WIDTH)

    # -- scheduling --------------------------------------------------------
    def _route(self, entry: _Entry, time: float) -> None:
        """Place one armed entry in the structure its timestamp selects."""
        if time < self._open_end:
            heappush(self._incursion, entry)
        elif time < self._day_end:
            bounds = self._bounds
            idx = int((time - self._day_start) * self._inv_width)
            # The multiply is a hint; settle boundary rounding against
            # the precomputed bounds routing and draining both use.
            while idx < NUM_BUCKETS and time >= bounds[idx + 1]:
                idx += 1
            while idx > 0 and time < bounds[idx]:
                idx -= 1
            if idx <= self._open_idx:
                heappush(self._incursion, entry)
            else:
                self._buckets[idx].append(entry)
        else:
            self._overflow.append(entry)
        self._size += 1

    def _push(self, handle: EventHandle, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        seq = (self._seq + 1) * self._seq_sign
        self._seq += 1
        trace = self._trace
        if trace is not None:
            handle.cause = trace.current
            tie_class = trace.tie_class
            if tie_class is not None:
                bump = tie_class(handle.fn, handle.args)
                if bump:
                    seq += bump << TIE_CLASS_SHIFT
        handle.time = time = self.now + delay
        handle.seq = seq
        handle.in_heap = True
        self._live += 1
        self._route((time, seq, handle), time)

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        # Handle construction and _route are inlined: this is the
        # hottest allocation site in the whole simulator (one handle +
        # one bucket append per delivery), and skipping the __init__
        # call frame is worth ~2% of total run time by itself.
        handle: EventHandle = EventHandle.__new__(EventHandle)
        handle.sim = self
        handle.fn = fn
        handle.args = args
        handle.cancelled = False
        seq = self._seq + 1
        self._seq = seq
        if self._seq_sign < 0:
            seq = -seq
        trace = self._trace
        if trace is None:
            handle.cause = None
        else:
            handle.cause = trace.current
            tie_class = trace.tie_class
            if tie_class is not None:
                bump = tie_class(fn, args)
                if bump:
                    seq += bump << TIE_CLASS_SHIFT
        handle.time = time = self.now + delay
        handle.seq = seq
        handle.in_heap = True
        self._live += 1
        if time < self._open_end:
            heappush(self._incursion, (time, seq, handle))
        elif time < self._day_end:
            bounds = self._bounds
            idx = int((time - self._day_start) * self._inv_width)
            while idx < NUM_BUCKETS and time >= bounds[idx + 1]:
                idx += 1
            while idx > 0 and time < bounds[idx]:
                idx -= 1
            if idx <= self._open_idx:
                heappush(self._incursion, (time, seq, handle))
            else:
                self._buckets[idx].append((time, seq, handle))
        else:
            self._overflow.append((time, seq, handle))
        self._size += 1
        return handle

    # -- day motion --------------------------------------------------------
    def _set_day(self, start: float, width: float) -> None:
        """Install a fresh day window: [start, start + NUM_BUCKETS*width).

        ``bounds[i] == start + i*width`` for ``i`` in 0..NUM_BUCKETS is
        precomputed here; routing, draining and the sanitizer all read
        the same float values, so no boundary is ever recomputed with a
        subtly different expression.
        """
        self._day_start: float = start
        self._width: float = width
        self._inv_width: float = 1.0 / width
        bounds = [start + i * width for i in range(NUM_BUCKETS + 1)]
        self._bounds: List[float] = bounds
        self._day_end: float = bounds[NUM_BUCKETS]
        #: Index of the bucket currently being drained; -1 before the
        #: first advance of a day. _open_end == bounds[_open_idx + 1];
        #: the push-side comparison against it is what keeps zero/short
        #: delays out of already-sorted buckets.
        self._open_idx: int = -1
        self._open_end: float = start
        #: The open bucket's entries, sorted; _cursor indexes the next.
        self._sorted: List[_Entry] = []
        self._cursor: int = 0
        #: Fired events are counted per day as an _events_processed
        #: delta — no per-pop counter store in the hot loop.
        self._day_base: int = self._events_processed

    def _advance(self, limit: float) -> bool:
        """Open the next non-empty bucket whose window starts <= limit.

        Returns False — leaving routing state consistent — once every
        event still queued is known to lie after ``limit`` (or the queue
        is empty). Only called with the open bucket and incursion heap
        fully drained.
        """
        while True:
            bounds = self._bounds
            buckets = self._buckets
            idx = self._open_idx
            while True:
                idx += 1
                if idx >= NUM_BUCKETS:
                    break
                start = bounds[idx]
                if start > limit:
                    # Park just before this bucket; pushes into the
                    # skipped empty region must still route ahead.
                    self._open_idx = idx - 1
                    self._open_end = start
                    self._sorted = []
                    self._cursor = 0
                    return False
                bucket = buckets[idx]
                if bucket:
                    bucket.sort()
                    buckets[idx] = []
                    self._sorted = bucket
                    self._cursor = 0
                    self._open_idx = idx
                    self._open_end = bounds[idx + 1]
                    return True
            if not self._rebuild():
                return False
            if self._day_start > limit:
                return False

    def _rebuild(self) -> bool:
        """Wrap the day: drop dead ladder entries, redistribute live
        ones into a fresh day anchored at the next event, adapt width.

        Returns False when nothing remains queued (the day is re-anchored
        at the current clock so future pushes route normally).
        """
        overflow = self._overflow
        live = [entry for entry in overflow
                if entry[2].in_heap and entry[2].seq == entry[1]]
        self._overflow = []
        self._ladder_dead = 0
        self._size -= len(overflow) - len(live)
        self._rebuilds += 1

        # Bucket-width adaptation: size buckets so the *drained* day's
        # event rate lands TARGET_PER_BUCKET events in each, damped to
        # one 4x step per rebuild and clamped to [WIDTH_MIN, WIDTH_MAX].
        day_span = self._day_end - self._day_start
        pops = self._events_processed - self._day_base
        if pops > 0 and day_span > 0:
            ideal = TARGET_PER_BUCKET * day_span / pops
        else:
            ideal = self._width * WIDTH_MAX_STEP  # idle day: widen
        width = min(max(ideal, self._width / WIDTH_MAX_STEP),
                    self._width * WIDTH_MAX_STEP)
        width = min(max(width, WIDTH_MIN), WIDTH_MAX)

        if not live:
            self._set_day(self.now, width)
            return False
        # Anchor the new day at the earliest queued event so idle gaps
        # (e.g. nothing but 30s-out guards) cost one rebuild, not many.
        start = min(live, key=lambda entry: entry[0])[0]
        self._set_day(start, width)
        self._size -= len(live)  # _route re-counts them
        for entry in live:
            self._route(entry, entry[0])
        return True

    # -- compaction --------------------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        """An armed handle was cancelled. Its timestamp decides which
        structure holds the tombstone: ``time >= day_end`` is the ladder
        (count it — those persist until swept); anything nearer lives in
        the day and self-cleans when its bucket drains."""
        if handle.time >= self._day_end:
            self._ladder_dead += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Two-tier tombstone hygiene, amortized O(1) per cancellation.

        Cancellations route on ``handle.time`` exactly like pushes: a
        dead entry at/past ``day_end`` sits in the ladder, so the common
        cancel-heavy pattern (timeout guards) is handled by an
        O(ladder) sweep that never touches the day array. Anything
        nearer self-cleans when its bucket drains, with the heap
        kernel's full-sweep hysteresis kept as the backstop.
        """
        if self._ladder_dead >= LADDER_SWEEP_MIN_DEAD and \
                2 * self._ladder_dead >= len(self._overflow):
            self._sweep_ladder()
        elif self._size >= self._compact_floor \
                and self._size >= 2 * self._live:
            self._compact()

    def _sweep_ladder(self) -> None:
        """Drop the overflow ladder's tombstones (in place)."""
        overflow = self._overflow
        before = len(overflow)
        overflow[:] = [entry for entry in overflow
                       if entry[2].in_heap and entry[2].seq == entry[1]]
        self._size -= before - len(overflow)
        self._ladder_dead = 0
        self._compactions += 1
        if self.sanitizer is not None:
            self.sanitizer.verify_queue(self)

    def _compact(self) -> None:
        """Full sweep: drop every dead entry except the open sorted
        run's (bounded by one bucket; skipped lazily at pop). All
        filters are in place so aliases held by a running ``run_until``
        stay valid."""
        size = 0
        for bucket in self._buckets:
            if bucket:
                bucket[:] = [entry for entry in bucket
                             if entry[2].in_heap and entry[2].seq == entry[1]]
                size += len(bucket)
        overflow = self._overflow
        if overflow:
            overflow[:] = [entry for entry in overflow
                           if entry[2].in_heap and entry[2].seq == entry[1]]
            size += len(overflow)
        self._ladder_dead = 0
        incursion = self._incursion
        if incursion:
            incursion[:] = [entry for entry in incursion
                            if entry[2].in_heap and entry[2].seq == entry[1]]
            heapify(incursion)
            size += len(incursion)
        self._size = size + (len(self._sorted) - self._cursor)
        self._compactions += 1
        self._compact_floor = max(_COMPACT_MIN_SIZE, 2 * self._size)
        if self.sanitizer is not None:
            self.sanitizer.on_compact(self)

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event; returns False if none remain."""
        incursion = self._incursion
        while True:
            srun = self._sorted
            cursor = self._cursor
            if cursor < len(srun):
                entry = srun[cursor]
                if incursion and incursion[0] < entry:
                    entry = heappop(incursion)
                else:
                    self._cursor = cursor + 1
            elif incursion:
                entry = heappop(incursion)
            else:
                if not self._advance(float("inf")):
                    return False
                continue
            self._size -= 1
            time, seq, handle = entry
            if not handle.in_heap or handle.seq != seq:
                continue  # tombstone: cancelled, or stale after a re-arm
            if time < self.now - 1e-12:
                raise SimulationError(
                    f"time went backwards: {time} < {self.now}")
            handle.in_heap = False
            self._live -= 1
            self.now = time
            fn, args = handle.fn, handle.args
            handle.fn = None
            handle.args = ()
            if self.sanitizer is not None:
                self.sanitizer.on_pop(self, time, seq, fn, args, handle)
            fn(*args)  # type: ignore[misc]
            self._events_processed += 1
            trace = self._trace
            if trace is not None:
                # Scheduling between steps is the driver's, not this
                # event's: don't attribute spawn edges to it.
                trace.current = None
            return True

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, running every event before it."""
        if time < self.now:
            raise SimulationError(
                f"run_until target {time} is before now {self.now}")
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            incursion = self._incursion
            sani = self.sanitizer
            while True:
                srun = self._sorted
                cursor = self._cursor
                length = len(srun)
                # Drain the open bucket, merging incursions. Callbacks
                # may push into `incursion` (in place) but never into
                # `srun`; compaction from a callback only touches the
                # other structures, so `length` is loop-invariant.
                while True:
                    if cursor < length:
                        entry = srun[cursor]
                        if incursion and incursion[0] < entry:
                            entry = incursion[0]
                            from_run = False
                        else:
                            from_run = True
                    elif incursion:
                        entry = incursion[0]
                        from_run = False
                    else:
                        break  # bucket drained: advance the day
                    etime = entry[0]
                    if etime > time:
                        # Global minimum is past the target: done.
                        self._cursor = cursor
                        self.now = time
                        return
                    if from_run:
                        cursor += 1
                    else:
                        heappop(incursion)
                    self._size -= 1
                    handle = entry[2]
                    seq = entry[1]
                    if not handle.in_heap or handle.seq != seq:
                        continue  # tombstone / stale entry
                    handle.in_heap = False
                    self._live -= 1
                    self.now = etime
                    fn, args = handle.fn, handle.args
                    handle.fn = None
                    handle.args = ()
                    self._cursor = cursor  # publish: fn may compact
                    if sani is not None:
                        sani.on_pop(self, etime, seq, fn, args, handle)
                    fn(*args)  # type: ignore[misc]
                    self._events_processed += 1
                self._cursor = cursor
                if not self._advance(time):
                    break
        finally:
            self._running = False
            if self._trace is not None:
                self._trace.current = None
        self.now = time

    # -- introspection -----------------------------------------------------
    @property
    def heap_size(self) -> int:
        """Physical entries across all structures, tombstones included."""
        return self._size

    @property
    def rebuilds(self) -> int:
        """How many times the day has wrapped (ladder redistributions)."""
        return self._rebuilds

    def queue_layout(self) -> Dict[str, float]:
        """Structure occupancy snapshot (sanitizer + tests + tuning)."""
        return {
            "width": self._width,
            "day_start": self._day_start,
            "day_end": self._day_end,
            "open_idx": float(self._open_idx),
            "open_end": self._open_end,
            "sorted_pending": float(len(self._sorted) - self._cursor),
            "incursion": float(len(self._incursion)),
            "bucketed": float(sum(len(b) for b in self._buckets)),
            "overflow": float(len(self._overflow)),
            "ladder_dead": float(self._ladder_dead),
            "size": float(self._size),
            "rebuilds": float(self._rebuilds),
        }
