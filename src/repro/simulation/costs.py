"""The calibrated CPU cost model.

Every simulated operation charges CPU time through one of these constants.
This is the *only* place where "how expensive is X" is encoded; the figures'
shapes then emerge from queueing, not from per-figure constants.

Calibration rationale
---------------------
The paper gives per-operation hints rather than numbers, so constants are
chosen to (a) respect the orderings the paper asserts and (b) land the
WordCount figures in the paper's bands:

* The Stream Manager's optimized path parses *only the destination field*
  (lazy deserialization) and reuses pooled protobuf objects; the
  unoptimized path pays a full deserialize, a re-serialize and fresh
  allocations per tuple (Section V-A). Hence
  ``sm_route_per_tuple`` ≪ ``sm_full_deserialize_per_tuple +
  sm_reserialize_per_tuple + sm_alloc_per_tuple``; the ratio (together with
  per-batch overheads) produces the 5–6× no-ack gap of Fig. 5.
* Draining the tuple cache pays a fixed flush overhead per drain
  (Section V-B: "the system pays a significant overhead in flushing the
  cache state"), which is what makes very small
  ``cache_drain_frequency`` values expensive in Figs. 12–13.
* Storm executes (de)serialization and transfer logic on the executor
  threads inside a shared JVM (Section III-A), so its per-tuple framework
  cost is higher and scales with thread contention.
* Ack handling is cheaper than data-tuple routing (acks are tiny ids), but
  every data tuple produces ack traffic, which shifts bottlenecks and
  yields the with-acks/without-acks gaps of Figs. 2 vs 4.

All constants are in **seconds of simulated CPU time** per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MICROS = 1e-6


class CostCategory:
    """Cost-attribution categories (Fig. 14 uses the first four)."""

    FETCH = "fetch"      # reading from external sources (Kafka)
    USER = "user"        # user spout/bolt logic
    ENGINE = "engine"    # engine overhead: transport, serde, metrics
    WRITE = "write"      # writing to external sinks (Redis)

    ALL = (FETCH, USER, ENGINE, WRITE)


@dataclass(frozen=True)
class CostModel:
    """Per-operation CPU costs for every simulated engine component."""

    # --- Heron Instance (spout/bolt process) ------------------------------
    instance_emit_per_tuple: float = 0.80 * MICROS
    """Spout ``next_tuple`` + emit bookkeeping, per tuple."""

    instance_execute_per_tuple: float = 0.80 * MICROS
    """Bolt ``execute`` dispatch overhead, per tuple (user logic extra)."""

    instance_serialize_per_tuple: float = 0.15 * MICROS
    """Instance-side encode of a tuple into the outgoing TupleSet."""

    instance_batch_overhead: float = 4.0 * MICROS
    """Per-batch cost of handing a TupleSet to/from the local SM."""

    instance_ack_per_tuple: float = 1.30 * MICROS
    """Spout-side per-tuple ack handling: pending-set bookkeeping,
    latency accounting, and the user ack callback. Calibrated so acking
    costs roughly 2.5-3x of throughput (Fig. 2 vs Fig. 4)."""

    # --- Heron Stream Manager ---------------------------------------------
    sm_route_per_tuple: float = 0.12 * MICROS
    """Optimized routing: hash-partition lookup + cache append per tuple."""

    sm_batch_overhead: float = 1.5 * MICROS
    """Per-TupleSet overhead (lazy header parse of the destination field)."""

    sm_send_per_batch: float = 2.0 * MICROS
    """Per outgoing batch: socket write + protocol framing."""

    sm_drain_fixed: float = 250.0 * MICROS
    """Fixed overhead of one tuple-cache drain (flush) operation —
    "the system pays a significant overhead in flushing the cache state"
    (Section V-B), visible as the low-drain-interval dip of Fig. 12."""

    sm_ack_per_tuple: float = 0.55 * MICROS
    """Routing one ack entry through an SM (tracking + forwarding)."""

    # Penalties paid only when the Section V optimizations are OFF:
    sm_full_deserialize_per_tuple: float = 0.65 * MICROS
    """Full protobuf deserialization of a routed tuple (no lazy deser)."""

    sm_reserialize_per_tuple: float = 0.65 * MICROS
    """Re-serialization of a routed tuple (no lazy deser)."""

    sm_alloc_per_tuple: float = 0.35 * MICROS
    """new/delete of protobuf objects per tuple (no memory pools)."""

    sm_alloc_per_batch: float = 3.0 * MICROS
    """Per-batch allocation overhead when memory pools are disabled."""

    sm_ack_deserialize_penalty: float = 0.40 * MICROS
    """Extra per-ack cost when lazy deserialization is off (ack protobufs
    are fully decoded/re-encoded too)."""

    sm_ack_alloc_penalty: float = 0.20 * MICROS
    """Extra per-ack allocation cost when memory pools are off."""

    # --- Heron control plane ------------------------------------------------
    metrics_per_sample: float = 1.0 * MICROS
    """Metrics Manager: ingesting one metric sample."""

    tmaster_per_event: float = 5.0 * MICROS
    """Topology Master: processing one control-plane event."""

    # --- checkpointing (repro.checkpoint) -----------------------------------
    checkpoint_marker_per_hop: float = 1.0 * MICROS
    """Stream Manager: routing one barrier marker to one destination."""

    instance_snapshot_fixed: float = 25.0 * MICROS
    """Instance: fixed cost of taking one state snapshot (barrier
    handling + snapshot call dispatch)."""

    instance_snapshot_per_byte: float = 0.002 * MICROS
    """Instance: serializing snapshotted state, per encoded byte."""

    instance_restore_fixed: float = 25.0 * MICROS
    """Instance: applying one restored snapshot (decode + init_state)."""

    coordinator_per_event: float = 5.0 * MICROS
    """Checkpoint Coordinator: processing one control-plane event
    (barrier injection fan-out, snapshot ack, commit bookkeeping)."""

    # --- Storm (baseline) ---------------------------------------------------
    storm_user_per_tuple: float = 0.80 * MICROS
    """Executor user-logic dispatch, per tuple (same work as Heron's)."""

    storm_framework_per_tuple: float = 1.10 * MICROS
    """Per-tuple executor framework cost: disruptor-queue handoffs,
    send/transfer thread bookkeeping inside the shared JVM."""

    storm_serialize_per_tuple: float = 0.70 * MICROS
    """Kryo-style (de)serialization executed on executor threads for
    inter-worker transfer."""

    storm_batch_overhead: float = 2.5 * MICROS
    """Per transferred message-buffer overhead."""

    storm_acker_per_op: float = 2.20 * MICROS
    """One XOR update in an acker executor (including the acker's own
    disruptor-queue handoffs). Acker executors are the known bottleneck
    of Storm's acking path; calibrated to Fig. 2's 3-5x gap."""

    storm_ack_emit_per_tuple: float = 0.35 * MICROS
    """Executor-side cost of emitting an ack entry toward an acker."""

    storm_contention_per_excess_thread: float = 0.06
    """Service-time inflation per runnable thread beyond a worker's cores
    (context switching + lock contention in the shared JVM)."""

    # --- external services (Fig. 14) ---------------------------------------
    kafka_fetch_per_event: float = 2.80 * MICROS
    """Kafka consumer: per-event share of fetch, decompress, decode."""

    kafka_fetch_per_poll: float = 25.0 * MICROS
    """Kafka consumer: fixed per-poll overhead."""

    redis_write_per_record: float = 3.00 * MICROS
    """Redis client: per-record serialize + pipeline write share."""

    # --- network -------------------------------------------------------------
    net_local_process: float = 5.0 * MICROS
    """Delivery latency between actors in the same process."""

    net_same_container: float = 30.0 * MICROS
    """Delivery latency between processes in one container (loopback)."""

    net_same_machine: float = 60.0 * MICROS
    """Delivery latency between containers on one machine."""

    net_cross_machine: float = 350.0 * MICROS
    """Delivery latency across machines when no rack map is bound
    (flat data-center RTT share; also the legacy single-tier value)."""

    net_same_rack: float = 350.0 * MICROS
    """Delivery latency across machines within one rack (top-of-rack
    switch hop). Defaults to ``net_cross_machine`` so binding a
    single-rack cluster changes nothing."""

    net_cross_rack: float = 500.0 * MICROS
    """Delivery latency across racks (aggregation/spine hops on top of
    the ToR hop) — the tier R-Storm placement tries to avoid."""

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with some constants replaced (used by ablations)."""
        return replace(self, **kwargs)


DEFAULT_COST_MODEL = CostModel()
