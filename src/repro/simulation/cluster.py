"""The simulated cluster: machines, containers, and their lifecycle.

This stands in for the paper's physical testbeds. A :class:`Cluster` owns a
set of homogeneous or heterogeneous :class:`Machine` objects; scheduling
frameworks (``repro.scheduler.frameworks``) allocate :class:`Container`
slices out of machines and launch engine processes (actors) inside them.

Containers provide the resource-isolation boundary the paper leans on:
per-container core counts feed the throughput-per-core figures, and
container kill/failure drives the scheduler-recovery behaviours of §IV-B.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.common.errors import SchedulerError, SimulationError
from repro.common.resources import Resource
from repro.simulation.actors import Actor, Location


class ContainerState:
    """Lifecycle states of a container."""

    RUNNING = "RUNNING"
    KILLED = "KILLED"    # deliberately released
    FAILED = "FAILED"    # crashed (failure injection)


class Container:
    """A resource-isolated slice of one machine hosting engine processes."""

    def __init__(self, container_id: int, machine: "Machine",
                 resource: Resource) -> None:
        self.id = container_id
        self.machine = machine
        self.resource = resource
        self.state = ContainerState.RUNNING
        self.processes: List[Actor] = []
        self._process_ids = itertools.count()
        self.tag: Optional[str] = None  # engine-specific label (topology etc.)

    def location(self, *, shared_process: Optional[int] = None) -> Location:
        """A Location inside this container.

        ``shared_process`` pins multiple actors into one simulated process
        (Storm worker JVMs); otherwise each call gets a fresh process id
        (Heron's process-per-instance model).
        """
        pid = shared_process if shared_process is not None \
            else next(self._process_ids)
        return Location.of(self.machine.id, self.id, pid)

    def new_process_id(self) -> int:
        """A fresh process id within this container."""
        return next(self._process_ids)

    def attach(self, actor: Actor) -> Actor:
        """Register an actor as running inside this container."""
        if self.state != ContainerState.RUNNING:
            raise SimulationError(
                f"cannot attach process to {self.state} container {self.id}")
        self.processes.append(actor)
        return actor

    def kill_processes(self) -> None:
        """Kill every process attached to this container."""
        for proc in self.processes:
            proc.kill()
        self.processes.clear()

    @property
    def running(self) -> bool:
        return self.state == ContainerState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Container(id={self.id}, machine={self.machine.id}, "
                f"state={self.state}, cpu={self.resource.cpu:g})")


class Machine:
    """One physical machine with a fixed resource capacity."""

    def __init__(self, machine_id: int, capacity: Resource) -> None:
        self.id = machine_id
        self.capacity = capacity
        self.allocated = Resource.zero()
        self.containers: Dict[int, Container] = {}

    @property
    def free(self) -> Resource:
        return self.capacity - self.allocated

    def can_fit(self, resource: Resource) -> bool:
        """Whether this machine has room for ``resource``."""
        return resource.fits_in(self.free)

    def _allocate(self, container: Container) -> None:
        if not self.can_fit(container.resource):
            raise SchedulerError(
                f"machine {self.id} cannot fit {container.resource}")
        self.allocated = self.allocated + container.resource
        self.containers[container.id] = container

    def _release(self, container: Container) -> None:
        if container.id not in self.containers:
            raise SchedulerError(
                f"container {container.id} not on machine {self.id}")
        del self.containers[container.id]
        self.allocated = self.allocated - container.resource


class Cluster:
    """A set of machines plus container allocation/release/failure.

    ``on_container_failed`` observers let scheduling frameworks react to
    injected failures (the stateless-scheduler path) or surface them to a
    monitoring Heron scheduler (the stateful path).
    """

    def __init__(self, machines: List[Machine]) -> None:
        if not machines:
            raise SchedulerError("a cluster needs at least one machine")
        self.machines = machines
        self._container_ids = itertools.count(1)
        self.containers: Dict[int, Container] = {}
        self._failure_observers: List[Callable[[Container], None]] = []

    @classmethod
    def homogeneous(cls, machine_count: int, capacity: Resource) -> "Cluster":
        """A cluster of ``machine_count`` identical machines."""
        if machine_count <= 0:
            raise SchedulerError(
                f"machine_count must be positive: {machine_count}")
        return cls([Machine(i, capacity) for i in range(machine_count)])

    # -- allocation ---------------------------------------------------------
    def allocate_container(self, resource: Resource,
                           tag: Optional[str] = None) -> Container:
        """First-fit allocate a container across machines.

        Machines are scanned in id order for determinism; raises
        :class:`SchedulerError` when nothing fits.
        """
        for machine in self.machines:
            if machine.can_fit(resource):
                container = Container(next(self._container_ids), machine,
                                      resource)
                container.tag = tag
                machine._allocate(container)
                self.containers[container.id] = container
                return container
        raise SchedulerError(
            f"no machine can fit a container of {resource}; "
            f"free={[str(m.free) for m in self.machines]}")

    def release_container(self, container: Container) -> None:
        """Kill a container's processes and return its resources."""
        self._remove(container, ContainerState.KILLED)

    def fail_container(self, container: Container) -> None:
        """Failure injection: crash a container and notify observers."""
        self._remove(container, ContainerState.FAILED)
        for observer in list(self._failure_observers):
            observer(container)

    def on_container_failed(self,
                            observer: Callable[[Container], None]) -> None:
        """Register an observer for injected container failures."""
        self._failure_observers.append(observer)

    def _remove(self, container: Container, state: str) -> None:
        if container.id not in self.containers:
            raise SchedulerError(
                f"container {container.id} is not live in this cluster")
        container.kill_processes()
        container.state = state
        container.machine._release(container)
        del self.containers[container.id]

    # -- introspection -------------------------------------------------------
    @property
    def total_capacity(self) -> Resource:
        return Resource.total(m.capacity for m in self.machines)

    @property
    def total_allocated(self) -> Resource:
        return Resource.total(m.allocated for m in self.machines)

    def provisioned_cores(self, tag: Optional[str] = None) -> float:
        """CPU cores currently allocated (optionally for one tag).

        This is the denominator of the paper's throughput-per-core figures
        (Figs. 6 and 8): cores *provisioned*, not cores busy.
        """
        return sum(c.resource.cpu for c in self.containers.values()
                   if tag is None or c.tag == tag)

    def live_containers(self, tag: Optional[str] = None) -> List[Container]:
        """Currently running containers (optionally filtered by tag)."""
        return [c for c in self.containers.values()
                if tag is None or c.tag == tag]
