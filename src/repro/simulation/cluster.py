"""The simulated cluster: machines, racks, containers, and their lifecycle.

This stands in for the paper's physical testbeds. A :class:`Cluster` owns a
set of homogeneous or heterogeneous :class:`Machine` objects — each living
in a rack — and scheduling frameworks (``repro.scheduler.frameworks``)
allocate :class:`Container` slices out of machines and launch engine
processes (actors) inside them.

Containers provide the resource-isolation boundary the paper leans on:
per-container core counts feed the throughput-per-core figures, and
container kill/failure drives the scheduler-recovery behaviours of §IV-B.

Placement is a first-class axis: :meth:`Cluster.allocate` takes a
:class:`PlacementRequest` carrying optional machine/rack preferences
(produced by placement-aware packing policies such as
``repro.packing.rstorm``) and resolves them deterministically —
preferred machine, then preferred rack in machine-id order, then
first-fit over all machines. The rack map feeds the network model's
``net_same_rack``/``net_cross_rack`` latency tiers; observers registered
via :meth:`Cluster.on_rack_change` are told when rack assignments move
so memoized latencies can be invalidated.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import SchedulerError, SimulationError
from repro.common.resources import Resource
from repro.simulation.actors import Actor, Location


class ContainerState:
    """Lifecycle states of a container."""

    RUNNING = "RUNNING"
    KILLED = "KILLED"    # deliberately released
    FAILED = "FAILED"    # crashed (failure injection)


class Container:
    """A resource-isolated slice of one machine hosting engine processes."""

    def __init__(self, container_id: int, machine: "Machine",
                 resource: Resource) -> None:
        self.id = container_id
        self.machine = machine
        self.resource = resource
        self.state = ContainerState.RUNNING
        self.processes: List[Actor] = []
        self._process_ids = itertools.count()
        self.tag: Optional[str] = None  # engine-specific label (topology etc.)

    def location(self, *, shared_process: Optional[int] = None) -> Location:
        """A Location inside this container.

        ``shared_process`` pins multiple actors into one simulated process
        (Storm worker JVMs); otherwise each call gets a fresh process id
        (Heron's process-per-instance model).
        """
        pid = shared_process if shared_process is not None \
            else next(self._process_ids)
        return Location.of(self.machine.id, self.id, pid)

    def new_process_id(self) -> int:
        """A fresh process id within this container."""
        return next(self._process_ids)

    def attach(self, actor: Actor) -> Actor:
        """Register an actor as running inside this container."""
        if self.state != ContainerState.RUNNING:
            raise SimulationError(
                f"cannot attach process to {self.state} container {self.id}")
        self.processes.append(actor)
        return actor

    def kill_processes(self) -> None:
        """Kill every process attached to this container."""
        for proc in self.processes:
            proc.kill()
        self.processes.clear()

    @property
    def running(self) -> bool:
        return self.state == ContainerState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Container(id={self.id}, machine={self.machine.id}, "
                f"state={self.state}, cpu={self.resource.cpu:g})")


class Machine:
    """One physical machine with a fixed resource capacity, in a rack."""

    def __init__(self, machine_id: int, capacity: Resource,
                 rack_id: int = 0) -> None:
        self.id = machine_id
        self.capacity = capacity
        self.rack_id = rack_id
        self.allocated = Resource.zero()
        self.containers: Dict[int, Container] = {}

    @property
    def free(self) -> Resource:
        return self.capacity - self.allocated

    def can_fit(self, resource: Resource) -> bool:
        """Whether this machine has room for ``resource``."""
        return resource.fits_in(self.free)

    def _allocate(self, container: Container) -> None:
        if not self.can_fit(container.resource):
            raise SchedulerError(
                f"machine {self.id} cannot fit {container.resource}")
        self.allocated = self.allocated + container.resource
        self.containers[container.id] = container

    def _release(self, container: Container) -> None:
        if container.id not in self.containers:
            raise SchedulerError(
                f"container {container.id} not on machine {self.id}")
        del self.containers[container.id]
        self.allocated = self.allocated - container.resource


@dataclass(frozen=True)
class PlacementRequest:
    """One container allocation with optional placement preferences.

    Preferences are *hints*, not hard constraints: the cluster falls back
    to first-fit when the preferred machine (or rack) has no room. Hard
    failures only happen when no machine at all can host the container.
    """

    resource: Resource
    tag: Optional[str] = None
    preferred_machine: Optional[int] = None
    preferred_rack: Optional[int] = None


class Cluster:
    """A set of racked machines plus container allocation/release/failure.

    ``on_container_failed`` observers let scheduling frameworks react to
    injected failures (the stateless-scheduler path) or surface them to a
    monitoring Heron scheduler (the stateful path); ``on_rack_change``
    observers let the network model invalidate memoized latencies when a
    machine moves racks.
    """

    def __init__(self, machines: List[Machine]) -> None:
        if not machines:
            raise SchedulerError("a cluster needs at least one machine")
        self.machines = machines
        self._machines_by_id: Dict[int, Machine] = {m.id: m for m in machines}
        if len(self._machines_by_id) != len(machines):
            raise SchedulerError("duplicate machine ids in cluster")
        self._container_ids = itertools.count(1)
        self.containers: Dict[int, Container] = {}
        self._failure_observers: List[Callable[[Container], None]] = []
        self._rack_observers: List[Callable[[], None]] = []

    @classmethod
    def homogeneous(cls, machine_count: int, capacity: Resource) -> "Cluster":
        """A single-rack cluster of ``machine_count`` identical machines."""
        if machine_count <= 0:
            raise SchedulerError(
                f"machine_count must be positive: {machine_count}")
        return cls([Machine(i, capacity) for i in range(machine_count)])

    @classmethod
    def racked(cls, racks: int, machines_per_rack: int,
               capacity: Resource) -> "Cluster":
        """A rack topology: ``racks`` racks of identical machines.

        Machine ids are dense and rack-major (machine ``r * mpr + i``
        lives in rack ``r``), so id-ordered first-fit fills one rack
        before spilling into the next.
        """
        if racks <= 0 or machines_per_rack <= 0:
            raise SchedulerError(
                f"racks and machines_per_rack must be positive: "
                f"{racks}x{machines_per_rack}")
        machines = [
            Machine(rack * machines_per_rack + i, capacity, rack_id=rack)
            for rack in range(racks) for i in range(machines_per_rack)
        ]
        return cls(machines)

    # -- rack topology ------------------------------------------------------
    def machine(self, machine_id: int) -> Machine:
        """Look up one machine by id."""
        machine = self._machines_by_id.get(machine_id)
        if machine is None:
            raise SchedulerError(f"no machine {machine_id} in cluster")
        return machine

    def rack_of(self, machine_id: int) -> int:
        """The rack hosting ``machine_id`` (used by the network model)."""
        return self.machine(machine_id).rack_id

    def rack_ids(self) -> List[int]:
        """All rack ids, sorted."""
        return sorted({m.rack_id for m in self.machines})

    def machines_in_rack(self, rack_id: int) -> List[Machine]:
        """The machines of one rack, in machine-id order."""
        return [m for m in self.machines if m.rack_id == rack_id]

    def set_rack(self, machine_id: int, rack_id: int) -> None:
        """Move a machine to another rack (topology reconfiguration).

        Notifies ``on_rack_change`` observers so memoized rack-dependent
        state (network latencies) is invalidated.
        """
        machine = self.machine(machine_id)
        if machine.rack_id == rack_id:
            return
        machine.rack_id = rack_id
        for observer in list(self._rack_observers):
            observer()

    def on_rack_change(self, observer: Callable[[], None]) -> None:
        """Register an observer for rack reassignments."""
        self._rack_observers.append(observer)

    # -- allocation ---------------------------------------------------------
    def allocate(self, request: PlacementRequest) -> Container:
        """Allocate a container, honoring placement preferences.

        Candidate order (deterministic, ties broken by machine id):

        1. the preferred machine, if named and it fits;
        2. machines of the preferred rack, in id order;
        3. every machine, in id order (first-fit fallback).

        Raises :class:`SchedulerError` only when *no* machine fits.
        """
        resource = request.resource
        machine = self._place(request)
        if machine is None:
            raise SchedulerError(
                f"no machine can fit a container of {resource}; "
                f"free={[str(m.free) for m in self.machines]}")
        container = Container(next(self._container_ids), machine, resource)
        container.tag = request.tag
        machine._allocate(container)
        self.containers[container.id] = container
        return container

    def _place(self, request: PlacementRequest) -> Optional[Machine]:
        resource = request.resource
        if request.preferred_machine is not None:
            preferred = self._machines_by_id.get(request.preferred_machine)
            if preferred is not None and preferred.can_fit(resource):
                return preferred
        if request.preferred_rack is not None:
            for machine in self.machines:
                if machine.rack_id == request.preferred_rack \
                        and machine.can_fit(resource):
                    return machine
        for machine in self.machines:
            if machine.can_fit(resource):
                return machine
        return None

    def allocate_container(self, resource: Resource,
                           tag: Optional[str] = None, *,
                           preferred_machine: Optional[int] = None,
                           preferred_rack: Optional[int] = None) -> Container:
        """Allocate a container (convenience over :meth:`allocate`)."""
        return self.allocate(PlacementRequest(
            resource, tag, preferred_machine=preferred_machine,
            preferred_rack=preferred_rack))

    def release_container(self, container: Container) -> None:
        """Kill a container's processes and return its resources."""
        self._remove(container, ContainerState.KILLED)

    def fail_container(self, container: Container) -> None:
        """Failure injection: crash a container and notify observers."""
        self._remove(container, ContainerState.FAILED)
        for observer in list(self._failure_observers):
            observer(container)

    def on_container_failed(self,
                            observer: Callable[[Container], None]) -> None:
        """Register an observer for injected container failures."""
        self._failure_observers.append(observer)

    def _remove(self, container: Container, state: str) -> None:
        if container.id not in self.containers:
            raise SchedulerError(
                f"container {container.id} is not live in this cluster")
        container.kill_processes()
        container.state = state
        container.machine._release(container)
        del self.containers[container.id]

    # -- introspection -------------------------------------------------------
    @property
    def total_capacity(self) -> Resource:
        return Resource.total(m.capacity for m in self.machines)

    @property
    def total_allocated(self) -> Resource:
        return Resource.total(m.allocated for m in self.machines)

    def provisioned_cores(self, tag: Optional[str] = None) -> float:
        """CPU cores currently allocated (optionally for one tag).

        This is the denominator of the paper's throughput-per-core figures
        (Figs. 6 and 8): cores *provisioned*, not cores busy.
        """
        return sum(c.resource.cpu for c in self.containers.values()
                   if tag is None or c.tag == tag)

    def live_containers(self, tag: Optional[str] = None) -> List[Container]:
        """Currently running containers (optionally filtered by tag)."""
        return [c for c in self.containers.values()
                if tag is None or c.tag == tag]
