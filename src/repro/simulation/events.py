"""The discrete-event loop: a simulated clock plus a pending-event heap.

The :class:`Simulator` is intentionally tiny — it is the "kernel" the whole
reproduction runs on — and is written for predictable performance:

* a heap of ``(time, seq, handle)`` entries with cancellation by
  tombstone, exactly as before, **plus** an O(1) live-event counter so
  :attr:`Simulator.pending_events` never scans the heap;
* automatic heap **compaction**: when tombstones (cancelled or stale
  entries) outnumber live events the heap is rebuilt in place, so
  cancel-heavy workloads (kill storms, timer churn) keep memory bounded;
* **allocation-free repeating timers**: a :class:`RepeatingEvent` re-arms
  one reusable :class:`EventHandle` per fire instead of constructing a
  new handle each interval. Handles are sequence-versioned so a stale
  heap entry left behind by ``cancel``/``reschedule`` can never fire a
  re-armed handle.

Two kernels implement this contract: the binary heap in this module and
the calendar queue in :mod:`repro.simulation.calqueue` (O(1) schedule/
pop for the simulator's heavily clustered timestamps). ``Simulator(...)``
returns whichever the ``REPRO_KERNEL`` environment variable (or the
``kernel=`` argument) selects — ``calendar`` is the default; ``heap``
keeps the reference implementation. Both pop events in exactly the same
``(time, seq)`` order, so traces are byte-identical across kernels.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.analysis.sanitize import KernelSanitizer

#: Compaction policy: rebuild when the heap holds more tombstones than
#: live events and is big enough for the rebuild to be worth its O(n).
_COMPACT_MIN_SIZE = 64

#: Kernel selected when neither ``kernel=`` nor ``REPRO_KERNEL`` says
#: otherwise. The calendar queue is the default; ``heap`` remains the
#: reference implementation the differential tests compare against.
DEFAULT_KERNEL = "calendar"

_KERNELS = ("heap", "calendar")

#: Sequence-number bit where the schedule explorer's tie-class demotion
#: lives (repro.analysis.races): events a tie classifier assigns class
#: ``c > 0`` get ``c << TIE_CLASS_SHIFT`` added to their sequence number
#: at arm time, moving them after class-0 events *within their tie group
#: only* — time order, uniqueness and the tombstone seq check are all
#: preserved because base sequence numbers stay far below this bit.
TIE_CLASS_SHIFT = 42


class EventHandle:
    """A cancellable reference to one scheduled callback.

    A handle is *versioned*: ``seq`` records the heap sequence number of
    its currently-armed entry. Popped entries whose stored sequence does
    not match ``handle.seq`` are stale (the handle was cancelled and
    re-armed since) and are discarded as tombstones.

    ``cause`` is written only when a causal tracer is attached
    (:mod:`repro.analysis.races`): the event id that was executing when
    this handle was (re-)armed, i.e. the spawn edge of the
    happens-before relation. It stays ``None`` on the default path.
    """

    __slots__ = ("fn", "args", "cancelled", "time", "sim", "seq", "in_heap",
                 "cause")

    def __init__(self, sim: "Simulator", time: float,
                 fn: Callable[..., Any], args: tuple) -> None:
        self.sim = sim
        self.time = time
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self.seq = 0
        self.in_heap = False
        self.cause: Optional[int] = None

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None  # drop references early
        self.args = ()
        if self.in_heap:
            self.in_heap = False
            sim = self.sim
            sim._live -= 1
            sim._on_cancel(self)


class RepeatingEvent:
    """A fixed-interval timer created by :meth:`Simulator.every`.

    One :class:`EventHandle` is allocated at construction and re-armed
    after every fire — steady-state firing allocates only the heap entry
    tuple, never a new handle.
    """

    __slots__ = ("_sim", "_interval", "_fn", "_handle", "_stopped",
                 "_in_fire")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any]) -> None:
        if interval <= 0:
            raise SimulationError(
                f"repeating interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._stopped = False
        self._in_fire = False
        self._handle = sim.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._in_fire = True
        try:
            self._fn()
        finally:
            self._in_fire = False
        if not self._stopped:  # fn may have stopped us
            # _arm inlined: this runs once per fire of every timer.
            handle = self._handle
            handle.cancelled = False
            handle.fn = self._fire
            self._sim._push(handle, self._interval)

    def _arm(self, delay: float) -> None:
        """Re-arm the reusable handle ``delay`` seconds from now."""
        handle = self._handle
        handle.cancelled = False
        handle.fn = self._fire
        handle.args = ()
        self._sim._push(handle, delay)

    def stop(self) -> None:
        """Stop firing (idempotent)."""
        self._stopped = True
        self._handle.cancel()

    @property
    def interval(self) -> float:
        return self._interval

    def reschedule(self, interval: float) -> None:
        """Change the firing interval, starting from now.

        Safe to call from inside the timer's own callback: the in-flight
        fire simply re-arms at the new interval instead of double-arming.
        """
        if interval <= 0:
            raise SimulationError(
                f"repeating interval must be positive, got {interval}")
        self._interval = interval
        if self._in_fire or self._stopped:
            return  # _fire (or nobody) will arm; never leave two entries
        self._handle.cancel()
        self._arm(interval)


class Simulator:
    """The discrete-event kernel.

    Time only moves inside :meth:`run_for` / :meth:`run_until` /
    :meth:`step`; callbacks run with ``sim.now`` set to their scheduled time.

    Constructing ``Simulator(...)`` dispatches on the selected kernel:
    with ``kernel="calendar"`` (or ``REPRO_KERNEL=calendar``, the
    default) the instance is a
    :class:`repro.simulation.calqueue.CalendarSimulator`; ``heap`` gives
    this class's binary-heap scheduler. Event order and every public
    attribute are identical either way.
    """

    #: Which scheduler backs this class; the sanitizer dispatches its
    #: full-scan invariant checks on this.
    kernel: str = "heap"

    # Slotted: the event loop touches these attributes millions of
    # times per simulated run; skipping the instance dict is measurable.
    __slots__ = ("now", "_heap", "_seq", "_live", "_events_processed",
                 "_compactions", "_running", "sanitizer", "_seq_sign",
                 "_trace")

    def __new__(cls, **kwargs: Any) -> "Simulator":
        if cls is Simulator:
            kernel = kwargs.get("kernel") \
                or os.environ.get("REPRO_KERNEL") or DEFAULT_KERNEL
            if kernel not in _KERNELS:
                raise SimulationError(
                    f"unknown kernel {kernel!r} (REPRO_KERNEL must be one "
                    f"of {'|'.join(_KERNELS)})")
            if kernel == "calendar":
                from repro.simulation.calqueue import CalendarSimulator
                return super().__new__(CalendarSimulator)
        return super().__new__(cls)

    def __init__(self, *, sanitize: Optional[bool] = None,
                 tie_order: str = "fifo",
                 kernel: Optional[str] = None) -> None:
        del kernel  # consumed by __new__; accepted here for symmetry
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._live = 0
        self._events_processed = 0
        self._compactions = 0
        self._running = False
        # Sanitize mode (repro.analysis.sanitize): None defers to the
        # REPRO_SANITIZE environment variable so whole experiment runs
        # can be instrumented without threading a flag through every
        # cluster constructor. Off (the default) costs one `is None`
        # check per event.
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "0") \
                not in ("", "0")
        self.sanitizer: Optional["KernelSanitizer"] = None
        #: +1 orders equal-timestamp events by scheduling order (the
        #: kernel's contract); -1 (sanitizer tie probe) reverses order
        #: *within tie groups only*, leaving cross-time order intact.
        self._seq_sign = 1
        #: Causal tracer (repro.analysis.races), attached via
        #: attach_tracer() in sanitize mode only. The default path pays
        #: one `is None` check per schedule and nothing else.
        self._trace: Optional[Any] = None
        if sanitize:
            from repro.analysis.sanitize import KernelSanitizer
            self.sanitizer = KernelSanitizer(tie_order=tie_order)
            if tie_order == "lifo":
                self._seq_sign = -1
        elif tie_order != "fifo":
            raise SimulationError(
                "tie_order probes require sanitize mode")

    # -- scheduling -------------------------------------------------------
    def _push(self, handle: EventHandle, delay: float) -> None:
        """Arm ``handle`` ``delay`` seconds from now (internal)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        seq = (self._seq + 1) * self._seq_sign
        self._seq += 1
        trace = self._trace
        if trace is not None:
            handle.cause = trace.current
            tie_class = trace.tie_class
            if tie_class is not None:
                bump = tie_class(handle.fn, handle.args)
                if bump:
                    seq += bump << TIE_CLASS_SHIFT
        handle.time = time = self.now + delay
        handle.seq = seq
        handle.in_heap = True
        self._live += 1
        heappush(self._heap, (time, seq, handle))

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        # _push inlined: this is the hottest allocation site in the whole
        # simulator (one handle + one heap entry per message delivery).
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = EventHandle(self, 0.0, fn, args)
        seq = (self._seq + 1) * self._seq_sign
        self._seq += 1
        trace = self._trace
        if trace is not None:
            handle.cause = trace.current
            tie_class = trace.tie_class
            if tie_class is not None:
                bump = tie_class(fn, args)
                if bump:
                    seq += bump << TIE_CLASS_SHIFT
        handle.time = time = self.now + delay
        handle.seq = seq
        handle.in_heap = True
        self._live += 1
        heappush(self._heap, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def every(self, interval: float, fn: Callable[[], Any]) -> RepeatingEvent:
        """Run ``fn()`` every ``interval`` seconds until stopped."""
        return RepeatingEvent(self, interval, fn)

    # -- heap hygiene ------------------------------------------------------
    def _on_cancel(self, handle: EventHandle) -> None:
        """Kernel hook: ``handle`` was cancelled while armed. The heap
        only re-checks its compaction trigger; the calendar kernel also
        uses ``handle.time`` to attribute the tombstone to a structure."""
        del handle
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap when tombstones outnumber live events."""
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_SIZE and len(heap) >= 2 * self._live:
            # In-place so `run_until`'s local alias stays valid.
            heap[:] = [entry for entry in heap
                       if entry[2].in_heap and entry[2].seq == entry[1]]
            heapify(heap)
            self._compactions += 1
            if self.sanitizer is not None:
                self.sanitizer.on_compact(self)

    # -- execution ----------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event; returns False if none remain."""
        while self._heap:
            time, seq, handle = heappop(self._heap)
            if not handle.in_heap or handle.seq != seq:
                continue  # tombstone: cancelled, or stale after a re-arm
            if time < self.now - 1e-12:
                raise SimulationError(
                    f"time went backwards: {time} < {self.now}")
            handle.in_heap = False
            self._live -= 1
            self.now = time
            fn, args = handle.fn, handle.args
            handle.fn = None
            handle.args = ()
            if self.sanitizer is not None:
                self.sanitizer.on_pop(self, time, seq, fn, args, handle)
            fn(*args)  # type: ignore[misc]
            self._events_processed += 1
            trace = self._trace
            if trace is not None:
                # Scheduling between steps is the driver's, not this
                # event's: don't attribute spawn edges to it.
                trace.current = None
            return True
        return False

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, running every event before it."""
        if time < self.now:
            raise SimulationError(
                f"run_until target {time} is before now {self.now}")
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            heap = self._heap
            pop = heappop
            sani = self.sanitizer
            while heap:
                etime, seq, handle = heap[0]
                if etime > time:
                    break
                pop(heap)
                if not handle.in_heap or handle.seq != seq:
                    continue  # tombstone / stale entry
                handle.in_heap = False
                self._live -= 1
                self.now = etime
                fn, args = handle.fn, handle.args
                handle.fn = None
                handle.args = ()
                if sani is not None:
                    sani.on_pop(self, etime, seq, fn, args, handle)
                fn(*args)  # type: ignore[misc]
                self._events_processed += 1
        finally:
            self._running = False
            if self._trace is not None:
                self._trace.current = None
        self.now = time

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` seconds."""
        self.run_until(self.now + duration)

    def drain(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded to catch runaways)."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"drain exceeded {max_events} events; likely a live-lock")

    # -- introspection ------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) scheduled events — O(1)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap entries, tombstones included (for tests)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted."""
        return self._compactions

    @property
    def events_processed(self) -> int:
        return self._events_processed
