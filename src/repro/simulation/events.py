"""The discrete-event loop: a simulated clock plus a pending-event heap.

The :class:`Simulator` is intentionally tiny — it is the "kernel" the whole
reproduction runs on — and is written for predictable performance: a heap of
``(time, seq, handle)`` entries, cancellation by tombstone, and no per-event
allocations beyond the entry tuple.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.common.errors import SimulationError


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("fn", "args", "cancelled", "time")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True
        self.fn = None  # drop references early
        self.args = ()


class RepeatingEvent:
    """A fixed-interval timer created by :meth:`Simulator.every`."""

    __slots__ = ("_sim", "_interval", "_fn", "_handle", "_stopped")

    def __init__(self, sim: "Simulator", interval: float,
                 fn: Callable[[], Any]) -> None:
        if interval <= 0:
            raise SimulationError(
                f"repeating interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._fn = fn
        self._stopped = False
        self._handle = sim.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:  # fn may have stopped us
            self._handle = self._sim.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Stop firing (idempotent)."""
        self._stopped = True
        self._handle.cancel()

    @property
    def interval(self) -> float:
        return self._interval

    def reschedule(self, interval: float) -> None:
        """Change the firing interval, starting from now."""
        if interval <= 0:
            raise SimulationError(
                f"repeating interval must be positive, got {interval}")
        self._interval = interval
        self._handle.cancel()
        if not self._stopped:
            self._handle = self._sim.schedule(interval, self._fire)


class Simulator:
    """The discrete-event kernel.

    Time only moves inside :meth:`run_for` / :meth:`run_until` /
    :meth:`step`; callbacks run with ``sim.now`` set to their scheduled time.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = EventHandle(self.now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (handle.time, self._seq, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def every(self, interval: float, fn: Callable[[], Any]) -> RepeatingEvent:
        """Run ``fn()`` every ``interval`` seconds until stopped."""
        return RepeatingEvent(self, interval, fn)

    # -- execution ----------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event; returns False if none remain."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if time < self.now - 1e-12:
                raise SimulationError(
                    f"time went backwards: {time} < {self.now}")
            self.now = time
            fn, args = handle.fn, handle.args
            handle.fn = None
            handle.args = ()
            fn(*args)  # type: ignore[misc]
            self._events_processed += 1
            return True
        return False

    def run_until(self, time: float) -> None:
        """Advance the clock to ``time``, running every event before it."""
        if time < self.now:
            raise SimulationError(
                f"run_until target {time} is before now {self.now}")
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                etime, _seq, handle = heap[0]
                if etime > time:
                    break
                heapq.heappop(heap)
                if handle.cancelled:
                    continue
                self.now = etime
                fn, args = handle.fn, handle.args
                handle.fn = None
                handle.args = ()
                fn(*args)  # type: ignore[misc]
                self._events_processed += 1
        finally:
            self._running = False
        self.now = time

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` seconds."""
        self.run_until(self.now + duration)

    def drain(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded to catch runaways)."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"drain exceeded {max_events} events; likely a live-lock")

    # -- introspection ------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return sum(1 for _t, _s, h in self._heap if not h.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed
