"""Deterministic random-number streams.

Each subsystem that needs randomness gets its *own* named stream derived
from the experiment seed, so adding randomness to one component never
perturbs another (a standard reproducible-simulation practice).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream:
    """A named, seeded random stream (thin wrapper over ``random.Random``)."""

    def __init__(self, root_seed: int, name: str) -> None:
        self.name = name
        self._rng = random.Random(_derive_seed(root_seed, name))

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed value with the given rate."""
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        """A uniformly chosen element."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """k distinct uniformly chosen elements."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """In-place deterministic shuffle."""
        self._rng.shuffle(items)

    def jitter(self, value: float, fraction: float) -> float:
        """``value`` perturbed uniformly by up to ±``fraction`` of itself."""
        if fraction < 0:
            raise ValueError(f"jitter fraction must be >= 0: {fraction}")
        return value * (1.0 + self._rng.uniform(-fraction, fraction))


class RngRegistry:
    """Creates and memoizes named :class:`RngStream` objects for one seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """The memoized stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = RngStream(self.root_seed, name)
            self._streams[name] = stream
        return stream
