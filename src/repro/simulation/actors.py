"""Actors: single-threaded simulated server processes.

An :class:`Actor` models one OS process (or one thread pinned inside a
shared process, for the Storm baseline): it owns an inbox, processes one
message at a time, and every message handler *charges* CPU cost via
:meth:`Actor.charge`. The actor remains busy for the charged time — scaled
by its ``speed`` and ``contention`` — before taking the next message.
Messages sent from inside a handler are buffered and released when the
service completes, so downstream observers see effects after the service
time (correct latency accounting).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.simulation.costs import CostCategory
from repro.simulation.events import EventHandle, RepeatingEvent, Simulator


@dataclass(frozen=True)
class Location:
    """Where an actor runs: used by the network model to price delivery.

    Actors sharing ``process_id`` are threads in one process (Storm
    executors in a worker JVM); actors sharing only ``container_id`` are
    separate processes in one container (Heron instances and their SM);
    and so on outward.

    Locations are hashed per message on the latency hot path, so the
    hash is computed once at construction, and :meth:`Location.of`
    interns instances so equal locations share one object.
    """

    machine_id: int
    container_id: int
    process_id: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(
            (self.machine_id, self.container_id, self.process_id)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @classmethod
    def of(cls, machine_id: int, container_id: int,
           process_id: int) -> "Location":
        """Interned constructor: equal coordinates → the same object."""
        key = (machine_id, container_id, process_id)
        location = _LOCATION_CACHE.get(key)
        if location is None:
            location = cls(machine_id, container_id, process_id)
            _LOCATION_CACHE[key] = location
        return location

    def colocated_process(self, other: "Location") -> bool:
        """Whether both locations are threads of one process."""
        return (self.machine_id == other.machine_id
                and self.container_id == other.container_id
                and self.process_id == other.process_id)


_LOCATION_CACHE: Dict[Tuple[int, int, int], Location] = {}


class CostLedger:
    """Accumulates charged CPU time per cost category and per actor group.

    The Fig. 14 resource-consumption breakdown is read directly off this
    ledger after a run.
    """

    def __init__(self) -> None:
        self.by_category: Dict[str, float] = {}
        self.by_group: Dict[str, float] = {}
        self.total: float = 0.0

    def add(self, category: str, group: str, cost: float) -> None:
        """Attribute ``cost`` CPU-seconds to a category and group."""
        self.by_category[category] = self.by_category.get(category, 0.0) + cost
        self.by_group[group] = self.by_group.get(group, 0.0) + cost
        self.total += cost

    def fraction(self, category: str) -> float:
        """Share of total charged CPU attributed to ``category``."""
        if self.total <= 0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.total

    def breakdown(self) -> Dict[str, float]:
        """Category → fraction-of-total map (sums to 1 when total > 0)."""
        return {cat: self.fraction(cat) for cat in sorted(self.by_category)}


class Actor:
    """Base class for every simulated process.

    Subclasses override :meth:`on_message` and call :meth:`charge` for CPU
    work and :meth:`send` to communicate. ``group`` labels the ledger rows
    (e.g., ``"stream-manager"``) for per-component accounting.
    """

    def __init__(self, sim: Simulator, name: str, location: Location, *,
                 network: "NetworkProtocol", ledger: Optional[CostLedger] = None,
                 group: str = "actor", speed: float = 1.0) -> None:
        if speed <= 0:
            raise SimulationError(f"actor speed must be positive: {speed}")
        self.sim = sim
        self.name = name
        self.location = location
        self.network = network
        self.ledger = ledger
        self.group = group
        self.speed = speed
        self.contention = 1.0
        self.alive = True

        self._inbox: Deque[Any] = deque()
        self._sanitizer = sim.sanitizer
        self._busy = False
        self._in_handler = False
        self._charged = 0.0
        self._charge_groups: Dict[str, float] = {}
        self._pending_out: List[Tuple["Actor", Any, float]] = []
        self._completion: Optional[EventHandle] = None
        self._timers: List[RepeatingEvent] = []
        self.messages_processed = 0
        self.busy_time = 0.0

    # -- messaging ----------------------------------------------------------
    def deliver(self, message: Any) -> None:
        """Enqueue a message for this actor (already past network delay)."""
        if not self.alive:
            return
        self._inbox.append(message)
        if not self._busy:
            self._process_loop()

    def deliver_many(self, messages: List[Any]) -> None:
        """Enqueue several messages at once (one coalesced delivery)."""
        if not self.alive:
            return
        self._inbox.extend(messages)
        if not self._busy:
            self._process_loop()

    def send(self, dest: "Actor", message: Any, extra_delay: float = 0.0) -> None:
        """Send ``message`` to ``dest`` with modeled network latency.

        Inside a handler the send is buffered and released at service
        completion; outside (timers, external drivers) it goes immediately.

        The network model may return ``None`` — the message is dropped
        (fault injection; see :class:`repro.chaos.FaultyNetwork`).
        Reliability is the sender's problem, exactly as on a real
        network.
        """
        delay = self.network.latency(self.location, dest.location)
        if delay is None:
            return
        delay += extra_delay
        if self._in_handler:
            self._pending_out.append((dest, message, delay))
        else:
            self.sim.schedule(delay, dest.deliver, message)

    # -- cost accounting ------------------------------------------------------
    def charge(self, cost: float, category: str = CostCategory.ENGINE) -> None:
        """Charge ``cost`` seconds of CPU for the message being handled.

        In-handler charges are accumulated per category and written to
        the ledger once per message (handlers on hot paths charge many
        times per message; the ledger sees identical totals either way).
        """
        if cost < 0:
            raise SimulationError(f"negative cost: {cost}")
        self._charged += cost
        if self.ledger is None:
            return
        if self._in_handler:
            groups = self._charge_groups
            groups[category] = groups.get(category, 0.0) + cost
        else:
            self.ledger.add(category, self.group, cost)

    # -- lifecycle -------------------------------------------------------------
    def every(self, interval: float, fn: Callable[[], Any]) -> RepeatingEvent:
        """A repeating timer owned by this actor (cancelled on kill)."""
        timer = self.sim.every(interval, fn)
        self._timers.append(timer)
        return timer

    def kill(self) -> None:
        """Stop this actor: drop its queue, cancel timers and completions."""
        self.alive = False
        self._inbox.clear()
        self._pending_out.clear()
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self._busy = False
        self.on_killed()

    # -- subclass hooks ---------------------------------------------------------
    def on_message(self, message: Any) -> None:
        """Handle one message; charge CPU via :meth:`charge`."""
        raise NotImplementedError

    def on_killed(self) -> None:
        """Cleanup hook invoked when the actor is killed."""

    # -- introspection -------------------------------------------------------
    @property
    def inbox_len(self) -> int:
        return len(self._inbox)

    @property
    def busy(self) -> bool:
        return self._busy

    # -- internals -------------------------------------------------------------
    def _process_loop(self) -> None:
        """Process messages until one costs time or the inbox drains."""
        if self._sanitizer is not None and self._in_handler:
            # Handlers run with _busy still False, so a handler calling
            # deliver() synchronously (instead of send()) would recurse
            # into this loop and process a message mid-handler — the
            # actor-model analogue of a data race.
            self._sanitizer.fail(
                f"actor {self.name!r}: re-entrant message processing "
                f"(deliver() called from inside its own handler; use "
                f"send())")
        while self._inbox and self.alive:
            message = self._inbox.popleft()
            self._charged = 0.0
            self._in_handler = True
            try:
                self.on_message(message)
            finally:
                self._in_handler = False
                if self._charge_groups:
                    ledger, group = self.ledger, self.group
                    for category, cost in self._charge_groups.items():
                        ledger.add(category, group, cost)
                    self._charge_groups.clear()
            self.messages_processed += 1
            service = self._charged * self.contention / self.speed
            if service > 0.0:
                self._busy = True
                self.busy_time += service
                self._completion = self.sim.schedule(service, self._complete)
                return
            self._flush_pending()
        # inbox empty (or dead): idle

    def _complete(self) -> None:
        if self._sanitizer is not None and not self._busy:
            # Only a stale heap entry can fire a completion on an idle
            # actor — the sequence-versioned handles exist to prevent
            # exactly this.
            self._sanitizer.fail(
                f"actor {self.name!r}: service completion fired while "
                f"idle (stale event handle)")
        self._completion = None
        self._busy = False
        self._flush_pending()
        if self._inbox and self.alive:
            self._process_loop()

    def _flush_pending(self) -> None:
        pending = self._pending_out
        if not pending:
            return
        self._pending_out = []
        schedule = self.sim.schedule
        if len(pending) == 1:
            dest, message, delay = pending[0]
            schedule(delay, dest.deliver, message)
            return
        # Coalesce sends sharing (destination, delay) into one delivery
        # event: one heap push per destination instead of one per message.
        # Relative order per destination is preserved (dict is insertion
        # ordered), so coalescing is deterministic.
        groups: Dict[Tuple[int, float], List[Any]] = {}
        for dest, message, delay in pending:
            key = (id(dest), delay)
            group = groups.get(key)
            if group is None:
                groups[key] = [dest, message]
            else:
                group.append(message)
        for (_dest_id, delay), group in groups.items():
            if len(group) == 2:
                schedule(delay, group[0].deliver, group[1])
            else:
                schedule(delay, group[0].deliver_many, group[1:])


class NetworkProtocol:
    """Structural protocol for what actors need from a network model."""

    def latency(self, src: Location,
                dst: Location) -> Optional[float]:  # pragma: no cover
        """Delivery latency between two locations, or ``None`` when the
        network drops the message entirely."""
        raise NotImplementedError


class FunctionActor(Actor):
    """An actor whose handler is a plain callable — handy in tests.

    The callable receives ``(actor, message)`` and may call ``actor.charge``.
    """

    def __init__(self, sim: Simulator, name: str, location: Location, *,
                 network: NetworkProtocol, handler: Callable[["Actor", Any], None],
                 ledger: Optional[CostLedger] = None, group: str = "actor",
                 speed: float = 1.0) -> None:
        super().__init__(sim, name, location, network=network, ledger=ledger,
                         group=group, speed=speed)
        self._handler = handler

    def on_message(self, message: Any) -> None:
        self._handler(self, message)
