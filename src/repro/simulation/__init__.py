"""Deterministic discrete-event cluster simulator.

This package is the *hardware substrate* of the reproduction: it plays the
role of the paper's physical clusters (HDInsight nodes, dual-Xeon machines).
Everything above it — Heron, the Storm baseline, the micro-batch baseline —
runs as :class:`~repro.simulation.actors.Actor` processes on simulated
machines, paying simulated CPU time per operation according to
:class:`~repro.simulation.costs.CostModel`.

Design notes
------------
* Simulated time is a float number of seconds. The event loop is a binary
  heap with a monotonically increasing tiebreak counter, so runs are fully
  deterministic (no wall clock, no unordered-set iteration on the hot path).
* An actor is a single-threaded server: it processes one message at a time;
  each message's handler *charges* CPU cost, and the actor stays busy for
  the charged time (scaled by its speed and contention factor) before taking
  the next message. Queueing, bottlenecks and backpressure are emergent.
* Messages sent from inside a handler are buffered and released when the
  service completes, so downstream effects are observed after the service
  time — giving correct end-to-end latency accounting.
"""

from repro.simulation.actors import Actor, Location
from repro.simulation.cluster import Cluster, Container, Machine
from repro.simulation.costs import CostCategory, CostModel
from repro.simulation.events import EventHandle, Simulator
from repro.simulation.network import Network
from repro.simulation.rng import RngStream

__all__ = [
    "Actor",
    "Cluster",
    "Container",
    "CostCategory",
    "CostModel",
    "EventHandle",
    "Location",
    "Machine",
    "Network",
    "RngStream",
    "Simulator",
]
