"""The ``heron-sim`` command line interface.

Subcommands::

    heron-sim demo                     # run a small WordCount end to end
    heron-sim figure fig2 [--fast]     # regenerate one paper figure
    heron-sim figures                  # list reproducible figures
    heron-sim submit --parallelism 4   # run WordCount with knobs
    heron-sim lint [paths...]          # determinism lint (D001-D007)
    heron-sim races racy --explore     # happens-before race detection
    heron-sim chaos-search --fast      # adversarial fault timing search

This is a thin convenience layer over ``repro.experiments`` and
``repro.core``; everything it does is available as a library call.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from repro import __version__

#: figure id -> (module path, description)
FIGURES: Dict[str, tuple] = {
    "fig2": ("repro.experiments.fig02_04_heron_vs_storm",
             "Figs 2-4: Heron vs Storm throughput/latency"),
    "fig5": ("repro.experiments.fig05_09_sm_optimizations",
             "Figs 5-9: Stream Manager optimization impact"),
    "fig10": ("repro.experiments.fig10_11_max_spout_pending",
              "Figs 10-11: max-spout-pending sweep"),
    "fig12": ("repro.experiments.fig12_13_cache_drain",
              "Figs 12-13: cache-drain-frequency sweep"),
    "fig14": ("repro.experiments.fig14_resource_breakdown",
              "Fig 14: resource-consumption breakdown"),
    "microbatch": ("repro.experiments.microbatch_latency",
                   "§III-B: micro-batch latency floor"),
    "packing": ("repro.experiments.packing_policies",
                "§IV-A: packing-policy trade-off"),
    "ablations": ("repro.experiments.ablations",
                  "Beyond-paper ablations (pools/lazy/cache)"),
    "autotune": ("repro.experiments.autotuning",
                 "§V-B future work: online auto-tuning"),
    "checkpoint": ("repro.experiments.checkpoint_overhead",
                   "repro.checkpoint: overhead + effectively-once "
                   "recovery"),
    "chaos": ("repro.experiments.chaos_faults",
              "repro.chaos: reliability under loss + partition "
              "recovery"),
    "bigcluster": ("repro.experiments.bigcluster",
                   "Big-cluster stress: heap vs calendar event kernel"),
    "placement": ("repro.experiments.placement",
                  "R-Storm placement vs RR/FFD on a racked cluster"),
    "elastic": ("repro.experiments.elastic",
                "repro.autoscale: live rescaling under a diurnal sweep"),
}

#: Aliases: every paper figure number resolves to its runner.
ALIASES = {"fig3": "fig2", "fig4": "fig2", "fig6": "fig5", "fig7": "fig5",
           "fig8": "fig5", "fig9": "fig5", "fig11": "fig10",
           "fig13": "fig12"}


def _cmd_figures(_args) -> int:
    print("reproducible figures (heron-sim figure <id> [--fast]):")
    for figure_id, (_module, description) in FIGURES.items():
        print(f"  {figure_id:<12} {description}")
    print("aliases:", ", ".join(f"{a}->{b}" for a, b in ALIASES.items()))
    return 0


def _cmd_figure(args) -> int:
    import importlib
    import inspect

    figure_id = ALIASES.get(args.id, args.id)
    entry = FIGURES.get(figure_id)
    if entry is None:
        print(f"unknown figure {args.id!r}; try 'heron-sim figures'",
              file=sys.stderr)
        return 2
    module = importlib.import_module(entry[0])
    kwargs = {"fast": args.fast}
    if "parallel" in inspect.signature(module.run).parameters:
        # None defers to the REPRO_PARALLEL environment variable.
        kwargs["parallel"] = True if args.parallel else None
    elif args.parallel:
        print(f"note: {figure_id} does not support --parallel yet; "
              f"running serially", file=sys.stderr)
    figures = module.run(**kwargs)
    for key, figure in figures.items():
        figure.print()
        if args.csv:
            print(figure.to_csv())
        if args.svg:
            import pathlib

            from repro.experiments.svg import save_svg
            out_dir = pathlib.Path(args.svg)
            out_dir.mkdir(parents=True, exist_ok=True)
            out_path = out_dir / f"{key}.svg"
            save_svg(figure, out_path)
            print(f"wrote {out_path}")
    failed = 0
    for check in module.check_shapes(figures):
        print(check)
        failed += 0 if check.passed else 1
    return 1 if failed else 0


def _cmd_demo(_args) -> int:
    from repro.api.config_keys import TopologyConfigKeys as Keys
    from repro.common.config import Config
    from repro.core import HeronCluster
    from repro.workloads import wordcount_topology

    config = Config().set(Keys.BATCH_SIZE, 100).set(Keys.SAMPLE_CAP, 16)
    cluster = HeronCluster.local()
    handle = cluster.submit_topology(
        wordcount_topology(2, corpus_size=1000, config=config))
    handle.wait_until_running()
    print(handle.packing_plan.describe())
    cluster.run_for(1.0)
    totals = handle.totals()
    print(f"1.0s simulated: {totals['emitted']:,.0f} emitted, "
          f"{totals['executed']:,.0f} counted")
    handle.kill()
    return 0


def _cmd_submit(args) -> int:
    from repro.api.config_keys import TopologyConfigKeys as Keys
    from repro.common.config import Config
    from repro.core import HeronCluster
    from repro.packing import (FirstFitDecreasingPacking, RoundRobinPacking,
                               RStormPacking)
    from repro.workloads import wordcount_topology

    config = Config()
    config.set(Keys.ACKING_ENABLED, args.acks)
    config.set(Keys.ACK_TRACKING, "counted")  # sampled batches need it
    config.set(Keys.SAMPLE_CAP, 24)
    config.set(Keys.MAX_SPOUT_PENDING, args.max_pending)
    config.set(Keys.CACHE_DRAIN_FREQUENCY_MS, args.drain_ms)
    cluster = HeronCluster.on_yarn(machines=max(4, args.parallelism)) \
        if args.framework == "yarn" else \
        HeronCluster.on_aurora(machines=max(4, args.parallelism)) \
        if args.framework == "aurora" else HeronCluster.local()
    packing = FirstFitDecreasingPacking() if args.packing == "ffd" \
        else RStormPacking() if args.packing == "rstorm" \
        else RoundRobinPacking()
    topology = wordcount_topology(args.parallelism, config=config)
    handle = cluster.submit_topology(topology, resource_manager=packing)
    handle.wait_until_running()
    print(handle.packing_plan.describe())
    cluster.run_for(args.seconds)
    totals = handle.totals()
    rate = totals["acked" if args.acks else "executed"] / args.seconds
    print(f"{args.seconds:.1f}s simulated: "
          f"{rate * 60 / 1e6:,.0f}M tuples/min", end="")
    if args.acks:
        print(f", mean latency {handle.latency_stats().mean * 1e3:.1f}ms")
    else:
        print()
    handle.kill()
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_races(args) -> int:
    from repro.analysis.races import main as races_main

    argv = [args.scenario, "--kernel", args.kernel,
            "--max-explore", str(args.max_explore)]
    if args.explore:
        argv.append("--explore")
    if args.fast:
        argv.append("--fast")
    if args.duration is not None:
        argv.extend(["--duration", str(args.duration)])
    return races_main(argv)


def _cmd_chaos_search(args) -> int:
    from repro.chaos.search import main as search_main

    argv = ["--rounds", str(args.rounds), "--fault", args.fault]
    if args.fast:
        argv.append("--fast")
    return search_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """Construct the heron-sim argument parser."""
    parser = argparse.ArgumentParser(
        prog="heron-sim",
        description="Reproduction of 'Twitter Heron: Towards Extensible "
                    "Streaming Engines' (ICDE 2017).")
    parser.add_argument("--version", action="version",
                        version=f"heron-sim {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures") \
        .set_defaults(func=_cmd_figures)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("id", help="figure id (see 'figures')")
    figure.add_argument("--fast", action="store_true",
                        help="reduced parameters (smoke run)")
    figure.add_argument("--parallel", action="store_true",
                        help="fan sweep points across a process pool "
                             "(deterministic; same output as serial)")
    figure.add_argument("--csv", action="store_true",
                        help="also print CSV data")
    figure.add_argument("--svg", metavar="DIR",
                        help="also render SVG charts into DIR")
    figure.set_defaults(func=_cmd_figure)

    sub.add_parser("demo", help="run a small WordCount end to end") \
        .set_defaults(func=_cmd_demo)

    lint = sub.add_parser(
        "lint", help="determinism lint (rules D001-D007)",
        description="Statically enforce the simulator's determinism "
                    "contract; see repro.analysis.lint.")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule table and exit")
    lint.set_defaults(func=_cmd_lint)

    races = sub.add_parser(
        "races", help="happens-before race detection over tie groups",
        description="Trace happens-before edges, flag causally-"
                    "unordered tied arrivals with non-commuting "
                    "handler footprints, optionally explore the "
                    "reorderings; see repro.analysis.races.")
    races.add_argument("scenario", nargs="?", default="wordcount",
                       help="scenario name (wordcount, racy, commuting)")
    races.add_argument("--explore", action="store_true",
                       help="replay findings with one side demoted and "
                            "diff state digests (DPOR-lite)")
    races.add_argument("--kernel", default="default",
                       choices=["default", "calendar", "heap", "both"],
                       help="kernel(s); 'both' also checks causal-trace "
                            "parity")
    races.add_argument("--duration", type=float, default=None,
                       help="simulated seconds (default: per scenario)")
    races.add_argument("--fast", action="store_true",
                       help="short smoke run (CI)")
    races.add_argument("--max-explore", type=int, default=4,
                       help="explore at most this many findings")
    races.set_defaults(func=_cmd_races)

    chaos_search = sub.add_parser(
        "chaos-search",
        help="adversarial search over fault-plan timings",
        description="Greedy search for the fault start time that "
                    "maximizes recovery time, seeded by the race "
                    "tracer's tie hot spots; see repro.chaos.search.")
    chaos_search.add_argument("--rounds", type=int, default=2,
                              help="greedy refinement rounds")
    chaos_search.add_argument("--fast", action="store_true",
                              help="short smoke run (CI)")
    chaos_search.add_argument("--fault", default="partition",
                              choices=["partition", "tm-kill"],
                              help="fault vocabulary: machine partition "
                                   "(rollback recovery) or tm-kill "
                                   "(control-plane outage)")
    chaos_search.set_defaults(func=_cmd_chaos_search)

    submit = sub.add_parser("submit", help="run WordCount with knobs")
    submit.add_argument("--parallelism", type=int, default=4)
    submit.add_argument("--acks", action="store_true")
    submit.add_argument("--max-pending", type=int, default=20_000)
    submit.add_argument("--drain-ms", type=float, default=10.0)
    submit.add_argument("--seconds", type=float, default=1.0)
    submit.add_argument("--framework", choices=["local", "yarn", "aurora"],
                        default="local")
    submit.add_argument("--packing", choices=["rr", "ffd", "rstorm"],
                        default="rr")
    submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
