"""Ablation beyond the paper: the SM tuple cache disabled entirely
(per-sub-batch forwarding) vs normal drain-based batching."""

from conftest import regenerate

from repro.experiments import ablations


class _Module:
    @staticmethod
    def run(fast=False):
        return ablations.run_batching_ablation(fast)

    @staticmethod
    def check_shapes(figures):
        return ablations.check_batching_ablation(figures)


def test_ablation_tuple_cache_batching(benchmark):
    figures = regenerate(benchmark, _Module)
    assert "ablation_cache" in figures
