"""Regenerates the Section IV-A packing-policy trade-off tables."""

from conftest import regenerate

from repro.experiments import packing_policies as module


def test_packing_policy_tradeoff(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"containers", "cost", "balance"}
