"""Shared plumbing for the figure-regeneration benchmarks.

Each ``bench_*`` file regenerates one group of paper figures (the paper
derives grouped figures from the same runs, e.g. Figs. 2-3 from the same
acked WordCount executions). A benchmark:

* runs the experiment module's ``run()`` at the paper's full parameters,
* prints the same series the paper plots,
* asserts the paper's qualitative shape checks.

Set ``REPRO_BENCH_FAST=1`` to run reduced configurations (CI smoke).
"""

import os
import pathlib
import re

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def _save_csv(key: str, figure) -> None:
    from repro.experiments.svg import save_svg

    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", key.lower()).strip("_")
    (RESULTS_DIR / f"{slug}.csv").write_text(figure.to_csv())
    (RESULTS_DIR / f"{slug}.txt").write_text(figure.format_table())
    save_svg(figure, RESULTS_DIR / f"{slug}.svg")


def regenerate(benchmark, module) -> dict:
    """Time one full regeneration of a figure module and print it.

    The measured series are also written as CSV under
    ``benchmarks/results/`` for plotting. Modules whose ``run`` takes a
    ``parallel`` argument honor ``REPRO_PARALLEL=1`` (pooled sweeps; the
    output is identical to serial by construction).
    """
    import inspect

    fast = fast_mode()
    kwargs = {"fast": fast}
    if "parallel" in inspect.signature(module.run).parameters:
        from repro.experiments.parallel import parallel_enabled
        kwargs["parallel"] = None  # REPRO_PARALLEL decides
        if parallel_enabled():
            print("\n[parallel sweep enabled via REPRO_PARALLEL]")
    figures = benchmark.pedantic(lambda: module.run(**kwargs),
                                 rounds=1, iterations=1)
    print()
    for key, figure in figures.items():
        figure.print()
        _save_csv(key, figure)
    checks = module.check_shapes(figures)
    for check in checks:
        print(check)
    failed = [c for c in checks if not c.passed]
    assert not failed, "shape checks failed: " + \
        "; ".join(str(c) for c in failed)
    return figures
