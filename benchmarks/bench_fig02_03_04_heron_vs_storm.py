"""Regenerates Figures 2, 3 and 4: Heron vs Storm WordCount.

Fig. 2 (throughput with acks), Fig. 3 (latency with acks) and Fig. 4
(throughput without acks) come from the same head-to-head runs, exactly
as in the paper's Section VI-A.
"""

from conftest import regenerate

from repro.experiments import fig02_04_heron_vs_storm as module


def test_fig02_03_04_heron_vs_storm(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"fig2", "fig3", "fig4"}
