"""Ablation beyond the paper: memory pools and lazy deserialization
toggled independently (the paper only reports both-on/both-off)."""

from conftest import regenerate

from repro.experiments import ablations


class _Module:
    @staticmethod
    def run(fast=False):
        return ablations.run_optimization_decomposition(fast)

    @staticmethod
    def check_shapes(figures):
        return ablations.check_optimization_decomposition(figures)


def test_ablation_optimization_decomposition(benchmark):
    figures = regenerate(benchmark, _Module)
    assert "ablation_opt" in figures
