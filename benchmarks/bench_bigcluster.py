"""Big-cluster stress benchmark: heap vs calendar event kernel.

Scales the Fig. 14 production topology to hundreds of machines and
thousands of instances, then measures each kernel in its own
subprocess (``REPRO_KERNEL`` env) so the per-process ``ru_maxrss``
high-water marks are comparable. Asserts the scenario's shape checks:
identical deterministic event counts across kernels (a scale-sized
differential test), calendar beating heap on wall clock, and no memory
blow-up from the calendar's bucket day-array.

``REPRO_BENCH_FAST=1`` runs the reduced profile (CI smoke).
"""

from conftest import fast_mode

from repro.experiments import bigcluster


def test_bigcluster_stress(benchmark):
    fast = fast_mode()
    figures = benchmark.pedantic(lambda: bigcluster.run(fast=fast),
                                 rounds=1, iterations=1)
    print()
    for figure in figures.values():
        figure.print()
    checks = bigcluster.check_shapes(figures)
    for check in checks:
        print(check)
    failed = [c for c in checks if not c.passed]
    assert not failed, "shape checks failed: " + \
        "; ".join(str(c) for c in failed)
