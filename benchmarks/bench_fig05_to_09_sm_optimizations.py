"""Regenerates Figures 5-9: Stream Manager optimization impact.

Throughput / throughput-per-core with and without acks, plus latency,
with the Section V-A optimizations (memory pools + lazy deserialization)
toggled together.
"""

from conftest import regenerate

from repro.experiments import fig05_09_sm_optimizations as module


def test_fig05_to_09_sm_optimizations(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"fig5", "fig6", "fig7", "fig8", "fig9"}
