"""Extension benchmark: the paper's Section V-B future work — online
auto-tuning of max-spout-pending and cache-drain-frequency from
real-time observations."""

from conftest import regenerate

from repro.experiments import autotuning as module


def test_autotuning_recovers_bad_configuration(benchmark):
    figures = regenerate(benchmark, module)
    assert "autotune" in figures
