"""Regenerates the Section III-B comparison: micro-batch latency floor."""

from conftest import regenerate

from repro.experiments import microbatch_latency as module


def test_microbatch_latency_floor(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"microbatch"}
