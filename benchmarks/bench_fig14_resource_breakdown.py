"""Regenerates Figure 14: the Kafka->filter->aggregate->Redis
resource-consumption breakdown."""

from conftest import regenerate

from repro.experiments import fig14_resource_breakdown as module


def test_fig14_resource_breakdown(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"fig14"}
