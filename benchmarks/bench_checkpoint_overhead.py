"""Regenerates the checkpointing figures: overhead + recovery.

Beyond-paper extension (`repro.checkpoint`): checkpoint-frequency
overhead on the stateful WordCount, and effectively-once recovery from a
mid-run container failure.
"""

from conftest import regenerate

from repro.experiments import checkpoint_overhead as module


def test_checkpoint_overhead(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"ckpt_overhead", "ckpt_recovery"}
