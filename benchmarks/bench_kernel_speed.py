"""Kernel events/sec microbenchmark, tracked in ``BENCH_kernel.json``.

Drives the discrete-event kernel with the WordCount-shaped operation mix
from :mod:`repro.experiments.perf` and asserts the fast-path kernel
stays >=2x the pre-fast-path seed recorded as the first entry of
``BENCH_kernel.json`` (events/sec over CPU time; the event count is
deterministic, so the ratio is purely kernel wall-time).

``REPRO_BENCH_FAST=1`` shortens the run; short windows understate the
seed's tombstone bloat, so the fast floor is only "not below baseline".
"""

import json
import pathlib

from conftest import fast_mode

from repro.experiments.perf import best_of, kernel_microbench

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_kernel.json"


def test_kernel_speed(benchmark):
    sim_seconds = 5.0 if fast_mode() else 30.0
    trials = 1 if fast_mode() else 3
    result = benchmark.pedantic(
        lambda: best_of(lambda: kernel_microbench(sim_seconds),
                        trials=trials),
        rounds=1, iterations=1)
    baseline = json.loads(BENCH_PATH.read_text())["entries"][0]
    base_rate = baseline["kernel_events_per_sec"]
    rate = result["events_per_sec"]
    print(f"\nkernel: {rate:,.0f} events/sec over {sim_seconds:g} sim s "
          f"({result['events']:,.0f} events / {result['cpu_s']:.3f}s CPU); "
          f"baseline {base_rate:,.0f} -> {rate / base_rate:.2f}x")
    floor = 1.0 if fast_mode() else 2.0
    assert rate >= floor * base_rate, (
        f"kernel regressed: {rate:,.0f} events/sec < {floor}x baseline "
        f"{base_rate:,.0f}")
