"""Regenerates Figures 10-11: the max-spout-pending tuning sweep."""

from conftest import regenerate

from repro.experiments import fig10_11_max_spout_pending as module


def test_fig10_11_max_spout_pending(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"fig10", "fig11"}
