"""Regenerates Figures 12-13: the cache-drain-frequency tuning sweep."""

from conftest import regenerate

from repro.experiments import fig12_13_cache_drain as module


def test_fig12_13_cache_drain(benchmark):
    figures = regenerate(benchmark, module)
    assert set(figures) == {"fig12", "fig13"}
