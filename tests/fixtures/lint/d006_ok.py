"""D006 negatives: key_groups declared, or rule preconditions absent."""


class ClassAttrDeclared:
    stateful = True
    key_groups = 0  # deliberate monolithic state

    def snapshot_state(self):
        return dict(self.counts)


class InitDeclared:
    stateful = True

    def __init__(self, groups):
        self.key_groups = groups

    def snapshot_state(self):
        return dict(self.counts)


class NotStateful:
    # snapshot_state without stateful = True: not checkpointed.
    def snapshot_state(self):
        return None


class StatefulWithoutSnapshot:
    # stateful flag alone (snapshot inherited elsewhere): out of scope
    # for a file-local pass.
    stateful = True


class StatefulFalse:
    stateful = False

    def snapshot_state(self):
        return None
