"""D001 negative fixture: simulated time only."""


def stamp_events(sim):
    started = sim.now
    sim.schedule(1.0, lambda: None)
    return started
