"""D002 negative fixture: seeded streams only."""

import random


def draw(stream, seed):
    seeded = random.Random(seed)
    return stream.random(), seeded.random()
