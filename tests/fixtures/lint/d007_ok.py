"""D007 negatives: sorted or order-insensitive snapshot iteration."""


class SortedItems:
    def snapshot_state(self):
        return {word: count for word, count in sorted(self.counts.items())}


class OrderInsensitiveSinks:
    def snapshot_state(self):
        return {"total": sum(self.counts.values()),
                "distinct": len(self.counts.keys()),
                "words": set(self.counts.keys())}


class OutsideSnapshot:
    def rebuild(self):
        # Iteration order only feeds in-memory state, not snapshot bytes.
        for word, count in self.counts.items():
            self.index[word] = count
