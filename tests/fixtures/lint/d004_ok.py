"""D004 negative fixture: None defaults, mutables created in the body."""

from repro.api.component import Spout


class GoodSpout(Spout):
    def __init__(self, words=None):
        super().__init__()
        self.words = list(words) if words is not None else []


def helper(values=[]):
    # Mutable default on a plain function (not a component) is out of
    # scope for D004.
    return values
