"""Pragma fixture: every violation below is explicitly suppressed."""

# lint: allow-file[D005] fixture: demonstrates file-level suppression

import time


def measure():
    return time.perf_counter()  # lint: allow[D001] fixture: timing harness


def check(sim, deadline_time):
    return sim.now == deadline_time  # suppressed by the file-level pragma
