"""D005 negative fixture: orderings and tolerances on simulated time."""


def is_due(sim, deadline_time):
    return sim.now >= deadline_time


def close_enough(etime, start_time):
    return abs(etime - start_time) < 1e-9


def named_fine(count, expected_count):
    # Equality on non-time values is allowed.
    return count == expected_count
