"""D003 negative fixture: ordered iteration feeding the scheduler."""


def broadcast(sim, peers):
    for peer in sorted(set(peers)):
        sim.schedule(0.0, peer.deliver, "ping")


def flush(routing_table, stream_manager):
    for dest, route in routing_table.items():
        stream_manager.send(dest, route)


def tally(words):
    # Set iteration NOT feeding the scheduler is allowed.
    total = 0
    for word in set(words):
        total += len(word)
    return total
